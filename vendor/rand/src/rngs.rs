//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Fast, passes BigCrush, and fully deterministic from its seed. Unlike
/// upstream `rand`, this is not ChaCha12 — the workspace only relies on
/// seeded self-consistency, not on upstream byte streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = Self::rotl(s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

/// Mock generators for tests.
pub mod mock {
    use crate::RngCore;

    /// A mock generator returning an arithmetic sequence of `u64`s.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StepRng {
        v: u64,
        increment: u64,
    }

    impl StepRng {
        /// Start at `initial`, stepping by `increment` per `next_u64`.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng { v: initial, increment }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.v;
            self.v = self.v.wrapping_add(self.increment);
            out
        }
    }
}
