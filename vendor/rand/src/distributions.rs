//! The distribution plumbing behind `Rng::gen` and `Rng::gen_range`.

use crate::RngCore;

/// A distribution over values of `T`, sampleable with any generator.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" uniform distribution for primitives: `f64`/`f32` in
/// `[0, 1)`, integers over their full range, `bool` fair.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform-range sampling (the machinery behind `Rng::gen_range`).
pub mod uniform {
    use super::Standard;
    use crate::{Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// Types sampleable uniformly from a range.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Uniform draw from `[lo, hi)` (`inclusive = false`) or
        /// `[lo, hi]` (`inclusive = true`).
        fn sample_between<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_between<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    if inclusive {
                        assert!(lo <= hi, "gen_range: empty range");
                    } else {
                        assert!(lo < hi, "gen_range: empty range");
                    }
                    // Span as u64 (all workspace ranges fit comfortably).
                    let span = if inclusive {
                        (hi as i128 - lo as i128 + 1) as u128
                    } else {
                        (hi as i128 - lo as i128) as u128
                    };
                    if span == 0 || span > u64::MAX as u128 {
                        // Full-width range: raw bits.
                        return rng.next_u64() as $t;
                    }
                    // Lemire widening-multiply mapping. The bias is at most
                    // span / 2^64, far below anything observable here.
                    let x = rng.next_u64() as u128;
                    let off = (x * span) >> 64;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        #[inline]
        fn sample_between<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            _inclusive: bool,
            rng: &mut R,
        ) -> Self {
            assert!(lo < hi, "gen_range: empty range");
            let u: f64 = rng.sample(Standard);
            lo + u * (hi - lo)
        }
    }

    impl SampleUniform for f32 {
        #[inline]
        fn sample_between<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            _inclusive: bool,
            rng: &mut R,
        ) -> Self {
            assert!(lo < hi, "gen_range: empty range");
            let u: f32 = rng.sample(Standard);
            lo + u * (hi - lo)
        }
    }

    /// Range argument accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_between(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            T::sample_between(lo, hi, true, rng)
        }
    }
}
