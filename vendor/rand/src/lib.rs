//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of the `rand` 0.8 API it
//! actually uses: [`RngCore`], [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! [`rngs::mock::StepRng`], and the [`distributions`] plumbing behind
//! `gen`, `gen_range`, and `gen_bool`.
//!
//! The generators are deterministic and high-quality (xoshiro256++ seeded
//! via SplitMix64) but do **not** reproduce upstream `rand`'s exact byte
//! streams; nothing in the workspace depends on upstream streams, only on
//! self-consistency of seeded runs.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Raw seed material type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed, expanded with SplitMix64 (the same
    /// expansion upstream `rand` documents for this constructor family).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}
