//! Hand-rolled `#[derive(Serialize)]` for the vendored `serde` stand-in.
//!
//! Works without `syn`/`quote` by walking the raw token stream. Supports
//! exactly the shapes this workspace derives on: non-generic structs with
//! named fields, and non-generic enums with unit, struct, or tuple
//! variants. Anything else produces a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (vendored JSON-writer flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize): generic types are not supported by the vendored serde");
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream();
            }
            Some(_) => i += 1,
            None => panic!("derive(Serialize): missing {{...}} body on `{name}`"),
        }
    };

    let code = match kind.as_str() {
        "struct" => gen_struct(&name, &parse_field_names(body)),
        "enum" => gen_enum(&name, body),
        other => panic!("derive(Serialize): unsupported item kind `{other}`"),
    };
    code.parse().expect("derive(Serialize): generated code parses")
}

/// Advance past leading `#[...]` attributes and a `pub`/`pub(...)`
/// visibility modifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body, in declaration order.
fn parse_field_names(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => break,
            other => panic!("derive(Serialize): expected field name, got {other:?}"),
        }
        i += 1;
        // Skip `: Type` up to the next top-level comma. Angle brackets
        // nest (`Vec<Vec<String>>`); parens/brackets arrive as single
        // groups so their inner commas are invisible here.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

/// One parsed enum variant.
enum Variant {
    Unit(String),
    Struct(String, Vec<String>),
    Tuple(String, usize),
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive(Serialize): expected variant name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_field_names(g.stream())));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Count top-level commas to get the tuple arity.
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut arity = usize::from(!inner.is_empty());
                let mut angle = 0i32;
                for tok in &inner {
                    if let TokenTree::Punct(p) = tok {
                        match p.as_char() {
                            '<' => angle += 1,
                            '>' => angle -= 1,
                            ',' if angle == 0 => arity += 1,
                            _ => {}
                        }
                    }
                }
                variants.push(Variant::Tuple(name, arity));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip to past the separating comma (also skips `= discr`).
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

fn gen_struct(name: &str, fields: &[String]) -> String {
    let mut body = String::from("w.begin_object();\n");
    for f in fields {
        body.push_str(&format!("w.key(\"{f}\"); ::serde::Serialize::write_json(&self.{f}, w);\n"));
    }
    body.push_str("w.end_object();");
    wrap_impl(name, &body)
}

fn gen_enum(name: &str, body: TokenStream) -> String {
    let variants = parse_variants(body);
    if variants.is_empty() {
        panic!("derive(Serialize): cannot serialize an empty enum `{name}`");
    }
    let mut arms = String::new();
    for v in &variants {
        match v {
            Variant::Unit(vn) => {
                arms.push_str(&format!("{name}::{vn} => {{ w.string(\"{vn}\"); }}\n"));
            }
            Variant::Struct(vn, fields) => {
                let bindings = fields.join(", ");
                let mut inner = String::from("w.begin_object();\n");
                for f in fields {
                    inner.push_str(&format!(
                        "w.key(\"{f}\"); ::serde::Serialize::write_json({f}, w);\n"
                    ));
                }
                inner.push_str("w.end_object();");
                arms.push_str(&format!(
                    "{name}::{vn} {{ {bindings} }} => {{\n\
                     w.begin_object(); w.key(\"{vn}\");\n{inner}\nw.end_object();\n}}\n"
                ));
            }
            Variant::Tuple(vn, arity) => {
                let binds: Vec<String> = (0..*arity).map(|k| format!("x{k}")).collect();
                let pattern = binds.join(", ");
                let inner = if *arity == 1 {
                    // Newtype variant: {"Variant": value}
                    "::serde::Serialize::write_json(x0, w);".to_string()
                } else {
                    let mut s = String::from("w.begin_array();\n");
                    for b in &binds {
                        s.push_str(&format!(
                            "w.element(); ::serde::Serialize::write_json({b}, w);\n"
                        ));
                    }
                    s.push_str("w.end_array();");
                    s
                };
                arms.push_str(&format!(
                    "{name}::{vn}({pattern}) => {{\n\
                     w.begin_object(); w.key(\"{vn}\");\n{inner}\nw.end_object();\n}}\n"
                ));
            }
        }
    }
    wrap_impl(name, &format!("match self {{\n{arms}}}"))
}

fn wrap_impl(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn write_json(&self, w: &mut ::serde::json::Writer) {{\n{body}\n}}\n}}\n"
    )
}
