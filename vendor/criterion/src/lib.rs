//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the same API shape (`Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `BenchmarkId`, `criterion_group!`/`criterion_main!`).
//!
//! Each benchmark runs one warm-up iteration, then `sample_size` timed
//! iterations, and prints the mean iteration time. There is no
//! statistical analysis, outlier rejection, or HTML report.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `{function_name}/{parameter}`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name in `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Times a closure over the configured number of iterations.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` once for warm-up, then `iterations` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: group_name.into(), sample_size }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&id.into_name(), sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_name());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Finish the group (no-op beyond upstream API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: u64, mut f: F) {
    let mut b = Bencher { iterations: sample_size, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter =
        if b.elapsed.is_zero() { Duration::ZERO } else { b.elapsed / (b.iterations.max(1) as u32) };
    println!("bench: {name:<60} {per_iter:>12.3?}/iter over {} iters", b.iterations);
}

/// Group several benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
