//! Offline stand-in for `serde`, specialized to what this workspace needs:
//! a [`Serialize`] trait that writes JSON directly, plus the
//! `#[derive(Serialize)]` macro (re-exported from the vendored
//! `serde_derive`). The companion `serde_json` stand-in drives the
//! [`json::Writer`] in compact or pretty mode.
//!
//! The JSON produced matches `serde_json`'s defaults for the shapes used
//! here: struct → object in field order, unit enum variant → string,
//! struct enum variant → `{"Variant": {...}}`, tuple → array, `Option` →
//! value or `null`, non-finite floats → `null`, floats always carry a
//! decimal point (`95.0`).

pub use serde_derive::Serialize;

pub mod json;

/// Serialize `self` into the JSON writer.
pub trait Serialize {
    /// Append `self`'s JSON encoding to `w`.
    fn write_json(&self, w: &mut json::Writer);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, w: &mut json::Writer) {
        (**self).write_json(w)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn write_json(&self, w: &mut json::Writer) {
        (**self).write_json(w)
    }
}

impl Serialize for bool {
    fn write_json(&self, w: &mut json::Writer) {
        w.raw(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn write_json(&self, w: &mut json::Writer) {
        w.string(self);
    }
}

impl Serialize for String {
    fn write_json(&self, w: &mut json::Writer) {
        w.string(self);
    }
}

impl Serialize for f64 {
    fn write_json(&self, w: &mut json::Writer) {
        w.float(*self);
    }
}

impl Serialize for f32 {
    fn write_json(&self, w: &mut json::Writer) {
        w.float(*self as f64);
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, w: &mut json::Writer) {
                w.raw(&self.to_string());
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, w: &mut json::Writer) {
        match self {
            Some(v) => v.write_json(w),
            None => w.raw("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, w: &mut json::Writer) {
        self.as_slice().write_json(w)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, w: &mut json::Writer) {
        w.begin_array();
        for item in self {
            w.element();
            item.write_json(w);
        }
        w.end_array();
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, w: &mut json::Writer) {
        self.as_slice().write_json(w)
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, w: &mut json::Writer) {
        w.begin_object();
        for (k, v) in self {
            w.key(k.as_ref());
            v.write_json(w);
        }
        w.end_object();
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, w: &mut json::Writer) {
                w.begin_array();
                $(
                    w.element();
                    self.$idx.write_json(w);
                )+
                w.end_array();
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
