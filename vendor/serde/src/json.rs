//! The JSON writer driven by [`crate::Serialize`] implementations.

/// An append-only JSON writer with optional two-space pretty printing.
#[derive(Debug)]
pub struct Writer {
    out: String,
    pretty: bool,
    depth: usize,
    /// Whether the current container already holds an entry, per nesting
    /// level (controls comma placement).
    has_entry: Vec<bool>,
}

impl Writer {
    /// A compact writer (serde_json `to_string` format).
    pub fn compact() -> Self {
        Writer { out: String::new(), pretty: false, depth: 0, has_entry: Vec::new() }
    }

    /// A pretty writer (serde_json `to_string_pretty` format: 2-space
    /// indent).
    pub fn pretty() -> Self {
        Writer { out: String::new(), pretty: true, depth: 0, has_entry: Vec::new() }
    }

    /// The accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    /// Append raw, pre-encoded JSON (numbers, literals).
    pub fn raw(&mut self, s: &str) {
        self.out.push_str(s);
    }

    /// Append a float the way serde_json does: non-finite → `null`,
    /// integral values keep a trailing `.0`.
    pub fn float(&mut self, v: f64) {
        if !v.is_finite() {
            self.out.push_str("null");
        } else if v == v.trunc() && v.abs() < 1e16 {
            // Integral: force the ".0" serde_json (ryu) prints.
            self.out.push_str(&format!("{v:.1}"));
        } else {
            self.out.push_str(&format!("{v}"));
        }
    }

    /// Append an escaped JSON string.
    pub fn string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }

    /// Open an object (`{`).
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.depth += 1;
        self.has_entry.push(false);
    }

    /// Start the named field `key` inside the current object.
    pub fn key(&mut self, key: &str) {
        let first =
            !std::mem::replace(self.has_entry.last_mut().expect("key outside object"), true);
        if !first {
            self.out.push(',');
        }
        if self.pretty {
            self.newline_indent();
        }
        self.string(key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Close the current object (`}`).
    pub fn end_object(&mut self) {
        let had_entries = self.has_entry.pop().expect("end_object without begin");
        self.depth -= 1;
        if self.pretty && had_entries {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Open an array (`[`).
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.depth += 1;
        self.has_entry.push(false);
    }

    /// Start the next element of the current array.
    pub fn element(&mut self) {
        let first =
            !std::mem::replace(self.has_entry.last_mut().expect("element outside array"), true);
        if !first {
            self.out.push(',');
        }
        if self.pretty {
            self.newline_indent();
        }
    }

    /// Close the current array (`]`).
    pub fn end_array(&mut self) {
        let had_entries = self.has_entry.pop().expect("end_array without begin");
        self.depth -= 1;
        if self.pretty && had_entries {
            self.newline_indent();
        }
        self.out.push(']');
    }
}
