//! A parsed JSON tree plus a recursive-descent parser, covering what the
//! workspace's consumers (the `obs-diff` regression harness, the trace
//! schema tests) need to read back the JSON the vendored writer emits:
//! objects, arrays, strings with escapes, numbers, booleans, `null`.
//!
//! Numbers are held as `f64`. Every integer the pipeline serializes
//! (counters, bucket tallies, ledger fields) is far below 2^53, so the
//! round trip is exact; `null` — the writer's encoding for non-finite
//! floats — parses to [`Value::Null`] and reads back as NaN through
//! [`Value::as_f64_lossy`].

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys are unique (last duplicate wins) and iterate in
    /// sorted order — the only order the vendored writer produces anyway,
    /// since every map it serializes is a `BTreeMap`.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number, with `null` (the writer's non-finite encoding) read
    /// back as NaN.
    pub fn as_f64_lossy(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Why a parse failed, with the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.eat("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.eat("null").map(|_| Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat("{")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with the low half.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.eat("\\u")
                                    .map_err(|_| self.err("high surrogate without low half"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // boundary math is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ascii by construction");
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].get("b").unwrap().as_str(),
            Some("x")
        );
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn resolves_escapes() {
        let v = from_str(r#""a\n\t\"\\\u0041\ud83d\ude00b""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\A\u{1F600}b");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", "{'a': 1}", "nulll"] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn round_trips_the_writer_output() {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        map.insert("k{a=1,b=2}".into(), vec![1.0, f64::NAN, -2.5]);
        let json = crate::to_string_pretty(&map).unwrap();
        let v = from_str(&json).unwrap();
        let arr = v.get("k{a=1,b=2}").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert!(arr[1].as_f64_lossy().unwrap().is_nan(), "writer emits null for NaN");
        assert_eq!(arr[2].as_f64(), Some(-2.5));
    }

    #[test]
    fn u64_extraction_is_exact_for_integers() {
        assert_eq!(from_str("9007199254740992").unwrap().as_u64(), Some(1u64 << 53));
        assert_eq!(from_str("1.5").unwrap().as_u64(), None);
        assert_eq!(from_str("-1").unwrap().as_u64(), None);
    }
}
