//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! crate's JSON writer: `to_string` and `to_string_pretty` over any
//! `serde::Serialize`, plus a [`Value`] tree with a parser
//! ([`from_str`]) so consumers like `obs-diff` can read documents back.

pub mod value;

pub use value::{from_str, ParseError, Value};

use serde::json::Writer;
use serde::Serialize;

/// Serialization error. The vendored writer is infallible, so this type
/// exists only for signature compatibility.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching the upstream crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut w = Writer::compact();
    value.write_json(&mut w);
    Ok(w.finish())
}

/// Serialize `value` as a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut w = Writer::pretty();
    value.write_json(&mut w);
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_floats_keep_decimal_point() {
        assert_eq!(to_string(&95.0f64).unwrap(), "95.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn pretty_uses_two_space_indent() {
        let mut w = Writer::pretty();
        w.begin_object();
        w.key("a");
        1u32.write_json(&mut w);
        w.end_object();
        assert_eq!(w.finish(), "{\n  \"a\": 1\n}");
    }
}
