//! Offline stand-in for `crossbeam`: multi-producer multi-consumer
//! channels with the `crossbeam-channel` API shape, built on
//! `std::sync::{Mutex, Condvar}`.
//!
//! Only the surface the workspace's parallel repro engine needs is
//! provided: [`channel::unbounded`], [`channel::bounded`], cloneable
//! [`channel::Sender`]/[`channel::Receiver`], and blocking
//! `send`/`recv`/`iter` with disconnect semantics.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        not_empty: Condvar,
        /// Signalled when an item leaves or all receivers disconnect.
        not_full: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded MPMC channel; `send` blocks while `cap` items are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Queue `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.shared.not_full.wait(state).expect("channel lock");
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next item, blocking until one arrives or every
        /// sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel lock");
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// A blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}
