//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Exposes the `parking_lot` API shape the workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (poisoning is absorbed,
//! matching parking_lot's poison-free semantics).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}
