//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = crate::bool::Any;

    fn arbitrary() -> Self::Strategy {
        crate::bool::Any
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
