//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A target size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi_inclusive {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi_inclusive: r.end.saturating_sub(1) }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Strategy for `Vec<T>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>` with a size drawn from `size`.
///
/// Duplicates drawn from `element` are retried a bounded number of
/// times; if the element space is too small the set may come out below
/// the requested minimum, mirroring upstream's best-effort behaviour.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        let max_attempts = target * 25 + 50;
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}
