//! Sampling strategies over explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy choosing one element of `values` uniformly (cloned).
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "prop::sample::select requires a non-empty list");
    Select { values }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.values.len());
        self.values[i].clone()
    }
}
