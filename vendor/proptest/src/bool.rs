//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy yielding `true` with probability `p`.
pub fn weighted(p: f64) -> Weighted {
    assert!((0.0..=1.0).contains(&p), "weighted probability must be in [0, 1]");
    Weighted { p }
}

/// See [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(self.p)
    }
}

/// Uniform boolean strategy (upstream `bool::ANY`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any;

impl Strategy for Any {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}
