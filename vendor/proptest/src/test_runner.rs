//! Test execution plumbing: config, deterministic RNG, case errors.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies. A seeded [`StdRng`] so every run of a
/// given test explores the same cases.
pub type TestRng = StdRng;

/// Per-test configuration. Only `cases` is honoured by the vendored
/// runner.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert!` family macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives the cases of one test deterministically.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// A runner whose RNG stream is derived from the test's name, so
    /// different tests explore different inputs but each test is stable
    /// across runs.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner { config, base_seed: h }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for case `case_idx`, independent of other cases.
    pub fn rng_for_case(&self, case_idx: u32) -> TestRng {
        StdRng::seed_from_u64(self.base_seed ^ (u64::from(case_idx) << 1 | 1))
    }
}
