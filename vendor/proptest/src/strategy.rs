//! The [`Strategy`] trait, primitive range strategies, tuple strategies,
//! and the `prop_map` / `prop_flat_map` combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// Generates random values of `Self::Value`.
///
/// Unlike upstream there is no value tree / shrinking: a strategy is
/// just a sampling function over the deterministic test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produce a dependent strategy from each value and sample it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
