//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: range strategies, `prop::collection::{vec, btree_set}`,
//! `prop::sample::select`, `prop::bool::weighted`, `any::<bool>()`,
//! `prop_map`/`prop_flat_map`, tuple strategies, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Semantics: each `#[test]` runs `ProptestConfig::cases` random cases
//! drawn from a deterministic per-test RNG (seeded from the test name),
//! and a failed `prop_assert!` panics with the case's inputs summarized.
//! There is no shrinking — the failing case is reported as-is.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;

/// The `proptest::prelude` surface used by this workspace.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace alias matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Run one `#[test]` body over `cases` generated inputs.
///
/// This is plumbing for the [`proptest!`] macro; not public API upstream.
#[doc(hidden)]
pub fn run_cases<F>(config: test_runner::ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let runner = test_runner::TestRunner::new(config, test_name);
    for case_idx in 0..runner.cases() {
        let mut rng = runner.rng_for_case(case_idx);
        if let Err(e) = case(&mut rng) {
            panic!("proptest case {case_idx} of test `{test_name}` failed: {e}");
        }
    }
}

/// Define property tests. Mirrors upstream's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in prop::collection::vec(0u64..9, 1..5)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

/// Assert a condition inside a `proptest!` body; fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body; fails the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}
