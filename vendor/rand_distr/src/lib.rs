//! Offline stand-in for the `rand_distr` crate: the Normal and LogNormal
//! distributions this workspace samples, plus the [`Distribution`] trait
//! re-exported from the vendored `rand`.
//!
//! Sampling uses the Box–Muller transform rather than upstream's ziggurat
//! tables; the resulting distributions are exact, only the byte streams
//! differ (nothing in the workspace depends on upstream streams).

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// Standard deviation (or shape) was negative or non-finite.
    BadVariance,
    /// Location parameter was non-finite.
    BadMean,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            Error::BadMean => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for Error {}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

/// Alias matching upstream's error name for `Normal`.
pub type NormalError = Error;

impl Normal<f64> {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() {
            return Err(Error::BadMean);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

/// One standard-normal draw via Box–Muller (fresh pair per draw, cosine
/// branch only — stateless, so safe for `&self` sampling).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (std::f64::consts::TAU * u2).cos();
        }
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<T> {
    norm: Normal<T>,
}

impl LogNormal<f64> {
    /// A log-normal whose logarithm is `N(mu, sigma)`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(LogNormal { norm: Normal::new(mu, sigma)? })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}
