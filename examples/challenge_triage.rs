//! Triage a campaign for an FCC-style coverage-challenge process.
//!
//! The paper's closing argument (§8): speed tests submitted as challenge
//! evidence must be contextualized first, or local bottlenecks and
//! lower-tier plans masquerade as access-network failures. This example
//! fits BST to a city's Ookla campaign, then classifies every test into
//! meets-plan / local-bottleneck / access-under-performance /
//! unattributable, and prints some individual verdicts.
//!
//! ```text
//! cargo run --release --example challenge_triage
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use speedtest_context::bst::{
    diagnose, triage_campaign, BstConfig, BstModel, DiagnoseConfig, Verdict,
};
use speedtest_context::datagen::{City, CityDataset};
use speedtest_context::viz::ascii_table;

fn main() {
    let ds = CityDataset::generate(City::A, 0.02, 2023);
    let down: Vec<f64> = ds.ookla.iter().map(|m| m.down_mbps).collect();
    let up: Vec<f64> = ds.ookla.iter().map(|m| m.up_mbps).collect();
    let mut rng = StdRng::seed_from_u64(4);
    let model = BstModel::fit(&down, &up, &ds.config.catalog, &BstConfig::default(), &mut rng)
        .expect("campaign is clusterable");
    let cfg = DiagnoseConfig::default();

    // Campaign-level counts.
    let tiers = model.tiers();
    let summary = triage_campaign(&ds.ookla, &tiers, &model, &ds.config.catalog, &cfg);
    let pct = |n: usize| format!("{:.1}%", 100.0 * n as f64 / summary.total() as f64);
    println!("== {} Ookla campaign triage ({} tests) ==", City::A.label(), summary.total());
    print!(
        "{}",
        ascii_table(
            &["verdict", "tests", "share"],
            &[
                vec!["meets plan".into(), summary.meets_plan.to_string(), pct(summary.meets_plan)],
                vec![
                    "local bottleneck".into(),
                    summary.local_bottleneck.to_string(),
                    pct(summary.local_bottleneck),
                ],
                vec![
                    "access under-performance".into(),
                    summary.access_underperformance.to_string(),
                    pct(summary.access_underperformance),
                ],
                vec![
                    "unattributable".into(),
                    summary.unattributable.to_string(),
                    pct(summary.unattributable),
                ],
            ],
        )
    );
    println!(
        "\nonly the 'access under-performance' slice is credible challenge evidence;\n\
         submitting the rest would echo the uncontextualized reading the paper warns about.\n"
    );

    // A few individual verdicts, as a challenge-portal would render them.
    println!("== sample verdicts ==");
    let mut shown = 0;
    for (m, t) in ds.ookla.iter().zip(&tiers) {
        let v = diagnose(m, &model, &ds.config.catalog, *t, &cfg);
        let interesting =
            matches!(v, Verdict::AccessUnderperformance { .. } | Verdict::LocalBottleneck { .. });
        if !interesting || shown >= 6 {
            continue;
        }
        shown += 1;
        match v {
            Verdict::AccessUnderperformance { normalized } => println!(
                "  test {}: {:.0}/{:.1} Mbps on {:?} -> EVIDENCE ({:.0}% of plan, clean local path)",
                m.id, m.down_mbps, m.up_mbps, m.platform, normalized * 100.0
            ),
            Verdict::LocalBottleneck { normalized, factors } => {
                println!(
                    "  test {}: {:.0}/{:.1} Mbps on {:?} -> local bottleneck ({:.0}% of plan)",
                    m.id, m.down_mbps, m.up_mbps, m.platform, normalized * 100.0
                );
                for f in factors.iter().take(2) {
                    println!("      - {}", f.describe());
                }
            }
            _ => {}
        }
    }
}
