//! A broadband-quality report for one city, in the style the paper argues
//! policymakers should demand: every aggregate comes with its context.
//!
//! ```text
//! cargo run --release --example city_report [A|B|C|D]
//! ```

use speedtest_context::analysis::{fig01, fig09, fig10, fig11, table3, CityAnalysis};
use speedtest_context::datagen::{City, CityDataset};
use speedtest_context::viz::ascii_cdf;

fn main() {
    let city = match std::env::args().nth(1).as_deref() {
        None | Some("A") => City::A,
        Some("B") => City::B,
        Some("C") => City::C,
        Some("D") => City::D,
        Some(other) => {
            eprintln!("unknown city {other:?}; expected A, B, C or D");
            std::process::exit(1);
        }
    };

    eprintln!("generating {} and fitting BST ...", city.label());
    let a = CityAnalysis::new(CityDataset::generate(city, 0.03, 8), 15);

    // The motivating figure: the same dataset, five different stories.
    let f1 = fig01::run(&a);
    println!("== {} download speed, by context ==", city.label());
    let series: Vec<_> = f1.series.iter().map(|s| s.to_series()).collect();
    print!("{}", ascii_cdf(&series, 64, 14));
    for (s, m) in f1.series.iter().zip(&f1.medians) {
        println!("  median[{}] = {:.1} Mbps", s.label, m);
    }

    // Who is actually testing: the tier mix per platform.
    let (t3, _) = table3::run(&a);
    println!("\n{}", t3.render());

    // Local factors: how much of the "slow internet" is the home, not
    // the ISP.
    let panels = fig09::run(&a);
    println!("== local-factor medians (normalized download) ==");
    for p in &panels {
        print!("  {}: ", p.id);
        let parts: Vec<String> =
            p.series.iter().zip(&p.medians).map(|(s, m)| format!("{} {:.2}", s.label, m)).collect();
        println!("{}", parts.join(" | "));
    }
    let (f10, shares) = fig10::run(&a);
    println!(
        "  {:.0}% of Android tests face a local bottleneck; medians best/bottleneck = {:.2}/{:.2}",
        shares.local_bottleneck_share * 100.0,
        f10.medians.first().copied().unwrap_or(f64::NAN),
        f10.medians.get(1).copied().unwrap_or(f64::NAN),
    );

    // When people test.
    let (_, t11) = fig11::run(&a);
    println!("\n{}", t11.render());
}
