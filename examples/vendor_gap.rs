//! Reproduce §6.3: quantify how much M-Lab's single-connection NDT
//! under-reports relative to Ookla's multi-connection test — first on the
//! flow-level simulator (same path, both methodologies), then per
//! subscription tier on full crowdsourced campaigns (Fig. 13).
//!
//! ```text
//! cargo run --release --example vendor_gap
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use speedtest_context::analysis::{fig13, CityAnalysis};
use speedtest_context::datagen::{City, CityDataset};
use speedtest_context::netsim::path::PathSnapshot;
use speedtest_context::netsim::Mbps;
use speedtest_context::speedtest::{
    FastMethodology, Methodology, NdtMethodology, OoklaMethodology,
};
use speedtest_context::viz::ascii_table;

fn main() {
    // Part 1: the controlled experiment — identical paths, two
    // methodologies, sweeping the provisioned rate.
    println!("== same path, two methodologies (mean of 30 runs) ==");
    let mut rng = StdRng::seed_from_u64(63);
    let ookla = OoklaMethodology::default();
    let fast = FastMethodology::default();
    let ndt = NdtMethodology::default();
    let mut rows = Vec::new();
    for rate in [25.0, 100.0, 200.0, 400.0, 800.0, 1200.0] {
        let snap = PathSnapshot {
            down_available: Mbps(rate),
            up_available: Mbps(10.0),
            rtt_s: 0.015,
            loss_rate: 5e-5,
            rwnd_total_bytes: 16.0 * 1024.0 * 1024.0,
            device_cap: Mbps(10_000.0),
        };
        let mean = |m: &dyn Fn(&mut StdRng) -> f64, rng: &mut StdRng| {
            (0..30).map(|_| m(rng)).sum::<f64>() / 30.0
        };
        let o = mean(&|r: &mut StdRng| ookla.measure(&snap, r).down.0, &mut rng);
        let f = mean(&|r: &mut StdRng| fast.measure(&snap, r).down.0, &mut rng);
        let n = mean(&|r: &mut StdRng| ndt.measure(&snap, r).down.0, &mut rng);
        rows.push(vec![
            format!("{rate:.0}"),
            format!("{o:.0}"),
            format!("{f:.0}"),
            format!("{n:.0}"),
            format!("{:.2}x", o / n),
        ]);
    }
    print!(
        "{}",
        ascii_table(
            &["plan (Mbps)", "Ookla-style", "FAST-style", "NDT-style", "Ookla/NDT gap"],
            &rows
        )
    );
    println!("(single TCP flow hits the Mathis ceiling; parallel flows do not)\n");

    // Part 2: the observational version — full campaigns, BST-assigned
    // tiers, per-group medians (the paper's Fig. 13).
    eprintln!("generating City-A campaigns and fitting BST ...");
    let a = CityAnalysis::new(CityDataset::generate(City::A, 0.03, 99), 31);
    let (_, gaps) = fig13::run(&a);
    println!("== Fig. 13: per-tier-group normalized download medians ==");
    let rows: Vec<Vec<String>> = gaps
        .iter()
        .map(|g| {
            vec![
                g.group.clone(),
                format!("{:.2}", g.ookla_median),
                format!("{:.2}", g.mlab_median),
                format!("{:.2}x", g.ratio),
            ]
        })
        .collect();
    print!("{}", ascii_table(&["tier group", "Ookla", "M-Lab", "ratio"], &rows));
    println!("(paper: ratios of 1.2 / 2.0 / 1.4 / 1.2 across Tier 1-3 .. Tier 6)");
}
