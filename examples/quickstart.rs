//! Quickstart: generate a city, fit BST, inspect the contextualized view.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use speedtest_context::bst::{BstConfig, BstModel};
use speedtest_context::datagen::{City, CityDataset};
use speedtest_context::stats::Ecdf;

fn main() {
    // 1. Generate a synthetic City-A: Ookla + M-Lab campaigns and the
    //    matching MBA panel, at 1% of the paper's sizes.
    let ds = CityDataset::generate(City::A, 0.01, 42);
    println!(
        "generated {} Ookla, {} M-Lab, {} MBA measurements for {}",
        ds.ookla.len(),
        ds.mlab.len(),
        ds.mba.len(),
        ds.config.city.label()
    );

    // 2. The uncontextualized view: one number for the whole city.
    let downs: Vec<f64> = ds.ookla.iter().map(|m| m.down_mbps).collect();
    let overall = Ecdf::new(&downs).expect("campaign is non-empty");
    println!("uncontextualized median download: {:.1} Mbps", overall.median());

    // 3. Contextualize: fit the BST methodology to <down, up> tuples.
    let ups: Vec<f64> = ds.ookla.iter().map(|m| m.up_mbps).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let model = BstModel::fit(&downs, &ups, &ds.config.catalog, &BstConfig::default(), &mut rng)
        .expect("campaign is clusterable");
    println!("BST coverage: {:.1}% of tests assigned a tier", model.coverage() * 100.0);

    // 4. The same data, disaggregated by recovered subscription tier.
    println!("\nper-tier medians (the contextualized view):");
    for plan in ds.config.catalog.plans() {
        let tier_downs: Vec<f64> = downs
            .iter()
            .zip(model.tiers())
            .filter(|(_, t)| *t == Some(plan.tier))
            .map(|(d, _)| *d)
            .collect();
        if tier_downs.len() < 5 {
            continue;
        }
        let e = Ecdf::new(&tier_downs).expect("non-empty");
        println!(
            "  {plan}: n={:<5} median {:>7.1} Mbps  ({:.0}% of plan)",
            tier_downs.len(),
            e.median(),
            100.0 * e.median() / plan.down.0
        );
    }

    // 5. Classify a fresh measurement with the fitted model.
    let assignment = model.assign(117.0, 5.2);
    println!(
        "\na new test measuring 117/5.2 Mbps maps to tier {:?} (upload cap {:?})",
        assignment.tier, assignment.upload_cap
    );
}
