//! Run a *real* speed test over loopback TCP sockets against a server
//! shaped to a subscription plan, comparing single-connection (NDT-style)
//! and multi-connection (Ookla-style) clients.
//!
//! ```text
//! cargo run --release --example loopback_speedtest [down_mbps] [up_mbps]
//! ```

use speedtest_context::speedtest::wire::{measure_download, measure_upload, ShapedServer};
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let down_plan: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(120.0);
    let up_plan: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(15.0);

    println!("starting loopback server shaped to a {down_plan:.0}/{up_plan:.0} Mbps plan");
    let server = ShapedServer::start(down_plan, up_plan).expect("bind loopback server");
    let duration = Duration::from_millis(2500);
    let discard = Duration::from_millis(600);

    for conns in [1usize, 4, 8] {
        let res = measure_download(server.addr(), conns, duration, discard)
            .expect("download measurement");
        println!(
            "download, {conns} connection(s): whole-transfer {:>6.1} Mbps, \
             ramp-discarded {:>6.1} Mbps  ({:.0}% of plan)",
            res.mean_all_mbps,
            res.mean_steady_mbps,
            100.0 * res.mean_steady_mbps / down_plan
        );
    }

    let up = measure_upload(server.addr(), 2, duration, discard).expect("upload measurement");
    println!(
        "upload,   2 connection(s): whole-transfer {:>6.1} Mbps, \
         ramp-discarded {:>6.1} Mbps  ({:.0}% of plan)",
        up.mean_all_mbps,
        up.mean_steady_mbps,
        100.0 * up.mean_steady_mbps / up_plan
    );

    println!(
        "\nnote: over loopback there is no loss and a sub-millisecond RTT, so the\n\
         single-connection penalty the paper measures (§6.3) does not appear here —\n\
         this binary demonstrates the measurement harness itself; the penalty is\n\
         reproduced by the TCP model (see `cargo run --release --example vendor_gap`)."
    );
}
