//! Visualize the transport dynamics that create the §6.3 vendor gap:
//! per-round delivered rate for one NDT-style flow vs eight Ookla-style
//! flows, under Reno and CUBIC, on the same lossy 800 Mbps path.
//!
//! Writes `tcp-dynamics.svg` into the working directory and prints a
//! text summary.
//!
//! ```text
//! cargo run --release --example tcp_dynamics
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use speedtest_context::netsim::tcp::{CongestionControl, FlowConfig, TcpSimulator};
use speedtest_context::netsim::Mbps;
use speedtest_context::viz::{svg_lines, Series, SvgConfig};

fn trace(flows: usize, cc: CongestionControl, label: &str, seed: u64) -> (Series, f64) {
    let cfg = FlowConfig::new(flows, 15.0, 0.015, Mbps(800.0))
        .with_loss(1e-4)
        .with_congestion_control(cc);
    let sim = TcpSimulator::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let (sample, points) = sim.run_traced(3.0, &mut rng);
    // Thin the trace for plotting (one point per ~50 ms).
    let step = (points.len() / 300).max(1);
    let series = Series::new(
        label,
        points.iter().step_by(step).map(|p| (p.t_s, p.rate.0)).collect::<Vec<_>>(),
    );
    (series, sample.mean_steady.0)
}

fn main() {
    let cases = [
        (1usize, CongestionControl::Reno, "1 flow, Reno (NDT-style)"),
        (1, CongestionControl::Cubic, "1 flow, CUBIC"),
        (8, CongestionControl::Reno, "8 flows, Reno (Ookla-style)"),
    ];
    let mut series = Vec::new();
    println!("800 Mbps path, 15 ms RTT, loss 1e-4, 15 s transfer:\n");
    for (i, (flows, cc, label)) in cases.iter().enumerate() {
        let (s, steady) = trace(*flows, *cc, label, 42 + i as u64);
        println!("  {label:<28} steady-state mean: {steady:>6.0} Mbps");
        series.push(s);
    }

    let cfg = SvgConfig::titled(
        "TCP dynamics on a lossy 800 Mbps path",
        "time (s)",
        "delivered rate (Mbps)",
    );
    let svg = svg_lines(&series, &cfg);
    match std::fs::write("tcp-dynamics.svg", &svg) {
        Ok(()) => println!("\nwrote tcp-dynamics.svg"),
        Err(e) => eprintln!("\ncould not write tcp-dynamics.svg: {e}"),
    }
    println!(
        "the single flow saws between loss events and cannot hold the pipe;\n\
         the eight-flow aggregate statistically fills it — the §6.3 mechanism."
    );
}
