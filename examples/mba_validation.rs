//! Reproduce Table 2: validate BST against the (simulated) FCC MBA panels,
//! where ground-truth subscriptions are known.
//!
//! ```text
//! cargo run --release --example mba_validation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use speedtest_context::bst::{evaluate, BstConfig, BstModel};
use speedtest_context::datagen::{City, CityDataset};
use speedtest_context::viz::ascii_table;

fn main() {
    let mut rows = Vec::new();
    for city in City::all() {
        let ds = CityDataset::generate(city, 0.03, 1025);
        let down: Vec<f64> = ds.mba.iter().map(|m| m.down_mbps).collect();
        let up: Vec<f64> = ds.mba.iter().map(|m| m.up_mbps).collect();
        let truth: Vec<Option<usize>> = ds.mba.iter().map(|m| m.truth_tier).collect();

        let mut rng = StdRng::seed_from_u64(9);
        let model = BstModel::fit(&down, &up, &ds.config.catalog, &BstConfig::default(), &mut rng)
            .expect("panel is clusterable");
        let ev = evaluate(&model, &truth, &ds.config.catalog);

        // Per-group detail like the paper's §4.3 walk-through.
        println!("{} ({} units):", ds.config.city.state_label(), ds.config.mba_units);
        for (cap, n, acc) in &ev.per_group {
            if *n > 0 {
                println!(
                    "  upload cap {cap:>4.0} Mbps: {n:>5} tests, download-plan accuracy {:.1}%",
                    acc * 100.0
                );
            }
        }
        println!();

        rows.push(vec![
            ds.config.city.state_label().to_string(),
            format!("{}", ds.config.mba_units),
            format!("{}", ev.n),
            format!("{:.2}%", ev.upload_accuracy * 100.0),
            format!("{:.2}%", ev.plan_accuracy * 100.0),
        ]);
    }

    println!("Table 2 — BST upload-tier selection accuracy:");
    print!("{}", ascii_table(&["State", "#Units", "#Tests", "Upload acc.", "Plan acc."], &rows));
    println!("\n(paper reports 96.84% – 99.33% upload accuracy across the four states)");
}
