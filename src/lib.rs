//! # speedtest-context
//!
//! A full reproduction of *"The Importance of Contextualization of
//! Crowdsourced Active Speed Test Measurements"* (Paul, Liu, Gu, Gupta,
//! Belding — IMC 2022), built as a Rust workspace.
//!
//! The paper's datasets (Ookla Speedtest Intelligence, M-Lab NDT, FCC MBA)
//! are all access-gated, so this workspace pairs the paper's methodology
//! with a generative simulator of the measurement ecosystem itself — see
//! `DESIGN.md` for the substitution table and `EXPERIMENTS.md` for
//! paper-vs-measured numbers.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`bst`] | `st-bst` | **the paper's contribution**: the two-stage Broadband Subscription Tier methodology, evaluation, α-consistency, ablations |
//! | [`stats`] | `st-stats` | KDE, GMM-EM (with seeded init and a uniform background component), k-means, quantiles, ECDFs |
//! | [`netsim`] | `st-netsim` | flow-level path simulator: access link, 802.11 WiFi, device constraints, round-based TCP |
//! | [`speedtest`] | `st-speedtest` | plan catalogs, measurement schema, Ookla/NDT methodologies, NDT pairing, a real-socket loopback speed test |
//! | [`datagen`] | `st-datagen` | synthetic Ookla / M-Lab / MBA campaigns for the four-city study |
//! | [`dataframe`] | `st-dataframe` | typed columnar frames with filter/group-by/CSV |
//! | [`analysis`] | `st-analysis` | one module per paper table/figure |
//! | [`viz`] | `st-viz` | SVG and ASCII rendering |
//!
//! ## Quickstart
//!
//! ```
//! use speedtest_context::bst::{BstConfig, BstModel, evaluate};
//! use speedtest_context::datagen::{City, CityDataset};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Simulate the FCC MBA panel for State-A (ground truth retained) ...
//! let ds = CityDataset::generate(City::A, 0.01, 7);
//! let down: Vec<f64> = ds.mba.iter().map(|m| m.down_mbps).collect();
//! let up: Vec<f64> = ds.mba.iter().map(|m| m.up_mbps).collect();
//!
//! // ... fit the BST methodology to the <download, upload> tuples ...
//! let mut rng = StdRng::seed_from_u64(1);
//! let model =
//!     BstModel::fit(&down, &up, &ds.config.catalog, &BstConfig::default(), &mut rng)
//!         .expect("panel is clusterable");
//!
//! // ... and score it against the panel's known subscriptions (Table 2).
//! let truth: Vec<Option<usize>> = ds.mba.iter().map(|m| m.truth_tier).collect();
//! let eval = evaluate(&model, &truth, &ds.config.catalog);
//! assert!(eval.upload_accuracy > 0.96); // the paper's headline number
//! ```

pub use st_analysis as analysis;
pub use st_bst as bst;
pub use st_dataframe as dataframe;
pub use st_datagen as datagen;
pub use st_netsim as netsim;
pub use st_speedtest as speedtest;
pub use st_stats as stats;
pub use st_viz as viz;
