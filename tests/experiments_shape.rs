//! Shape assertions across the full experiment suite: one generated city,
//! every figure, checking the qualitative claims the paper makes.

use speedtest_context::analysis::{
    fig01, fig02, fig08, fig09, fig10, fig11, fig12, fig13, table2, table3, CityAnalysis,
};
use speedtest_context::datagen::{City, CityDataset};
use std::sync::OnceLock;

/// One shared City-A analysis: generating and BST-fitting is the expensive
/// part, and every shape test reads from the same snapshot.
fn city_a() -> &'static CityAnalysis {
    static CELL: OnceLock<CityAnalysis> = OnceLock::new();
    CELL.get_or_init(|| CityAnalysis::new(CityDataset::generate(City::A, 0.03, 314159), 27))
}

#[test]
fn fig01_contextualization_spreads_the_median_severalfold() {
    let r = fig01::run(city_a());
    let overall = r.medians[0];
    let tier1 = r.medians[1];
    let ethernet = *r.medians.last().unwrap();
    assert!(overall / tier1 > 2.0, "overall {overall} vs tier1 {tier1}");
    assert!(
        ethernet / overall > 3.0,
        "top-tier Ethernet {ethernet} vs overall {overall} (paper: ~7x)"
    );
}

#[test]
fn fig02_uploads_are_more_consistent() {
    let r = fig02::run(city_a());
    assert!(r.medians[1] > r.medians[0], "up {} vs down {}", r.medians[1], r.medians[0]);
}

#[test]
fn table2_accuracy_headline() {
    let (_, stats) = table2::run(&[city_a()]);
    assert!(stats[0].upload_accuracy > 0.96, "{:?}", stats[0]);
}

#[test]
fn table3_reports_every_tier_group_for_major_platforms() {
    let (_, stats) = table3::run(city_a());
    let web = stats.iter().find(|s| s.platform == "Net-Web").expect("web fits");
    assert_eq!(web.groups.len(), 4);
    assert!(web.groups.iter().all(|(_, n, _)| *n > 0), "{:?}", web.groups);
}

#[test]
fn fig08_assignments_are_self_consistent() {
    let r = fig08::run(city_a());
    assert!(r.medians[0] > 0.8, "alpha median {}", r.medians[0]);
}

#[test]
fn fig09_all_local_factor_orderings_hold() {
    let panels = fig09::run(city_a());
    // (a) Ethernet > WiFi.
    assert!(panels[0].medians[1] > panels[0].medians[0] * 1.5, "{:?}", panels[0].medians);
    // (b) 5 GHz > 2.4 GHz.
    assert!(panels[1].medians[1] > panels[1].medians[0] * 1.5, "{:?}", panels[1].medians);
    // (c) worst RSSI bin clearly below the best populated bins.
    let c = &panels[2].medians;
    let worst = *c.last().unwrap();
    assert!(c[..c.len() - 1].iter().any(|m| *m > worst * 1.5), "{c:?}");
    // (d) smallest memory bin clearly below the largest.
    let d = &panels[3].medians;
    assert!(*d.last().unwrap() > d[0] * 1.2, "{d:?}");
}

#[test]
fn fig10_bottlenecked_majority_underperforms() {
    let (r, shares) = fig10::run(city_a());
    assert!(shares.local_bottleneck_share > 0.5, "share {}", shares.local_bottleneck_share);
    assert!(r.medians[0] > r.medians[1] * 1.4, "medians {:?}", r.medians);
}

#[test]
fn fig11_and_fig12_time_of_day_is_volume_not_performance() {
    let (vol, _) = fig11::run(city_a());
    // Volume: night bin is the smallest for populated groups.
    for g in &vol.groups {
        let p: Vec<f64> = g.points.iter().map(|(_, v)| *v).collect();
        if p.iter().sum::<f64>() > 0.0 {
            assert!(p[0] < p[2], "{}: night {p:?}", g.label);
        }
    }
    // Performance: medians nearly flat across bins.
    for panel in fig12::run_default(city_a()) {
        let lo = panel.medians.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = panel.medians.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi - lo < 0.15, "{}: spread {lo}..{hi}", panel.id);
    }
}

#[test]
fn fig13_mlab_lags_ookla_up_to_twofold() {
    let (_, gaps) = fig13::run(city_a());
    assert!(gaps.len() >= 3);
    for g in &gaps {
        assert!(g.ratio > 0.95, "{}: Ookla should not lose to M-Lab ({:?})", g.group, g);
    }
    let max = gaps.iter().map(|g| g.ratio).fold(0.0f64, f64::max);
    assert!((1.4..=3.0).contains(&max), "max vendor ratio {max} (paper: up to 2)");
}
