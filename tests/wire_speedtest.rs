//! Integration tests for the real-socket loopback speed test: the
//! existence proof that the workspace's methodology conclusions are
//! properties of TCP, not artifacts of the flow-level simulator.

use speedtest_context::speedtest::wire::{measure_download, measure_upload, ShapedServer};
use std::time::Duration;

#[test]
fn multi_connection_download_tracks_the_shaped_plan_rate() {
    let server = ShapedServer::start(80.0, 12.0).expect("bind loopback");
    let res =
        measure_download(server.addr(), 6, Duration::from_millis(1500), Duration::from_millis(400))
            .expect("measurement completes");
    assert!(
        res.mean_steady_mbps > 45.0 && res.mean_steady_mbps < 100.0,
        "measured {res:?} against an 80 Mbps plan"
    );
}

#[test]
fn upload_direction_is_shaped_independently() {
    let server = ShapedServer::start(200.0, 15.0).expect("bind loopback");
    let up =
        measure_upload(server.addr(), 3, Duration::from_millis(1500), Duration::from_millis(400))
            .expect("measurement completes");
    assert!(
        up.mean_steady_mbps > 7.0 && up.mean_steady_mbps < 30.0,
        "upload measured {up:?} against a 15 Mbps cap"
    );
}

#[test]
fn whole_transfer_average_includes_the_ramp() {
    // NDT-style reporting (mean over the full transfer) can only be at or
    // below the ramp-discarded figure when the provision is steady.
    let server = ShapedServer::start(60.0, 10.0).expect("bind loopback");
    let res =
        measure_download(server.addr(), 4, Duration::from_millis(1600), Duration::from_millis(500))
            .expect("measurement completes");
    assert!(
        res.mean_all_mbps <= res.mean_steady_mbps * 1.15 + 2.0,
        "all {} vs steady {}",
        res.mean_all_mbps,
        res.mean_steady_mbps
    );
}

#[test]
fn concurrent_clients_share_the_access_link() {
    // Two simultaneous measurements against one server split the shaped
    // rate — the bucket is the (shared) access link.
    let server = ShapedServer::start(60.0, 10.0).expect("bind loopback");
    let addr = server.addr();
    let t1 = std::thread::spawn(move || {
        measure_download(addr, 2, Duration::from_millis(1400), Duration::from_millis(300))
            .expect("first client")
    });
    let t2 = std::thread::spawn(move || {
        measure_download(addr, 2, Duration::from_millis(1400), Duration::from_millis(300))
            .expect("second client")
    });
    let (a, b) = (t1.join().unwrap(), t2.join().unwrap());
    let total = a.mean_steady_mbps + b.mean_steady_mbps;
    assert!(total < 85.0, "two clients together measured {total} Mbps against a 60 Mbps link");
    assert!(total > 30.0, "combined throughput {total} suspiciously low");
}

#[test]
fn server_survives_abrupt_client_disconnects() {
    let server = ShapedServer::start(50.0, 10.0).expect("bind loopback");
    // Open and immediately drop a few raw connections (no protocol byte).
    for _ in 0..4 {
        let s = std::net::TcpStream::connect(server.addr()).expect("connect");
        drop(s);
    }
    // A real measurement still works afterwards.
    let res =
        measure_download(server.addr(), 2, Duration::from_millis(900), Duration::from_millis(200))
            .expect("measurement after rude clients");
    assert!(res.mean_steady_mbps > 10.0, "{res:?}");
}
