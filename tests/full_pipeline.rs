//! End-to-end integration: synthetic datasets → BST → paper-level claims.

use rand::rngs::StdRng;
use rand::SeedableRng;
use speedtest_context::bst::{evaluate, BstConfig, BstModel};
use speedtest_context::datagen::{City, CityDataset};

fn fit_mba(ds: &CityDataset, seed: u64) -> (BstModel, Vec<Option<usize>>) {
    let down: Vec<f64> = ds.mba.iter().map(|m| m.down_mbps).collect();
    let up: Vec<f64> = ds.mba.iter().map(|m| m.up_mbps).collect();
    let truth: Vec<Option<usize>> = ds.mba.iter().map(|m| m.truth_tier).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = BstModel::fit(&down, &up, &ds.config.catalog, &BstConfig::default(), &mut rng)
        .expect("MBA panel is clusterable");
    (model, truth)
}

#[test]
fn bst_exceeds_96_percent_on_every_state_panel() {
    // The paper's Table 2 headline, across all four states.
    for city in City::all() {
        let ds = CityDataset::generate(city, 0.015, 20221025);
        let (model, truth) = fit_mba(&ds, 5);
        let ev = evaluate(&model, &truth, &ds.config.catalog);
        assert!(
            ev.upload_accuracy > 0.96,
            "{}: upload accuracy {:.4} (paper: >96%)",
            ds.config.city.state_label(),
            ev.upload_accuracy
        );
        assert!(ev.coverage > 0.95, "{:?} coverage {}", city, ev.coverage);
    }
}

#[test]
fn bst_generalizes_from_mba_to_unseen_measurements() {
    // Fit on the panel, classify held-out panel-like measurements.
    let ds = CityDataset::generate(City::A, 0.02, 77);
    let (model, _) = fit_mba(&ds, 7);
    let holdout = CityDataset::generate(City::A, 0.004, 78);
    let mut n = 0usize;
    let mut ok = 0usize;
    for m in &holdout.mba {
        let truth = m.truth_tier.expect("MBA carries truth");
        let a = model.assign(m.down_mbps, m.up_mbps);
        n += 1;
        let truth_up = holdout.config.catalog.plan(truth).unwrap().up;
        if a.upload_cap == Some(truth_up) {
            ok += 1;
        }
    }
    assert!(n >= 100);
    let acc = ok as f64 / n as f64;
    assert!(acc > 0.9, "held-out upload accuracy {acc}");
}

#[test]
fn crowdsourced_fits_skew_toward_low_tiers() {
    // §5.1: the majority of crowdsourced tests come from the cheaper
    // tier groups, biasing aggregate medians downward.
    let ds = CityDataset::generate(City::A, 0.01, 3);
    let down: Vec<f64> = ds.ookla.iter().map(|m| m.down_mbps).collect();
    let up: Vec<f64> = ds.ookla.iter().map(|m| m.up_mbps).collect();
    let mut rng = StdRng::seed_from_u64(11);
    let model = BstModel::fit(&down, &up, &ds.config.catalog, &BstConfig::default(), &mut rng)
        .expect("campaign is clusterable");

    let groups = ds.config.catalog.tier_groups();
    let low_group_tiers = &groups[0].tiers;
    let assigned: Vec<usize> = model.tiers().into_iter().flatten().collect();
    assert!(!assigned.is_empty());
    let low = assigned.iter().filter(|t| low_group_tiers.contains(t)).count();
    let share = low as f64 / assigned.len() as f64;
    assert!(share > 0.3, "lowest-group share {share} should dominate the campaign");
}

#[test]
fn truth_tier_never_influences_the_fit() {
    // Erasing the ground-truth labels must not change the fitted model:
    // BST is unsupervised.
    let ds = CityDataset::generate(City::B, 0.006, 41);
    let down: Vec<f64> = ds.mba.iter().map(|m| m.down_mbps).collect();
    let up: Vec<f64> = ds.mba.iter().map(|m| m.up_mbps).collect();
    let fit = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        BstModel::fit(&down, &up, &ds.config.catalog, &BstConfig::default(), &mut rng)
            .unwrap()
            .tiers()
    };
    // Same inputs & seed → identical assignments, independent of anything
    // else in the Measurement records.
    assert_eq!(fit(13), fit(13));
}

#[test]
fn dataset_generation_is_reproducible_across_calls() {
    let a = CityDataset::generate(City::C, 0.004, 999);
    let b = CityDataset::generate(City::C, 0.004, 999);
    assert_eq!(a.ookla, b.ookla);
    assert_eq!(a.mlab, b.mlab);
    assert_eq!(a.mba, b.mba);
}

#[test]
fn vendor_gap_holds_on_raw_campaigns() {
    // Without any clustering at all: per ground-truth tier group, median
    // M-Lab download ≤ median Ookla download (§6.3's physical effect).
    let ds = CityDataset::generate(City::A, 0.01, 17);
    let groups = ds.config.catalog.tier_groups();
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let mut checked = 0;
    for g in &groups {
        let ookla: Vec<f64> = ds
            .ookla
            .iter()
            .filter(|m| g.tiers.contains(&m.truth_tier.unwrap()))
            .map(|m| m.down_mbps)
            .collect();
        let mlab: Vec<f64> = ds
            .mlab
            .iter()
            .filter(|m| g.tiers.contains(&m.truth_tier.unwrap()))
            .map(|m| m.down_mbps)
            .collect();
        if ookla.len() > 50 && mlab.len() > 50 {
            let (om, mm) = (median(ookla), median(mlab));
            assert!(mm <= om * 1.1, "{}: M-Lab {mm} vs Ookla {om}", g.label());
            checked += 1;
        }
    }
    assert!(checked >= 2, "need at least two populated groups");
}
