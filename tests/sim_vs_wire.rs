//! Cross-validation: the flow-level TCP simulator against real TCP.
//!
//! Every paper result in this workspace rests on the simulator; this test
//! pins the simulator to reality where the two can meet — a shaped,
//! lossless, sub-millisecond-RTT path (loopback). Both must measure the
//! shaped plan rate, and their estimates must agree with each other.

use rand::rngs::StdRng;
use rand::SeedableRng;
use speedtest_context::netsim::tcp::{FlowConfig, TcpSimulator};
use speedtest_context::netsim::Mbps;
use speedtest_context::speedtest::wire::{measure_download, ShapedServer};
use std::time::Duration;

/// Simulate the loopback conditions: negligible loss, short RTT, the
/// shaped rate as the bottleneck.
fn simulate(plan_mbps: f64, flows: usize) -> f64 {
    let cfg = FlowConfig::new(flows, 1.2, 0.002, Mbps(plan_mbps)).with_loss(1e-7);
    let sim = TcpSimulator::new(cfg);
    let mut rng = StdRng::seed_from_u64(99);
    let runs: f64 = (0..10).map(|_| sim.run(0.3, &mut rng).mean_steady.0).sum();
    runs / 10.0
}

#[test]
fn simulator_and_real_tcp_agree_on_a_shaped_path() {
    for &plan in &[40.0, 90.0] {
        let server = ShapedServer::start(plan, 10.0).expect("bind loopback");
        let wire = measure_download(
            server.addr(),
            4,
            Duration::from_millis(1200),
            Duration::from_millis(300),
        )
        .expect("wire measurement")
        .mean_steady_mbps;
        let sim = simulate(plan, 4);

        // Both track the plan rate ...
        assert!(
            (plan * 0.55..=plan * 1.2).contains(&wire),
            "wire measured {wire} against a {plan} Mbps plan"
        );
        assert!(
            (plan * 0.85..=plan * 1.02).contains(&sim),
            "simulator measured {sim} against a {plan} Mbps plan"
        );
        // ... and each other (wire carries scheduler/bucket noise, so the
        // tolerance is generous but still binds: a 2x modelling error
        // would fail).
        let ratio = sim / wire;
        assert!(
            (0.6..=1.7).contains(&ratio),
            "simulator {sim} vs wire {wire} (ratio {ratio}) on a {plan} Mbps plan"
        );
    }
}

#[test]
fn connection_count_is_immaterial_on_clean_short_paths_in_both_worlds() {
    // The §6.3 gap needs loss × BDP. On a clean shaped loopback path both
    // the simulator and real TCP report ~the plan regardless of flow
    // count — confirming the gap in the model comes from the transport
    // dynamics, not from an artifact of multi-flow accounting.
    let plan = 60.0;
    let sim_1 = simulate(plan, 1);
    let sim_8 = simulate(plan, 8);
    assert!((sim_1 - sim_8).abs() < plan * 0.15, "simulator: 1 flow {sim_1} vs 8 flows {sim_8}");

    let server = ShapedServer::start(plan, 10.0).expect("bind loopback");
    let wire_1 =
        measure_download(server.addr(), 1, Duration::from_millis(1000), Duration::from_millis(250))
            .expect("1-conn measurement")
            .mean_steady_mbps;
    let wire_8 =
        measure_download(server.addr(), 8, Duration::from_millis(1000), Duration::from_millis(250))
            .expect("8-conn measurement")
            .mean_steady_mbps;
    assert!((wire_1 - wire_8).abs() < plan * 0.5, "wire: 1 conn {wire_1} vs 8 conns {wire_8}");
}
