//! End-to-end fault detection: inject a chronically degraded access
//! segment, run the challenge-triage pipeline, and verify it (a) finds
//! the affected homes and (b) quantifies the paper's §8 recommendation —
//! collecting the subscription plan matters, because without it a
//! chronic fault masquerades as a cheaper tier.

use rand::rngs::StdRng;
use rand::SeedableRng;
use speedtest_context::bst::{diagnose, BstConfig, BstModel, DiagnoseConfig};
use speedtest_context::datagen::population::tier_weights;
use speedtest_context::datagen::{
    generate_ookla, inject, City, CityConfig, FaultScenario, Population,
};
use speedtest_context::speedtest::Measurement;
use std::collections::HashSet;

struct Scenario {
    tests: Vec<Measurement>,
    affected: HashSet<u64>,
    model: BstModel,
    catalog: speedtest_context::speedtest::PlanCatalog,
}

fn build() -> Scenario {
    let mut rng = StdRng::seed_from_u64(424242);
    let mut cfg = CityConfig::at_scale(City::A, 0.001);
    cfg.ookla_tests = 6000;
    let mut pop = Population::generate(&cfg.catalog, &tier_weights(City::A), 1200, &mut rng);
    let affected = inject(&mut pop, FaultScenario::oversubscribed_node(), &mut rng);
    assert!(!affected.is_empty());
    let tests = generate_ookla(&cfg, &pop, &mut rng);

    let down: Vec<f64> = tests.iter().map(|m| m.down_mbps).collect();
    let up: Vec<f64> = tests.iter().map(|m| m.up_mbps).collect();
    let model = BstModel::fit(&down, &up, &cfg.catalog, &BstConfig::default(), &mut rng)
        .expect("campaign is clusterable");
    Scenario { tests, affected, model, catalog: cfg.catalog.clone() }
}

/// Fraction of a cohort's tests classified as challenge evidence, using
/// the generator's ground-truth tier as the "known subscription".
fn evidence_rate(s: &Scenario, in_cohort: impl Fn(&Measurement) -> bool) -> f64 {
    let cfg = DiagnoseConfig::default();
    let (mut n, mut hits) = (0usize, 0usize);
    for m in &s.tests {
        if !in_cohort(m) {
            continue;
        }
        n += 1;
        if diagnose(m, &s.model, &s.catalog, m.truth_tier, &cfg).is_challenge_evidence() {
            hits += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        hits as f64 / n as f64
    }
}

#[test]
fn triage_separates_faulted_homes_from_healthy_ones() {
    let s = build();
    let affected_rate = evidence_rate(&s, |m| s.affected.contains(&m.user_id));
    let healthy_rate = evidence_rate(&s, |m| !s.affected.contains(&m.user_id));
    assert!(
        affected_rate > healthy_rate * 3.0,
        "affected evidence rate {affected_rate:.3} vs healthy {healthy_rate:.3}"
    );
    // The clean-context share among affected homes sits around 0.16 with
    // ~0.02 of seed-to-seed spread; 0.12 is a floor outside that noise
    // band (the 3x ratio above carries the separation claim).
    assert!(
        affected_rate > 0.12,
        "triage should flag a sizeable share of the faulted homes' tests: {affected_rate:.3}"
    );
    assert!(
        healthy_rate < 0.1,
        "healthy homes should rarely produce challenge evidence: {healthy_rate:.3}"
    );
}

#[test]
fn knowing_the_subscription_matters() {
    // The paper's §8 recommendation, quantified: with the subscription
    // known, a chronic fault is visible; relying on BST-inferred tiers,
    // the fault drags the inferred tier down and hides itself.
    let s = build();
    let cfg = DiagnoseConfig::default();

    let (mut with_truth, mut inferred_only) = (0usize, 0usize);
    let mut n = 0usize;
    for m in s.tests.iter().filter(|m| s.affected.contains(&m.user_id)) {
        n += 1;
        if diagnose(m, &s.model, &s.catalog, m.truth_tier, &cfg).is_challenge_evidence() {
            with_truth += 1;
        }
        if diagnose(m, &s.model, &s.catalog, None, &cfg).is_challenge_evidence() {
            inferred_only += 1;
        }
    }
    assert!(n > 300, "affected tests: {n}");
    let (rt, ri) = (with_truth as f64 / n as f64, inferred_only as f64 / n as f64);
    assert!(
        rt > ri * 1.3,
        "known-subscription detection {rt:.3} should clearly beat inferred-tier {ri:.3}"
    );
}

#[test]
fn fault_injection_does_not_break_bst_accuracy_on_healthy_homes() {
    let s = build();
    let (mut ok, mut n) = (0usize, 0usize);
    for (m, a) in s.tests.iter().zip(&s.model.assignments) {
        if s.affected.contains(&m.user_id) {
            continue;
        }
        let truth = m.truth_tier.expect("generator records truth");
        let truth_cap = s.catalog.plan(truth).unwrap().up;
        n += 1;
        if a.upload_cap == Some(truth_cap) {
            ok += 1;
        }
    }
    let acc = ok as f64 / n as f64;
    assert!(acc > 0.9, "healthy-home upload accuracy {acc:.3} under fault injection");
}
