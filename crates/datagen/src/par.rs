//! Deterministic chunked parallel execution for campaign generation.
//!
//! The contract (see DESIGN.md §"Parallel repro engine"): a campaign of
//! `total` tests is partitioned into fixed-size chunks of [`CHUNK_SIZE`]
//! consecutive test indices, and every chunk is generated from its own
//! RNG, seeded only by `(stream seed, chunk index)`. Chunk boundaries and
//! chunk seeds never depend on how many workers run, so the concatenated
//! output is byte-identical for every `parallelism` value — `1` included.
//!
//! Workers pull chunk indices from a shared crossbeam queue and send
//! finished chunks back tagged with their index; the caller stitches them
//! back in chunk order.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// Tests per chunk. Fixed — a tuning constant, but changing it changes
/// every generated stream, so treat it like a methodology version bump.
pub const CHUNK_SIZE: usize = 1024;

/// SplitMix64 finalizer: a bijective avalanche over `u64`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The seed of one generation stream (e.g. a city's Ookla campaign),
/// derived from the dataset's master seed and a stream tag.
pub fn stream_seed(master_seed: u64, stream_tag: u64) -> u64 {
    splitmix64(master_seed ^ splitmix64(stream_tag))
}

/// The seed of chunk `chunk_index` within a stream.
pub fn chunk_seed(stream: u64, chunk_index: u64) -> u64 {
    splitmix64(stream.wrapping_add(splitmix64(chunk_index ^ 0x5eed_c0de_0000_0001)))
}

/// Stream tags for a city dataset's campaigns, fed to [`stream_seed`].
/// Part of the determinism contract: renumbering them regenerates
/// every dataset.
pub mod tags {
    /// Subscriber population sampling (Ookla + M-Lab populations).
    pub const POPULATION: u64 = 0x01;
    /// Ookla crowdsourced campaign.
    pub const OOKLA: u64 = 0x02;
    /// M-Lab NDT campaign.
    pub const MLAB: u64 = 0x03;
    /// MBA panel measurements.
    pub const MBA: u64 = 0x04;
    /// MBA whitebox unit/plan assignment.
    pub const MBA_UNITS: u64 = 0x05;
    /// Dirty-record corruption of the Ookla campaign.
    pub const DIRTY_OOKLA: u64 = 0x06;
    /// Dirty-record corruption of the M-Lab campaign.
    pub const DIRTY_MLAB: u64 = 0x07;
    /// Dirty-record corruption of the MBA panel.
    pub const DIRTY_MBA: u64 = 0x08;
}

/// Degree of parallelism to use when the caller has no preference.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Generate `total` items through `f`, one fixed-size chunk at a time,
/// each chunk from its own deterministic RNG.
///
/// `f` receives the chunk's global index range and the chunk RNG and
/// returns the chunk's items (usually exactly `range.len()` of them, but
/// any length is stitched faithfully). Output is identical for every
/// `parallelism >= 1`.
pub fn run_chunked<T, F>(total: usize, stream: u64, parallelism: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>, &mut StdRng) -> Vec<T> + Sync,
{
    let n_chunks = total.div_ceil(CHUNK_SIZE);
    let chunk_range = |c: usize| c * CHUNK_SIZE..((c + 1) * CHUNK_SIZE).min(total);
    let workers = parallelism.min(n_chunks);

    if workers <= 1 {
        let mut out = Vec::with_capacity(total);
        for c in 0..n_chunks {
            let mut rng = StdRng::seed_from_u64(chunk_seed(stream, c as u64));
            out.extend(f(chunk_range(c), &mut rng));
        }
        return out;
    }

    let (job_tx, job_rx) = crossbeam::channel::unbounded::<usize>();
    for c in 0..n_chunks {
        job_tx.send(c).expect("queue open while filling");
    }
    drop(job_tx);
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, Vec<T>)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let f = &f;
            scope.spawn(move || {
                for c in job_rx.iter() {
                    let mut rng = StdRng::seed_from_u64(chunk_seed(stream, c as u64));
                    let items = f(chunk_range(c), &mut rng);
                    if done_tx.send((c, items)).is_err() {
                        return; // collector gone; nothing left to do
                    }
                }
            });
        }
        drop(done_tx);

        // Stitch chunks back into stream order.
        let mut slots: Vec<Option<Vec<T>>> = (0..n_chunks).map(|_| None).collect();
        for (c, items) in done_rx.iter() {
            slots[c] = Some(items);
        }
        let mut out = Vec::with_capacity(total);
        for slot in slots {
            out.extend(slot.expect("worker produced every chunk"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn draws(range: Range<usize>, rng: &mut StdRng) -> Vec<(usize, u64)> {
        range.map(|i| (i, rng.gen::<u64>())).collect()
    }

    #[test]
    fn output_is_identical_across_parallelism_levels() {
        let total = 10 * CHUNK_SIZE + 137;
        let stream = stream_seed(42, 7);
        let seq = run_chunked(total, stream, 1, draws);
        for workers in [2, 3, 8] {
            let par = run_chunked(total, stream, workers, draws);
            assert_eq!(seq, par, "parallelism {workers} diverged");
        }
        assert_eq!(seq.len(), total);
        // Indices arrive in order, untouched by the queue.
        assert!(seq.iter().enumerate().all(|(i, &(j, _))| i == j));
    }

    #[test]
    fn chunks_are_independent_of_earlier_chunks() {
        // Chunk 3 alone must equal chunk 3 of the full run.
        let stream = stream_seed(9, 1);
        let full = run_chunked(5 * CHUNK_SIZE, stream, 1, draws);
        let mut rng = StdRng::seed_from_u64(chunk_seed(stream, 3));
        let alone = draws(3 * CHUNK_SIZE..4 * CHUNK_SIZE, &mut rng);
        assert_eq!(&full[3 * CHUNK_SIZE..4 * CHUNK_SIZE], &alone[..]);
    }

    #[test]
    fn streams_with_different_tags_differ() {
        let a = run_chunked(CHUNK_SIZE, stream_seed(1, 1), 1, draws);
        let b = run_chunked(CHUNK_SIZE, stream_seed(1, 2), 1, draws);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_and_tiny_totals_work() {
        assert!(run_chunked(0, stream_seed(0, 0), 4, draws).is_empty());
        assert_eq!(run_chunked(3, stream_seed(0, 0), 4, draws).len(), 3);
    }
}
