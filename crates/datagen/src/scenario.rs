//! One-call city dataset generation and data-frame conversion.

use crate::city::{City, CityConfig};
use crate::crowd::{generate_mlab_chunked, generate_ookla_chunked};
use crate::mba::generate_mba_chunked;
use crate::par;
use crate::population::{mlab_tier_weights, tier_weights, Population};
use rand::rngs::StdRng;
use rand::SeedableRng;
use st_dataframe::DataFrame;
use st_speedtest::Measurement;

/// A complete generated dataset for one city: the two crowdsourced
/// campaigns plus the matching state's MBA panel.
#[derive(Debug, Clone)]
pub struct CityDataset {
    /// The configuration used.
    pub config: CityConfig,
    /// The Ookla subscriber population.
    pub population: Population,
    /// Ookla measurements (all platforms).
    pub ookla: Vec<Measurement>,
    /// M-Lab NDT measurements (paired download+upload).
    pub mlab: Vec<Measurement>,
    /// MBA panel measurements (with ground truth).
    pub mba: Vec<Measurement>,
}

impl CityDataset {
    /// Generate the dataset for `city` at `scale` of the paper's sizes,
    /// deterministically from `seed`.
    pub fn generate(city: City, scale: f64, seed: u64) -> Self {
        Self::generate_with_parallelism(city, scale, seed, 1)
    }

    /// Like [`CityDataset::generate`], fanning each campaign's per-test
    /// loop out over up to `parallelism` worker threads.
    ///
    /// The chunked scheme of [`crate::par`] is canonical at every
    /// parallelism level: the output is identical for `parallelism` 1
    /// and N given the same `(city, scale, seed)`.
    pub fn generate_with_parallelism(
        city: City,
        scale: f64,
        seed: u64,
        parallelism: usize,
    ) -> Self {
        let config = CityConfig::at_scale(city, scale);
        let master = seed ^ (city.index() as u64) << 32;

        // Populations are cheap relative to the campaigns; they draw
        // sequentially from their own sub-stream.
        let mut rng = StdRng::seed_from_u64(par::stream_seed(master, par::tags::POPULATION));

        // Population sized so the mean tests/user matches the paper's
        // ~1.3 native tests per user per year, bounded for tiny scales.
        let n_users = (config.ookla_tests / 3).clamp(50, 200_000);
        let tech = |tier: usize| crate::catalogs::technology_for(city, tier);
        let population = Population::generate_with_technology(
            &config.catalog,
            &tier_weights(city),
            n_users,
            tech,
            &mut rng,
        );
        let n_mlab_users = (config.mlab_tests / 3).clamp(50, 200_000);
        let mlab_population = Population::generate_with_technology(
            &config.catalog,
            &mlab_tier_weights(city),
            n_mlab_users,
            tech,
            &mut rng,
        );

        let ookla = generate_ookla_chunked(
            &config,
            &population,
            par::stream_seed(master, par::tags::OOKLA),
            parallelism,
        );
        let mlab = generate_mlab_chunked(
            &config,
            &mlab_population,
            par::stream_seed(master, par::tags::MLAB),
            parallelism,
        );
        let mba =
            generate_mba_chunked(&config, par::stream_seed(master, par::tags::MBA), parallelism);

        CityDataset { config, population, ookla, mlab, mba }
    }

    /// All crowdsourced measurements (Ookla + M-Lab).
    pub fn crowdsourced(&self) -> Vec<&Measurement> {
        self.ookla.iter().chain(self.mlab.iter()).collect()
    }

    /// Record how many measurements each scenario stream generated, as
    /// `datagen.records{campaign,city}` counters, a
    /// `datagen.users{city}` population gauge, and a
    /// `datagen.down_mbps{campaign,city}` download-throughput histogram
    /// whose bucket-interpolated p50/p90/p99 surface in the report's
    /// `## Metrics` section (deterministic class, DESIGN.md §13). Pure
    /// post-generation read — calling it never changes the dataset.
    pub fn observe(&self, reg: &st_obs::Registry) {
        if !reg.is_enabled() {
            return;
        }
        // Decades-ish edges spanning dial-up to multi-gigabit fiber.
        const DOWN_MBPS_BOUNDS: &[f64] =
            &[1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0];
        let city = self.config.city.label();
        for (campaign, records) in
            [("ookla", &self.ookla), ("mlab", &self.mlab), ("mba", &self.mba)]
        {
            let labels = [("campaign", campaign), ("city", city)];
            reg.add("datagen.records", &labels, records.len() as u64);
            for m in records.iter() {
                reg.observe("datagen.down_mbps", &labels, m.down_mbps, DOWN_MBPS_BOUNDS);
            }
        }
        reg.set_gauge("datagen.users", &[("city", city)], self.population.users().len() as f64);
    }

    /// Record ground-truth corruption counts returned by
    /// [`CityDataset::inject_dirty`] as
    /// `datagen.corrupted{campaign,city,kind}` counters.
    pub fn observe_dirty(&self, reg: &st_obs::Registry, labels: &[Vec<crate::faults::DirtyLabel>]) {
        if !reg.is_enabled() {
            return;
        }
        let city = self.config.city.label();
        for (campaign, campaign_labels) in ["ookla", "mlab", "mba"].iter().zip(labels) {
            for kind in crate::faults::DirtyKind::all() {
                let n = campaign_labels.iter().filter(|l| l.kind == kind).count() as u64;
                if n > 0 {
                    reg.add(
                        "datagen.corrupted",
                        &[("campaign", campaign), ("city", city), ("kind", kind.label())],
                        n,
                    );
                }
            }
        }
    }

    /// Corrupt all three campaigns in place with `scenario`, seeded by
    /// `seed` through the same per-stream derivation as generation, so
    /// the corruption is byte-identical at every parallelism level.
    /// Returns the ground-truth labels per campaign, in (Ookla, M-Lab,
    /// MBA) order.
    pub fn inject_dirty(
        &mut self,
        scenario: &crate::faults::DirtyScenario,
        seed: u64,
    ) -> [Vec<crate::faults::DirtyLabel>; 3] {
        let master = seed ^ (self.config.city.index() as u64) << 32;
        [
            crate::faults::inject_dirty(
                &mut self.ookla,
                scenario,
                par::stream_seed(master, par::tags::DIRTY_OOKLA),
            ),
            crate::faults::inject_dirty(
                &mut self.mlab,
                scenario,
                par::stream_seed(master, par::tags::DIRTY_MLAB),
            ),
            crate::faults::inject_dirty(
                &mut self.mba,
                scenario,
                par::stream_seed(master, par::tags::DIRTY_MBA),
            ),
        ]
    }
}

/// Convert measurements to a data frame with one column per record field.
///
/// Missing numeric metadata becomes NaN; missing tier truth becomes -1.
/// Thin wrapper over the columnar [`st_speedtest::CampaignStore`]'s frame
/// conversion, so the CSV-export schema has exactly one definition.
pub fn measurements_to_frame(ms: &[Measurement]) -> DataFrame {
    st_speedtest::CampaignStore::from_measurements(ms).to_frame()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_all_three_datasets() {
        let ds = CityDataset::generate(City::A, 0.002, 7);
        assert!(ds.ookla.len() >= 100);
        assert!(!ds.mlab.is_empty());
        assert!(ds.mba.len() >= 100);
        assert_eq!(ds.crowdsourced().len(), ds.ookla.len() + ds.mlab.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CityDataset::generate(City::B, 0.001, 42);
        let b = CityDataset::generate(City::B, 0.001, 42);
        assert_eq!(a.ookla, b.ookla);
        assert_eq!(a.mlab, b.mlab);
        assert_eq!(a.mba, b.mba);
    }

    #[test]
    fn parallel_generation_matches_sequential() {
        let seq = CityDataset::generate_with_parallelism(City::C, 0.001, 11, 1);
        let par = CityDataset::generate_with_parallelism(City::C, 0.001, 11, 4);
        assert_eq!(seq.ookla, par.ookla);
        assert_eq!(seq.mlab, par.mlab);
        assert_eq!(seq.mba, par.mba);
        // And the default entry point is the parallelism-1 stream.
        let default = CityDataset::generate(City::C, 0.001, 11);
        assert_eq!(default.ookla, par.ookla);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CityDataset::generate(City::A, 0.001, 1);
        let b = CityDataset::generate(City::A, 0.001, 2);
        assert_ne!(a.ookla, b.ookla);
    }

    #[test]
    fn frame_round_trips_schema() {
        let ds = CityDataset::generate(City::D, 0.001, 3);
        let df = measurements_to_frame(&ds.ookla);
        assert_eq!(df.n_rows(), ds.ookla.len());
        assert_eq!(df.n_cols(), 16);
        // Spot-check a few columns.
        assert_eq!(df.f64("down_mbps").unwrap()[0], ds.ookla[0].down_mbps);
        assert_eq!(df.i64("truth_tier").unwrap()[0], ds.ookla[0].truth_tier.unwrap() as i64);
        let vendors = df.str("vendor").unwrap();
        assert!(vendors.iter().all(|v| v == "Ookla"));
    }

    #[test]
    fn frame_handles_missing_metadata() {
        let ds = CityDataset::generate(City::A, 0.001, 5);
        let df = measurements_to_frame(&ds.mlab);
        let mem = df.f64("memory_gb").unwrap();
        assert!(mem.iter().all(|v| v.is_nan()), "NDT web never reports memory");
        let access = df.str("access").unwrap();
        assert!(access.iter().all(|a| a == "unknown"));
    }

    #[test]
    fn empty_measurement_list_yields_empty_frame() {
        let df = measurements_to_frame(&[]);
        assert_eq!(df.n_rows(), 0);
        assert_eq!(df.n_cols(), 16);
    }
}
