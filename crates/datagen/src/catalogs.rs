//! The four ISP plan catalogs.
//!
//! * **ISP-A** is stated outright in paper §4.1: three download speeds at a
//!   5 Mbps upload (25/100/200), then 400/10, 800/15 and 1200/35.
//! * **ISP-B/C/D** are not enumerated in the text; we reconstruct them so
//!   the appendix artifacts match: the upload-cluster group labels and
//!   means of Tables 5–7 and the download-plan gridlines of Figs. 16–18.

use crate::city::City;
use st_speedtest::PlanCatalog;

/// ISP-A (City-A / State-A): quoted verbatim from §4.1.
pub fn isp_a() -> PlanCatalog {
    PlanCatalog::new(
        "ISP-A",
        &[(25.0, 5.0), (100.0, 5.0), (200.0, 5.0), (400.0, 10.0), (800.0, 15.0), (1200.0, 35.0)],
    )
}

/// ISP-B (City-B / State-B): Table 5 groups tiers as 1-2 / 3 / 4-5 / 6 with
/// upload cluster means ≈ 5.5 / 11.5 / 22 / 39; Fig. 16 shows download
/// plans reaching 150 / 400 / 800 / 1200.
pub fn isp_b() -> PlanCatalog {
    PlanCatalog::new(
        "ISP-B",
        &[(25.0, 5.0), (100.0, 5.0), (300.0, 11.0), (500.0, 22.0), (800.0, 22.0), (1200.0, 35.0)],
    )
}

/// ISP-C (City-C / State-C): Table 6 groups tiers as 1-3 / 4-5 / 6-7 / 8
/// with upload means ≈ 5 / 11.5 / 22 / 38.5; Fig. 17 download ranges
/// reach 150 / 400 / 800 / 1200.
pub fn isp_c() -> PlanCatalog {
    PlanCatalog::new(
        "ISP-C",
        &[
            (25.0, 5.0),
            (75.0, 5.0),
            (150.0, 5.0),
            (200.0, 11.0),
            (400.0, 11.0),
            (500.0, 22.0),
            (800.0, 22.0),
            (1200.0, 38.0),
        ],
    )
}

/// ISP-D (City-D / State-D): Table 7 groups tiers as 1-2 / 3-4 / 5 with
/// upload means ≈ 3.5 / 9.7 / 28.7; Fig. 18 download ranges reach
/// 100 / 400 / 1200 (the top plan is a ~940 Mbps fiber-style offering).
pub fn isp_d() -> PlanCatalog {
    PlanCatalog::new(
        "ISP-D",
        &[(50.0, 3.5), (100.0, 3.5), (200.0, 10.0), (400.0, 10.0), (940.0, 30.0)],
    )
}

/// Last-mile technology for a plan. ISP-D's top offering (940/30) is the
/// classic fiber profile — symmetric-ish gigabit with no DOCSIS
/// saturation shortfall; everything else in the study is cable.
pub fn technology_for(city: City, tier: usize) -> st_netsim::Technology {
    match (city, tier) {
        (City::D, 5) => st_netsim::Technology::Fiber,
        _ => st_netsim::Technology::Docsis,
    }
}

/// The dominant ISP's catalog for a city (per-city dominance was
/// established with FCC Form 477 in the paper; here it is fixed).
pub fn catalog_for(city: City) -> PlanCatalog {
    match city {
        City::A => isp_a(),
        City::B => isp_b(),
        City::C => isp_c(),
        City::D => isp_d(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_netsim::Mbps;

    #[test]
    fn isp_a_matches_paper_text() {
        let c = isp_a();
        assert_eq!(c.len(), 6);
        let groups = c.tier_groups();
        let labels: Vec<String> = groups.iter().map(|g| g.label()).collect();
        assert_eq!(labels, vec!["Tier 1-3", "Tier 4", "Tier 5", "Tier 6"]);
        assert_eq!(c.upload_caps(), vec![Mbps(5.0), Mbps(10.0), Mbps(15.0), Mbps(35.0)]);
    }

    #[test]
    fn isp_b_group_structure_matches_table5() {
        let labels: Vec<String> = isp_b().tier_groups().iter().map(|g| g.label()).collect();
        assert_eq!(labels, vec!["Tier 1-2", "Tier 3", "Tier 4-5", "Tier 6"]);
    }

    #[test]
    fn isp_c_group_structure_matches_table6() {
        let labels: Vec<String> = isp_c().tier_groups().iter().map(|g| g.label()).collect();
        assert_eq!(labels, vec!["Tier 1-3", "Tier 4-5", "Tier 6-7", "Tier 8"]);
    }

    #[test]
    fn isp_d_group_structure_matches_table7() {
        let labels: Vec<String> = isp_d().tier_groups().iter().map(|g| g.label()).collect();
        assert_eq!(labels, vec!["Tier 1-2", "Tier 3-4", "Tier 5"]);
    }

    #[test]
    fn upload_caps_are_few_and_small() {
        // The §4.1 observation that motivates upload-first clustering.
        for city in City::all() {
            let c = catalog_for(city);
            let caps = c.upload_caps();
            assert!(caps.len() <= 4, "{}: too many upload caps", c.isp);
            assert!(caps.iter().all(|u| u.0 <= 40.0), "{}: upload cap too big", c.isp);
            let max_down = c.plans().iter().map(|p| p.down.0).fold(0.0, f64::max);
            assert!(max_down >= 900.0, "{}: top download should be ~1 Gbps", c.isp);
        }
    }

    #[test]
    fn only_isp_d_top_tier_is_fiber() {
        use st_netsim::Technology;
        assert_eq!(technology_for(City::D, 5), Technology::Fiber);
        assert_eq!(technology_for(City::D, 4), Technology::Docsis);
        assert_eq!(technology_for(City::A, 6), Technology::Docsis);
    }

    #[test]
    fn catalog_for_is_total() {
        for city in City::all() {
            let c = catalog_for(city);
            assert!(!c.is_empty());
        }
    }
}
