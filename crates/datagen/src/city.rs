//! The four-city study configuration.
//!
//! Campaign sizes follow the paper's Table 1; platform mix follows the
//! row counts of Table 3. A [`CityConfig`] carries a `scale` factor so
//! tests can run at 1:500 of the paper while the repro binary runs larger.

use crate::catalogs::catalog_for;
use st_speedtest::{PlanCatalog, Platform};

/// The four anonymized cities of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum City {
    /// City-A / State-A (ISP-A, the paper's walk-through market).
    A,
    /// City-B / State-B (ISP-B).
    B,
    /// City-C / State-C (ISP-C).
    C,
    /// City-D / State-D (ISP-D).
    D,
}

impl City {
    /// All cities in study order.
    pub fn all() -> [City; 4] {
        [City::A, City::B, City::C, City::D]
    }

    /// 0-based index used in measurement records.
    pub fn index(&self) -> u8 {
        match self {
            City::A => 0,
            City::B => 1,
            City::C => 2,
            City::D => 3,
        }
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            City::A => "City-A",
            City::B => "City-B",
            City::C => "City-C",
            City::D => "City-D",
        }
    }

    /// The matching state label for the MBA panel.
    pub fn state_label(&self) -> &'static str {
        match self {
            City::A => "State-A",
            City::B => "State-B",
            City::C => "State-C",
            City::D => "State-D",
        }
    }
}

/// Full-size campaign counts from Table 1 (Ookla, M-Lab, MBA) and the MBA
/// unit counts from Table 2.
const PAPER_SIZES: [(City, usize, usize, usize, usize); 4] = [
    (City::A, 214_000, 113_000, 25_900, 20),
    (City::B, 205_000, 376_000, 14_900, 17),
    (City::C, 128_000, 64_000, 10_900, 10),
    (City::D, 198_000, 166_000, 8_900, 11),
];

/// Ookla platform shares for City-A derived from Table 3 row totals:
/// Android 9.3%, iOS 35.3%, desktop-WiFi 5.3%, desktop-Ethernet 2.5%,
/// web 47.6%. Other cities use the same mix (Tables 5–7 are similar).
const OOKLA_PLATFORM_MIX: [(Platform, f64); 5] = [
    (Platform::AndroidApp, 0.093),
    (Platform::IosApp, 0.353),
    (Platform::DesktopWifiApp, 0.053),
    (Platform::DesktopEthernetApp, 0.025),
    (Platform::Web, 0.476),
];

/// Study configuration for one city.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Which city.
    pub city: City,
    /// The dominant ISP's plan catalog.
    pub catalog: PlanCatalog,
    /// Ookla tests to generate.
    pub ookla_tests: usize,
    /// M-Lab download tests to generate.
    pub mlab_tests: usize,
    /// MBA measurements to generate.
    pub mba_tests: usize,
    /// MBA whitebox units deployed in the matching state.
    pub mba_units: usize,
    /// Scale relative to the paper (1.0 = full size).
    pub scale: f64,
}

impl CityConfig {
    /// Configuration at `scale` of the paper's campaign sizes.
    ///
    /// # Panics
    /// If `scale` is not in `(0, 1]`.
    pub fn at_scale(city: City, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1], got {scale}");
        let (_, ookla, mlab, mba, units) =
            PAPER_SIZES.iter().copied().find(|(c, ..)| *c == city).expect("every city has a row");
        CityConfig {
            city,
            catalog: catalog_for(city),
            ookla_tests: ((ookla as f64 * scale) as usize).max(100),
            mlab_tests: ((mlab as f64 * scale) as usize).max(100),
            mba_tests: ((mba as f64 * scale) as usize).max(100),
            mba_units: units,
            scale,
        }
    }

    /// The Ookla platform mix (probabilities sum to 1).
    pub fn ookla_platform_mix(&self) -> &'static [(Platform, f64)] {
        &OOKLA_PLATFORM_MIX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_are_scaled() {
        let cfg = CityConfig::at_scale(City::A, 0.01);
        assert_eq!(cfg.ookla_tests, 2140);
        assert_eq!(cfg.mlab_tests, 1130);
        assert_eq!(cfg.mba_tests, 259);
        assert_eq!(cfg.mba_units, 20);
    }

    #[test]
    fn tiny_scale_keeps_a_floor() {
        let cfg = CityConfig::at_scale(City::D, 0.0001);
        assert!(cfg.ookla_tests >= 100);
        assert!(cfg.mba_tests >= 100);
    }

    #[test]
    fn platform_mix_sums_to_one() {
        let cfg = CityConfig::at_scale(City::B, 0.1);
        let total: f64 = cfg.ookla_platform_mix().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn city_labels_and_indices() {
        assert_eq!(City::A.index(), 0);
        assert_eq!(City::D.index(), 3);
        assert_eq!(City::C.label(), "City-C");
        assert_eq!(City::B.state_label(), "State-B");
        assert_eq!(City::all().len(), 4);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn zero_scale_rejected() {
        let _ = CityConfig::at_scale(City::A, 0.0);
    }

    #[test]
    fn each_city_has_its_own_catalog() {
        assert_eq!(CityConfig::at_scale(City::A, 0.1).catalog.isp, "ISP-A");
        assert_eq!(CityConfig::at_scale(City::D, 0.1).catalog.isp, "ISP-D");
    }
}
