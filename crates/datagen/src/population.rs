//! Subscriber population model.
//!
//! Each synthetic user owns exactly one subscription plan, one home WiFi
//! environment, one set of devices, and a testing habit. The population's
//! tier-adoption weights are fit to the paper's Table 3/5/6/7 row counts,
//! which is what makes "the majority of data points originate from lower
//! subscription tiers" (§5.1) come out of the generator.

use crate::city::City;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};
use st_netsim::AccessLink;
use st_speedtest::PlanCatalog;

/// One subscriber household.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// Stable user id.
    pub user_id: u64,
    /// Subscribed tier (1-based index into the city catalog) —
    /// the ground truth BST tries to recover.
    pub tier: usize,
    /// The provisioned access link (over-provisioning sampled per home).
    pub access: AccessLink,
    /// Mean RSSI of this home's WiFi at the places tests happen, dBm.
    pub home_rssi_mean: f64,
    /// Probability a WiFi test from this home lands on 2.4 GHz.
    pub p_24ghz: f64,
    /// Kernel memory of the user's phone, GB.
    pub phone_memory_gb: f64,
    /// Expected speed tests per month for this user.
    pub monthly_rate: f64,
}

/// A city's subscriber population.
#[derive(Debug, Clone)]
pub struct Population {
    users: Vec<UserProfile>,
}

/// Tier adoption weights per city, derived from the per-tier-group test
/// fractions of Tables 3 and 5–7 (within multi-plan groups the split
/// favours the cheaper plan).
pub fn tier_weights(city: City) -> Vec<f64> {
    match city {
        City::A => vec![0.172, 0.150, 0.107, 0.147, 0.218, 0.207],
        City::B => vec![0.166, 0.111, 0.136, 0.233, 0.156, 0.198],
        City::C => vec![0.142, 0.125, 0.089, 0.080, 0.053, 0.206, 0.137, 0.168],
        City::D => vec![0.214, 0.143, 0.208, 0.138, 0.296],
    }
}

/// M-Lab's user base skews further toward cheap tiers (Table 3: 62% of
/// City-A NDT tests sit in Tier 1-3 vs 43% for Ookla). Reweight by a
/// factor decaying with tier index.
pub fn mlab_tier_weights(city: City) -> Vec<f64> {
    let base = tier_weights(city);
    let n = base.len() as f64;
    let mut w: Vec<f64> =
        base.iter().enumerate().map(|(i, b)| b * (1.7 - 1.1 * i as f64 / (n - 1.0))).collect();
    let total: f64 = w.iter().sum();
    for v in &mut w {
        *v /= total;
    }
    w
}

impl Population {
    /// Generate `n_users` subscribers of `catalog` with the given tier
    /// weights (one weight per plan, in tier order).
    pub fn generate<R: Rng + ?Sized>(
        catalog: &PlanCatalog,
        weights: &[f64],
        n_users: usize,
        rng: &mut R,
    ) -> Self {
        Self::generate_with_technology(
            catalog,
            weights,
            n_users,
            |_| st_netsim::Technology::Docsis,
            rng,
        )
    }

    /// Like [`Population::generate`], with a per-tier last-mile technology
    /// (see `catalogs::technology_for`).
    pub fn generate_with_technology<R: Rng + ?Sized>(
        catalog: &PlanCatalog,
        weights: &[f64],
        n_users: usize,
        technology: impl Fn(usize) -> st_netsim::Technology,
        rng: &mut R,
    ) -> Self {
        assert_eq!(
            weights.len(),
            catalog.len(),
            "need one weight per plan ({} != {})",
            weights.len(),
            catalog.len()
        );
        assert!(n_users > 0, "population must be non-empty");
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be non-negative");
        let total_w: f64 = weights.iter().sum();
        assert!(total_w > 0.0, "weights must not all be zero");

        // Fit to the paper's 5 GHz RSSI bin shares (§6.1): 5% above -30 dBm,
        // 37% in -50..-30, 49% in -70..-50, 9% below -70.
        let rssi_dist: Normal<f64> = Normal::new(-55.0, 11.0).expect("valid sigma");
        // Median ≈ 0.9 tests/month with a heavy tail: most users test
        // rarely, a minority test >5×/month (paper §4.1: 23k of 85k users
        // had ≥5 lifetime tests).
        let rate_dist = LogNormal::new(0.9_f64.ln(), 1.1).expect("valid sigma");

        let users = (0..n_users)
            .map(|i| {
                let tier = sample_weighted(weights, total_w, rng) + 1;
                let plan = catalog.plan(tier).expect("tier sampled from catalog");
                let access = AccessLink::provision_with(plan.down, plan.up, technology(tier), rng);
                UserProfile {
                    user_id: i as u64,
                    tier,
                    access,
                    home_rssi_mean: rssi_dist.sample(rng).clamp(-86.0, -27.0),
                    p_24ghz: 0.23,
                    phone_memory_gb: sample_phone_memory(rng),
                    monthly_rate: rate_dist.sample(rng).clamp(0.05, 60.0),
                }
            })
            .collect();
        Population { users }
    }

    /// All users.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// Mutable access to the users — used by fault injection
    /// ([`crate::faults`]) to degrade a segment's provisioned links.
    pub fn users_mut(&mut self) -> &mut [UserProfile] {
        &mut self.users
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Always false: construction requires `n_users > 0`.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Pick a random user, weighted by testing rate — frequent testers
    /// contribute proportionally more of the campaign's measurements.
    pub fn sample_tester<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> &'a UserProfile {
        // Rates are bounded (0.05..=60); rejection sampling terminates fast.
        loop {
            let u = &self.users[rng.gen_range(0..self.users.len())];
            if rng.gen::<f64>() * 60.0 < u.monthly_rate {
                return u;
            }
        }
    }
}

/// Sample an index from non-negative weights.
fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], total: f64, rng: &mut R) -> usize {
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

/// Phone kernel-memory distribution matching the paper's §6.1 shares:
/// 7% under 2 GB, 17% in 2–4, 17% in 4–6, 59% above 6.
fn sample_phone_memory<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u = rng.gen::<f64>();
    if u < 0.07 {
        0.8 + rng.gen::<f64>() * 1.2 // 0.8–2.0
    } else if u < 0.24 {
        2.0 + rng.gen::<f64>() * 2.0 // 2–4
    } else if u < 0.41 {
        4.0 + rng.gen::<f64>() * 2.0 // 4–6
    } else {
        6.0 + rng.gen::<f64>() * 6.0 // 6–12
    }
}

/// Sample a test's local start hour from the diurnal volume profile of
/// Fig. 11: night 10%, morning 22%, afternoon 33%, evening 35%.
pub fn sample_hour<R: Rng + ?Sized>(rng: &mut R) -> u8 {
    let u = rng.gen::<f64>();
    let (bin, frac) = if u < 0.10 {
        (0u8, u / 0.10)
    } else if u < 0.32 {
        (1, (u - 0.10) / 0.22)
    } else if u < 0.65 {
        (2, (u - 0.32) / 0.33)
    } else {
        (3, (u - 0.65) / 0.35)
    };
    bin * 6 + ((frac * 6.0) as u8).min(5)
}

/// Sample a uniform day of year (0..365).
pub fn sample_day<R: Rng + ?Sized>(rng: &mut R) -> u16 {
    rng.gen_range(0..365)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalogs::catalog_for;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(33)
    }

    #[test]
    fn weights_cover_each_catalog() {
        for city in City::all() {
            let cat = catalog_for(city);
            let w = tier_weights(city);
            assert_eq!(w.len(), cat.len(), "{city:?}");
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 0.01, "{city:?}");
            let m = mlab_tier_weights(city);
            assert_eq!(m.len(), cat.len());
            assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mlab_weights_skew_low() {
        for city in City::all() {
            let base = tier_weights(city);
            let mlab = mlab_tier_weights(city);
            assert!(mlab[0] > base[0], "{city:?}: lowest tier should gain mass");
            let last = base.len() - 1;
            assert!(mlab[last] < base[last], "{city:?}: top tier should lose mass");
        }
    }

    #[test]
    fn tier_distribution_tracks_weights() {
        let cat = catalog_for(City::A);
        let w = tier_weights(City::A);
        let pop = Population::generate(&cat, &w, 20_000, &mut rng());
        let mut counts = vec![0usize; cat.len()];
        for u in pop.users() {
            counts[u.tier - 1] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let got = c as f64 / pop.len() as f64;
            assert!((got - w[i]).abs() < 0.02, "tier {}: {got} vs {}", i + 1, w[i]);
        }
    }

    #[test]
    fn memory_distribution_matches_bins() {
        let mut r = rng();
        let n = 20_000;
        let mut bins = [0usize; 4];
        for _ in 0..n {
            let gb = sample_phone_memory(&mut r);
            let b = if gb < 2.0 {
                0
            } else if gb < 4.0 {
                1
            } else if gb < 6.0 {
                2
            } else {
                3
            };
            bins[b] += 1;
        }
        let frac = |i: usize| bins[i] as f64 / n as f64;
        assert!((frac(0) - 0.07).abs() < 0.02);
        assert!((frac(1) - 0.17).abs() < 0.02);
        assert!((frac(2) - 0.17).abs() < 0.02);
        assert!((frac(3) - 0.59).abs() < 0.02);
    }

    #[test]
    fn hour_distribution_matches_fig11_shape() {
        let mut r = rng();
        let n = 40_000;
        let mut bins = [0usize; 4];
        for _ in 0..n {
            let h = sample_hour(&mut r);
            assert!(h < 24);
            bins[(h / 6) as usize] += 1;
        }
        let frac: Vec<f64> = bins.iter().map(|&b| b as f64 / n as f64).collect();
        assert!(frac[0] < frac[1] && frac[1] < frac[2], "night < morning < afternoon: {frac:?}");
        assert!((frac[3] - 0.35).abs() < 0.02, "evening share {frac:?}");
    }

    #[test]
    fn profiles_are_physically_plausible() {
        let cat = catalog_for(City::C);
        let pop = Population::generate(&cat, &tier_weights(City::C), 500, &mut rng());
        for u in pop.users() {
            assert!((1..=cat.len()).contains(&u.tier));
            assert!((-86.0..=-27.0).contains(&u.home_rssi_mean));
            assert!(u.phone_memory_gb > 0.5);
            assert!(u.monthly_rate > 0.0);
        }
    }

    #[test]
    fn heavy_tail_produces_frequent_testers() {
        let cat = catalog_for(City::A);
        let pop = Population::generate(&cat, &tier_weights(City::A), 10_000, &mut rng());
        let frequent = pop.users().iter().filter(|u| u.monthly_rate >= 5.0).count();
        let frac = frequent as f64 / pop.len() as f64;
        // The paper's ≥5-tests cohort exists but is a minority.
        assert!((0.02..0.30).contains(&frac), "frequent-tester share {frac}");
    }

    #[test]
    fn tester_sampling_prefers_frequent_users() {
        let cat = catalog_for(City::A);
        let pop = Population::generate(&cat, &tier_weights(City::A), 2_000, &mut rng());
        let mut r = rng();
        let mean_rate: f64 =
            pop.users().iter().map(|u| u.monthly_rate).sum::<f64>() / pop.len() as f64;
        let sampled_mean: f64 =
            (0..2_000).map(|_| pop.sample_tester(&mut r).monthly_rate).sum::<f64>() / 2_000.0;
        assert!(
            sampled_mean > mean_rate,
            "sampled {sampled_mean} should exceed population mean {mean_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "one weight per plan")]
    fn weight_count_mismatch_rejected() {
        let cat = catalog_for(City::A);
        let _ = Population::generate(&cat, &[1.0], 10, &mut rng());
    }

    #[test]
    #[should_panic(expected = "population must be non-empty")]
    fn empty_population_rejected() {
        let cat = catalog_for(City::A);
        let w = tier_weights(City::A);
        let _ = Population::generate(&cat, &w, 0, &mut rng());
    }
}
