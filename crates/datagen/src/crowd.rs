//! Crowdsourced campaign generation (Ookla and M-Lab).
//!
//! Each generated test picks a subscriber (weighted by testing habit), a
//! time, and a device/medium appropriate to its platform, samples the
//! user's network path, and runs the vendor's methodology over it. The
//! M-Lab generator additionally emits download and upload as *separate*
//! NDT events and re-associates them with the paper's 120-second pairing
//! window — unpaired downloads are dropped, exactly as a real pipeline
//! must drop them.

use crate::city::CityConfig;
use crate::par;
use crate::population::{sample_day, sample_hour, Population, UserProfile};
use rand::Rng;
use st_netsim::{AccessMedium, Band, DeviceProfile, NetworkPath, RttModel, WifiLink};
use st_speedtest::{
    pair_ndt_tests, Access, Measurement, Methodology, NdtEvent, NdtMethodology, OoklaMethodology,
    Platform,
};

/// Sample the per-test WiFi link for a user: their home's mean RSSI plus
/// positional variation, on 2.4 GHz with the user's home probability.
fn sample_wifi<R: Rng + ?Sized>(user: &UserProfile, rng: &mut R, rssi_bonus: f64) -> WifiLink {
    let band = if rng.gen::<f64>() < user.p_24ghz { Band::G2_4 } else { Band::G5 };
    let rssi = user.home_rssi_mean + rssi_bonus + (rng.gen::<f64>() - 0.5) * 10.0;
    WifiLink::new(band, rssi)
}

/// The device and medium behind a test, by platform. Web-based platforms
/// have a real device underneath — it just is not *recorded*.
fn sample_endpoint<R: Rng + ?Sized>(
    platform: Platform,
    user: &UserProfile,
    rng: &mut R,
) -> (AccessMedium, DeviceProfile, Access, Option<f64>) {
    match platform {
        Platform::AndroidApp => {
            let wifi = sample_wifi(user, rng, 0.0);
            // Available kernel memory jitters test to test.
            let mem = (user.phone_memory_gb * (0.9 + rng.gen::<f64>() * 0.2)).max(0.6);
            (
                AccessMedium::Wifi(wifi),
                DeviceProfile::from_memory(mem, rng),
                Access::Wifi { band: wifi.band, rssi_dbm: wifi.rssi_dbm },
                Some(mem),
            )
        }
        Platform::IosApp => {
            let wifi = sample_wifi(user, rng, 0.0);
            // iPhones: 3–6 GB, never reported to Ookla.
            let mem = 3.0 + rng.gen::<f64>() * 3.0;
            (
                AccessMedium::Wifi(wifi),
                DeviceProfile::from_memory(mem, rng),
                Access::Wifi { band: wifi.band, rssi_dbm: wifi.rssi_dbm },
                None,
            )
        }
        Platform::DesktopWifiApp => {
            // Desktops sit still and closer to the router on average.
            let wifi = sample_wifi(user, rng, 4.0);
            let mem = 8.0 + rng.gen::<f64>() * 24.0;
            (
                AccessMedium::Wifi(wifi),
                DeviceProfile::from_memory(mem, rng),
                Access::Wifi { band: wifi.band, rssi_dbm: wifi.rssi_dbm },
                None,
            )
        }
        Platform::DesktopEthernetApp => {
            let mem = 8.0 + rng.gen::<f64>() * 24.0;
            (
                AccessMedium::gigabit_ethernet(),
                DeviceProfile::from_memory(mem, rng),
                Access::Ethernet,
                None,
            )
        }
        Platform::Web | Platform::NdtWeb => {
            // Hidden mixture: mostly WiFi laptops/phones, some wired.
            if rng.gen::<f64>() < 0.82 {
                let wifi = sample_wifi(user, rng, 1.0);
                let mem = 2.0 + rng.gen::<f64>() * 12.0;
                (
                    AccessMedium::Wifi(wifi),
                    DeviceProfile::from_memory(mem, rng),
                    Access::Unknown,
                    None,
                )
            } else {
                let mem = 4.0 + rng.gen::<f64>() * 24.0;
                (
                    AccessMedium::gigabit_ethernet(),
                    DeviceProfile::from_memory(mem, rng),
                    Access::Unknown,
                    None,
                )
            }
        }
        Platform::MbaUnit => (
            AccessMedium::gigabit_ethernet(),
            DeviceProfile::unconstrained(),
            Access::Ethernet,
            None,
        ),
    }
}

fn sample_platform<R: Rng + ?Sized>(mix: &[(Platform, f64)], rng: &mut R) -> Platform {
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut target = rng.gen::<f64>() * total;
    for &(p, w) in mix {
        if target < w {
            return p;
        }
        target -= w;
    }
    mix.last().expect("mix non-empty").0
}

/// One Ookla test: everything inside the campaign loop, so the same body
/// serves the sequential and the chunked-parallel generators.
fn ookla_one<R: Rng + ?Sized>(
    cfg: &CityConfig,
    pop: &Population,
    mix: &[(Platform, f64)],
    methodology: &OoklaMethodology,
    rtt_model: &RttModel,
    id: usize,
    rng: &mut R,
) -> Measurement {
    let platform = sample_platform(mix, rng);
    let user = pop.sample_tester(rng);
    let (day, hour) = (sample_day(rng), sample_hour(rng));
    let (medium, device, access, mem) = sample_endpoint(platform, user, rng);
    let path = NetworkPath::new(user.access.clone(), medium, device, rtt_model.clone());
    let snap = path.snapshot(hour, rng);
    let res = methodology.measure(&snap, rng);
    Measurement {
        id: id as u64,
        user_id: user.user_id,
        platform,
        city: cfg.city.index(),
        day,
        hour,
        down_mbps: res.down.0,
        up_mbps: res.up.0,
        rtt_ms: res.rtt_s * 1000.0,
        loaded_rtt_ms: res.loaded_rtt_s * 1000.0,
        access,
        kernel_memory_gb: mem,
        truth_tier: Some(user.tier),
    }
}

/// Generate a city's Ookla campaign.
pub fn generate_ookla<R: Rng + ?Sized>(
    cfg: &CityConfig,
    pop: &Population,
    rng: &mut R,
) -> Vec<Measurement> {
    let methodology = OoklaMethodology::default();
    let rtt_model = RttModel::metro();
    let mix = cfg.ookla_platform_mix();
    let mut out = Vec::with_capacity(cfg.ookla_tests);
    for id in 0..cfg.ookla_tests {
        out.push(ookla_one(cfg, pop, mix, &methodology, &rtt_model, id, rng));
    }
    out
}

/// Generate a city's Ookla campaign in deterministic chunks (see
/// [`crate::par`]): output depends on `stream` only, never on
/// `parallelism`.
pub fn generate_ookla_chunked(
    cfg: &CityConfig,
    pop: &Population,
    stream: u64,
    parallelism: usize,
) -> Vec<Measurement> {
    let methodology = OoklaMethodology::default();
    let rtt_model = RttModel::metro();
    let mix = cfg.ookla_platform_mix();
    par::run_chunked(cfg.ookla_tests, stream, parallelism, |range, rng| {
        range.map(|id| ookla_one(cfg, pop, mix, &methodology, &rtt_model, id, rng)).collect()
    })
}

/// Context carried from an NDT test's generation to its paired record.
struct NdtCtx {
    user_id: u64,
    tier: usize,
    day: u16,
    hour: u8,
    rtt_ms: f64,
    loaded_rtt_ms: f64,
}

/// One NDT test: the raw download and upload events plus the context
/// needed to build the final record if pairing succeeds.
fn mlab_one<R: Rng + ?Sized>(
    pop: &Population,
    methodology: &NdtMethodology,
    rtt_model: &RttModel,
    rng: &mut R,
) -> (NdtEvent, NdtEvent, NdtCtx) {
    let user = pop.sample_tester(rng);
    let (day, hour) = (sample_day(rng), sample_hour(rng));
    let (medium, device, _access, _mem) = sample_endpoint(Platform::NdtWeb, user, rng);
    let path = NetworkPath::new(user.access.clone(), medium, device, rtt_model.clone());
    let mut snap = path.snapshot(hour, rng);
    // A slice of NDT uploads are browser/client-limited to ~1 Mbps —
    // the extra low cluster visible in the paper's Fig. 6.
    if rng.gen::<f64>() < 0.07 {
        snap.up_available = snap.up_available.min(st_netsim::Mbps(0.6 + rng.gen::<f64>()));
    }
    let res = methodology.measure(&snap, rng);

    // NDT runs download first; the upload test usually starts seconds
    // later, occasionally far outside the pairing window.
    let t0 = (day as f64 * 24.0 + hour as f64) * 3600.0 + rng.gen::<f64>() * 3600.0;
    let up_delay = if rng.gen::<f64>() < 0.95 {
        12.0 + rng.gen::<f64>() * 90.0
    } else {
        200.0 + rng.gen::<f64>() * 600.0
    };
    // Client IP doubles as the user key; one well-known server.
    let download =
        NdtEvent { client_ip: user.user_id, server_ip: 1, start_s: t0, mbps: res.down.0 };
    let upload =
        NdtEvent { client_ip: user.user_id, server_ip: 1, start_s: t0 + up_delay, mbps: res.up.0 };
    let ctx = NdtCtx {
        user_id: user.user_id,
        tier: user.tier,
        day,
        hour,
        rtt_ms: res.rtt_s * 1000.0,
        loaded_rtt_ms: res.loaded_rtt_s * 1000.0,
    };
    (download, upload, ctx)
}

/// Pair raw NDT events with the paper's 120 s window and build the final
/// measurements; unpaired downloads are dropped.
fn pair_mlab(cfg: &CityConfig, raw: Vec<(NdtEvent, NdtEvent, NdtCtx)>) -> Vec<Measurement> {
    let mut downloads = Vec::with_capacity(raw.len());
    let mut uploads = Vec::with_capacity(raw.len());
    let mut ctxs = Vec::with_capacity(raw.len());
    for (d, u, c) in raw {
        downloads.push(d);
        uploads.push(u);
        ctxs.push(c);
    }
    let pairs = pair_ndt_tests(&downloads, &uploads, 120.0);
    pairs
        .into_iter()
        .zip(ctxs)
        .enumerate()
        .filter_map(|(i, (pair, ctx))| {
            let upload = pair.upload?;
            Some(Measurement {
                id: i as u64,
                user_id: ctx.user_id,
                platform: Platform::NdtWeb,
                city: cfg.city.index(),
                day: ctx.day,
                hour: ctx.hour,
                down_mbps: pair.download.mbps,
                up_mbps: upload.mbps,
                rtt_ms: ctx.rtt_ms,
                loaded_rtt_ms: ctx.loaded_rtt_ms,
                access: Access::Unknown,
                kernel_memory_gb: None,
                truth_tier: Some(ctx.tier),
            })
        })
        .collect()
}

/// Generate a city's M-Lab campaign: separate NDT download/upload events,
/// re-paired with the 120 s window. Returns the paired measurements.
pub fn generate_mlab<R: Rng + ?Sized>(
    cfg: &CityConfig,
    pop: &Population,
    rng: &mut R,
) -> Vec<Measurement> {
    let methodology = NdtMethodology::default();
    let rtt_model = RttModel::metro();
    let raw = (0..cfg.mlab_tests).map(|_| mlab_one(pop, &methodology, &rtt_model, rng)).collect();
    pair_mlab(cfg, raw)
}

/// Generate a city's M-Lab campaign in deterministic chunks (see
/// [`crate::par`]). Event generation parallelizes; the 120 s pairing runs
/// sequentially over the stitched event stream, exactly as in the
/// sequential path.
pub fn generate_mlab_chunked(
    cfg: &CityConfig,
    pop: &Population,
    stream: u64,
    parallelism: usize,
) -> Vec<Measurement> {
    let methodology = NdtMethodology::default();
    let rtt_model = RttModel::metro();
    let raw = par::run_chunked(cfg.mlab_tests, stream, parallelism, |range, rng| {
        range.map(|_| mlab_one(pop, &methodology, &rtt_model, rng)).collect()
    });
    pair_mlab(cfg, raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::City;
    use crate::population::{mlab_tier_weights, tier_weights};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(71)
    }

    fn small_cfg() -> CityConfig {
        let mut cfg = CityConfig::at_scale(City::A, 0.001);
        cfg.ookla_tests = 600;
        cfg.mlab_tests = 400;
        cfg
    }

    fn pop(cfg: &CityConfig, r: &mut StdRng) -> Population {
        Population::generate(&cfg.catalog, &tier_weights(cfg.city), 400, r)
    }

    #[test]
    fn ookla_campaign_has_requested_size_and_sane_values() {
        let mut r = rng();
        let cfg = small_cfg();
        let pop = pop(&cfg, &mut r);
        let tests = generate_ookla(&cfg, &pop, &mut r);
        assert_eq!(tests.len(), 600);
        for m in &tests {
            assert!(m.down_mbps.is_finite() && m.down_mbps >= 0.0);
            assert!(m.up_mbps.is_finite() && m.up_mbps >= 0.0);
            assert!(m.down_mbps <= 1500.0, "impossible speed {}", m.down_mbps);
            assert!(m.up_mbps <= 50.0, "impossible upload {}", m.up_mbps);
            assert!(m.rtt_ms > 0.0);
            assert!(m.truth_tier.is_some());
            assert!(m.hour < 24 && m.day < 365);
        }
    }

    #[test]
    fn ookla_platform_mix_is_respected() {
        let mut r = rng();
        let mut cfg = small_cfg();
        cfg.ookla_tests = 4000;
        let pop = pop(&cfg, &mut r);
        let tests = generate_ookla(&cfg, &pop, &mut r);
        let web = tests.iter().filter(|m| m.platform == Platform::Web).count() as f64
            / tests.len() as f64;
        assert!((web - 0.476).abs() < 0.05, "web share {web}");
        let android = tests.iter().filter(|m| m.platform == Platform::AndroidApp).count();
        assert!(android > 0);
    }

    #[test]
    fn android_tests_carry_metadata_web_tests_do_not() {
        let mut r = rng();
        let cfg = small_cfg();
        let pop = pop(&cfg, &mut r);
        for m in generate_ookla(&cfg, &pop, &mut r) {
            match m.platform {
                Platform::AndroidApp => {
                    assert!(m.kernel_memory_gb.is_some());
                    assert!(m.access.is_wifi());
                }
                Platform::Web => {
                    assert!(m.kernel_memory_gb.is_none());
                    assert_eq!(m.access, Access::Unknown);
                }
                Platform::DesktopEthernetApp => assert_eq!(m.access, Access::Ethernet),
                _ => {}
            }
        }
    }

    #[test]
    fn uploads_cluster_near_plan_caps() {
        // The §4.1 observation: recorded uploads sit close to the small set
        // of offered upload speeds. Check the majority are within 30% of a
        // cap.
        let mut r = rng();
        let mut cfg = small_cfg();
        cfg.ookla_tests = 1500;
        let pop = pop(&cfg, &mut r);
        let tests = generate_ookla(&cfg, &pop, &mut r);
        let caps = [5.0, 10.0, 15.0, 35.0];
        let near =
            tests.iter().filter(|m| caps.iter().any(|c| (m.up_mbps - c).abs() / c < 0.3)).count()
                as f64
                / tests.len() as f64;
        assert!(near > 0.6, "only {near} of uploads near caps");
    }

    #[test]
    fn mlab_campaign_pairs_most_tests() {
        let mut r = rng();
        let cfg = small_cfg();
        let mpop = Population::generate(&cfg.catalog, &mlab_tier_weights(cfg.city), 300, &mut r);
        let tests = generate_mlab(&cfg, &mpop, &mut r);
        // ~95% of uploads start in-window, but same-user collisions can
        // drop a few more; well over half must pair.
        assert!(tests.len() > cfg.mlab_tests / 2, "paired {} of {}", tests.len(), 400);
        assert!(tests.len() <= cfg.mlab_tests);
        for m in &tests {
            assert_eq!(m.platform, Platform::NdtWeb);
            assert!(m.down_mbps.is_finite() && m.up_mbps.is_finite());
        }
    }

    #[test]
    fn mlab_has_a_low_upload_cluster() {
        let mut r = rng();
        let mut cfg = small_cfg();
        cfg.mlab_tests = 1500;
        let mpop = Population::generate(&cfg.catalog, &mlab_tier_weights(cfg.city), 400, &mut r);
        let tests = generate_mlab(&cfg, &mpop, &mut r);
        let low = tests.iter().filter(|m| m.up_mbps < 2.0).count() as f64 / tests.len() as f64;
        assert!((0.02..0.15).contains(&low), "low-upload share {low}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_cfg();
        let gen = || {
            let mut r = StdRng::seed_from_u64(99);
            let p = Population::generate(&cfg.catalog, &tier_weights(cfg.city), 200, &mut r);
            generate_ookla(&cfg, &p, &mut r)
        };
        let a = gen();
        let b = gen();
        assert_eq!(a, b);
    }
}
