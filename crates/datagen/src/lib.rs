#![warn(missing_docs)]
//! Synthetic replacements for the paper's gated datasets.
//!
//! Every dataset in the paper is access-restricted (Ookla Speedtest
//! Intelligence under DUA, M-Lab's multi-terabyte BigQuery archive, the
//! FCC MBA raw data, Zillow addresses). This crate substitutes them with a
//! generative model of the measurement ecosystem itself:
//!
//! * [`catalogs`] — per-ISP subscription-plan catalogs. ISP-A is quoted
//!   verbatim from paper §4.1; ISPs B–D are reconstructed from the
//!   appendix tables and figures.
//! * [`city`] — the four-city study configuration: dominant ISP, campaign
//!   sizes (Table 1), platform mix (Table 3).
//! * [`population`] — subscribers: plan adoption skewed toward cheap
//!   tiers, home WiFi environments, devices and kernel memory, testing
//!   frequency, and diurnal habits.
//! * [`crowd`] — crowdsourced campaigns: Ookla native-app/web tests and
//!   M-Lab NDT tests (generated as separate up/down events and re-paired
//!   with the paper's 120 s window).
//! * [`mba`] — the FCC MBA panel: wired whiteboxes testing around the
//!   clock, with the ground-truth plan retained for evaluating BST.
//! * [`faults`] — injectable access-network faults (oversubscribed
//!   nodes, degraded plant, mis-provisioned upstream) giving the
//!   challenge-triage pipeline true positives with known ground truth,
//!   plus dirty-measurement corruption (aborted/truncated tests, zero and
//!   NaN throughput, duplicate submissions, clock skew) so the
//!   sanitization stage can be scored against known labels.
//! * [`scenario`] — one-call generation of a full city dataset plus
//!   conversion into `st-dataframe` frames for analysis.
//!
//! Everything is deterministic given a seed: the same `(city, scale,
//! seed)` triple always yields the same measurements — at *every*
//! parallelism level, because generation is partitioned into fixed
//! chunks whose RNGs depend only on `(seed, chunk index)` (see [`par`]).

pub mod catalogs;
pub mod city;
pub mod crowd;
pub mod faults;
pub mod mba;
pub mod par;
pub mod population;
pub mod scenario;

pub use catalogs::{catalog_for, isp_a, isp_b, isp_c, isp_d, technology_for};
pub use city::{City, CityConfig};
pub use crowd::{generate_mlab, generate_mlab_chunked, generate_ookla, generate_ookla_chunked};
pub use faults::{inject, inject_dirty, DirtyKind, DirtyLabel, DirtyScenario, FaultScenario};
pub use mba::{generate_mba, generate_mba_chunked};
pub use population::{Population, UserProfile};
pub use scenario::{measurements_to_frame, CityDataset};
