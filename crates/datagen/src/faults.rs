//! Fault injection: chronically degraded access segments.
//!
//! The challenge process the paper's recommendations target (§8) exists
//! because *some* under-performance really is the ISP's: an oversubscribed
//! node, degraded plant, a mis-provisioned CMTS port. This module injects
//! exactly that into a generated population, so the triage pipeline
//! (`st-bst::diagnose`) has true positives to find — and so its
//! false-positive/false-negative behaviour can be measured against known
//! fault ground truth.

use crate::population::Population;
use rand::Rng;

/// A fault scenario applied to a fraction of a population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScenario {
    /// Fraction of users on the degraded segment, `0..1`.
    pub affected_fraction: f64,
    /// Multiplier on the affected homes' downstream capacity (e.g. 0.35
    /// = the node delivers ~a third of plan at all times).
    pub down_capacity_factor: f64,
    /// Multiplier on upstream capacity. Upstream typically survives node
    /// congestion better; default scenarios keep it near 1.
    pub up_capacity_factor: f64,
}

impl FaultScenario {
    /// A chronically oversubscribed node: 20% of homes at ~35% of plan
    /// downstream, upstream intact.
    pub fn oversubscribed_node() -> Self {
        FaultScenario {
            affected_fraction: 0.2,
            down_capacity_factor: 0.35,
            up_capacity_factor: 0.95,
        }
    }
}

/// Apply `scenario` to `population`, returning the ids of affected users
/// (the fault ground truth).
///
/// Degradation is applied to the provisioned access link itself — the
/// over-provisioning factor — so every subsequent measurement from an
/// affected home sees the reduced capacity regardless of medium, device,
/// or methodology. Exactly what a true access-network fault looks like.
pub fn inject<R: Rng + ?Sized>(
    population: &mut Population,
    scenario: FaultScenario,
    rng: &mut R,
) -> Vec<u64> {
    assert!(
        (0.0..=1.0).contains(&scenario.affected_fraction),
        "affected fraction must be in [0, 1]"
    );
    assert!(
        scenario.down_capacity_factor > 0.0 && scenario.up_capacity_factor > 0.0,
        "capacity factors must be positive"
    );
    let mut affected = Vec::new();
    for user in population.users_mut() {
        if rng.gen::<f64>() < scenario.affected_fraction {
            user.access.overprovision *= scenario.down_capacity_factor;
            // Upstream degradation folds into the same knob the link model
            // reads for upload capacity.
            if scenario.up_capacity_factor < 1.0 {
                user.access.up_plan = user.access.up_plan * scenario.up_capacity_factor;
            }
            affected.push(user.user_id);
        }
    }
    affected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalogs::catalog_for;
    use crate::city::{City, CityConfig};
    use crate::crowd::generate_ookla;
    use crate::population::tier_weights;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(r: &mut StdRng) -> Population {
        let cat = catalog_for(City::A);
        Population::generate(&cat, &tier_weights(City::A), 800, r)
    }

    #[test]
    fn injection_hits_the_requested_fraction() {
        let mut r = StdRng::seed_from_u64(3);
        let mut pop = population(&mut r);
        let affected = inject(&mut pop, FaultScenario::oversubscribed_node(), &mut r);
        let frac = affected.len() as f64 / pop.len() as f64;
        assert!((0.12..0.28).contains(&frac), "affected fraction {frac}");
    }

    #[test]
    fn affected_homes_measure_far_below_plan() {
        let mut r = StdRng::seed_from_u64(5);
        let mut cfg = CityConfig::at_scale(City::A, 0.001);
        cfg.ookla_tests = 2000;
        let mut pop = Population::generate(&cfg.catalog, &tier_weights(City::A), 500, &mut r);
        let affected = inject(&mut pop, FaultScenario::oversubscribed_node(), &mut r);
        assert!(!affected.is_empty());
        let tests = generate_ookla(&cfg, &pop, &mut r);

        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let mut norm_affected = Vec::new();
        let mut norm_healthy = Vec::new();
        for m in &tests {
            let plan = cfg.catalog.plan(m.truth_tier.unwrap()).unwrap().down.0;
            let n = m.down_mbps / plan;
            if affected.contains(&m.user_id) {
                norm_affected.push(n);
            } else {
                norm_healthy.push(n);
            }
        }
        assert!(norm_affected.len() > 50, "affected tests: {}", norm_affected.len());
        let (ma, mh) = (med(&mut norm_affected), med(&mut norm_healthy));
        assert!(ma < mh * 0.7, "affected median {ma} should sit far below healthy {mh}");
    }

    #[test]
    fn uploads_survive_a_downstream_fault() {
        // The oversubscribed-node scenario keeps upstream ~intact, so BST
        // still has a clean upload axis to cluster on.
        let mut r = StdRng::seed_from_u64(7);
        let mut cfg = CityConfig::at_scale(City::A, 0.001);
        cfg.ookla_tests = 1500;
        let mut pop = Population::generate(&cfg.catalog, &tier_weights(City::A), 400, &mut r);
        let affected = inject(&mut pop, FaultScenario::oversubscribed_node(), &mut r);
        let tests = generate_ookla(&cfg, &pop, &mut r);
        let caps = [5.0, 10.0, 15.0, 35.0];
        let near = tests
            .iter()
            .filter(|m| affected.contains(&m.user_id))
            .filter(|m| caps.iter().any(|c| (m.up_mbps - c).abs() / c < 0.35))
            .count();
        let total = tests.iter().filter(|m| affected.contains(&m.user_id)).count();
        assert!(total > 30);
        assert!(near as f64 / total as f64 > 0.5, "{near}/{total} affected uploads near caps");
    }

    #[test]
    fn zero_fraction_is_a_no_op() {
        let mut r = StdRng::seed_from_u64(11);
        let mut pop = population(&mut r);
        let before: Vec<f64> = pop.users().iter().map(|u| u.access.overprovision).collect();
        let scenario = FaultScenario {
            affected_fraction: 0.0,
            down_capacity_factor: 0.1,
            up_capacity_factor: 0.1,
        };
        let affected = inject(&mut pop, scenario, &mut r);
        assert!(affected.is_empty());
        let after: Vec<f64> = pop.users().iter().map(|u| u.access.overprovision).collect();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "capacity factors must be positive")]
    fn zero_capacity_factor_rejected() {
        let mut r = StdRng::seed_from_u64(13);
        let mut pop = population(&mut r);
        let _ = inject(
            &mut pop,
            FaultScenario {
                affected_fraction: 0.1,
                down_capacity_factor: 0.0,
                up_capacity_factor: 1.0,
            },
            &mut r,
        );
    }
}
