//! Fault injection: degraded access segments and dirty measurements.
//!
//! Two fault families live here, mirroring the two ways real crowdsourced
//! corpora deviate from the clean generative model:
//!
//! 1. **Access-network faults** ([`FaultScenario`]) — the challenge process
//!    the paper's recommendations target (§8) exists because *some*
//!    under-performance really is the ISP's: an oversubscribed node,
//!    degraded plant, a mis-provisioned CMTS port. [`inject`] applies such
//!    a scenario to a generated population, so the triage pipeline
//!    (`st-bst::diagnose`) has true positives to find — and so its
//!    false-positive/false-negative behaviour can be measured against
//!    known fault ground truth.
//! 2. **Dirty measurements** ([`DirtyScenario`]) — real Ookla/M-Lab
//!    archives are full of aborted, truncated, duplicated, and
//!    clock-skewed tests. [`inject_dirty`] corrupts a generated campaign
//!    at configurable per-kind rates with ground-truth labels, so the
//!    sanitization stage (`st_speedtest::sanitize`) can be scored against
//!    known corruption instead of hand-waved.

use crate::population::Population;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use st_speedtest::Measurement;
use std::collections::HashSet;

/// A fault scenario applied to a fraction of a population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScenario {
    /// Fraction of users on the degraded segment, `0..1`.
    pub affected_fraction: f64,
    /// Multiplier on the affected homes' downstream capacity (e.g. 0.35
    /// = the node delivers ~a third of plan at all times).
    pub down_capacity_factor: f64,
    /// Multiplier on upstream capacity. Upstream typically survives node
    /// congestion better; default scenarios keep it near 1.
    pub up_capacity_factor: f64,
}

impl FaultScenario {
    /// A chronically oversubscribed node: 20% of homes at ~35% of plan
    /// downstream, upstream intact.
    pub fn oversubscribed_node() -> Self {
        FaultScenario {
            affected_fraction: 0.2,
            down_capacity_factor: 0.35,
            up_capacity_factor: 0.95,
        }
    }

    /// Degraded physical plant (corroded taps, water-damaged drops): a
    /// smaller slice of homes, but both directions suffer — the RF
    /// impairment does not care which way the bits flow.
    pub fn degraded_plant() -> Self {
        FaultScenario {
            affected_fraction: 0.1,
            down_capacity_factor: 0.4,
            up_capacity_factor: 0.55,
        }
    }

    /// A mis-provisioned upstream channel (wrong service-class on the
    /// CMTS port): downstream delivers plan, upstream is crushed. The
    /// inverse shape of [`FaultScenario::oversubscribed_node`], so triage
    /// has a second distinguishable ground-truth signature.
    pub fn misprovisioned_upstream() -> Self {
        FaultScenario {
            affected_fraction: 0.08,
            down_capacity_factor: 0.97,
            up_capacity_factor: 0.3,
        }
    }
}

/// Apply `scenario` to `population`, returning the ids of affected users
/// (the fault ground truth) as a set for O(1) membership tests.
///
/// Degradation is applied to the provisioned access link itself — the
/// over-provisioning factor — so every subsequent measurement from an
/// affected home sees the reduced capacity regardless of medium, device,
/// or methodology. Exactly what a true access-network fault looks like.
pub fn inject<R: Rng + ?Sized>(
    population: &mut Population,
    scenario: FaultScenario,
    rng: &mut R,
) -> HashSet<u64> {
    assert!(
        (0.0..=1.0).contains(&scenario.affected_fraction),
        "affected fraction must be in [0, 1]"
    );
    assert!(
        scenario.down_capacity_factor > 0.0 && scenario.up_capacity_factor > 0.0,
        "capacity factors must be positive"
    );
    let mut affected = HashSet::new();
    for user in population.users_mut() {
        if rng.gen::<f64>() < scenario.affected_fraction {
            user.access.overprovision *= scenario.down_capacity_factor;
            // Upstream degradation folds into the same knob the link model
            // reads for upload capacity.
            if scenario.up_capacity_factor < 1.0 {
                user.access.up_plan = user.access.up_plan * scenario.up_capacity_factor;
            }
            affected.insert(user.user_id);
        }
    }
    affected
}

/// How one record was dirtied, carried as ground truth next to the
/// corrupted campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirtyKind {
    /// Test aborted mid-ramp: throughput collapses to a fraction of the
    /// true value and no latency phase completed (`rtt_ms` = 0).
    Truncated,
    /// Client recorded a hard zero for both directions.
    ZeroThroughput,
    /// Client serialized a non-finite throughput.
    NanThroughput,
    /// The same completed test was submitted twice (same test id).
    Duplicate,
    /// Device clock skew pushed the timestamp out of the campaign year.
    ClockSkew,
}

impl DirtyKind {
    /// Stable kebab-case label used in metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            DirtyKind::Truncated => "truncated",
            DirtyKind::ZeroThroughput => "zero-throughput",
            DirtyKind::NanThroughput => "nan-throughput",
            DirtyKind::Duplicate => "duplicate",
            DirtyKind::ClockSkew => "clock-skew",
        }
    }

    /// All kinds, in the order [`inject_dirty`] draws them.
    pub fn all() -> [DirtyKind; 5] {
        [
            DirtyKind::Truncated,
            DirtyKind::ZeroThroughput,
            DirtyKind::NanThroughput,
            DirtyKind::Duplicate,
            DirtyKind::ClockSkew,
        ]
    }
}

/// Per-kind corruption rates applied to a campaign, each in `0..1` and
/// summing to at most 1 (each record suffers at most one kind).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirtyScenario {
    /// Rate of aborted/truncated tests.
    pub truncated_rate: f64,
    /// Rate of hard-zero throughput records.
    pub zero_rate: f64,
    /// Rate of non-finite throughput records.
    pub nan_rate: f64,
    /// Rate of duplicated submissions.
    pub duplicate_rate: f64,
    /// Rate of clock-skewed timestamps.
    pub clock_skew_rate: f64,
}

impl DirtyScenario {
    /// Spread `total` evenly across all five corruption kinds.
    pub fn with_total_rate(total: f64) -> Self {
        assert!((0.0..=1.0).contains(&total), "total dirty rate must be in [0, 1]");
        let each = total / 5.0;
        DirtyScenario {
            truncated_rate: each,
            zero_rate: each,
            nan_rate: each,
            duplicate_rate: each,
            clock_skew_rate: each,
        }
    }

    /// The summed corruption rate.
    pub fn total_rate(&self) -> f64 {
        self.truncated_rate
            + self.zero_rate
            + self.nan_rate
            + self.duplicate_rate
            + self.clock_skew_rate
    }

    /// Cumulative (kind, threshold) table for a single uniform draw.
    fn thresholds(&self) -> [(DirtyKind, f64); 5] {
        let mut acc = 0.0;
        let mut out = [(DirtyKind::Truncated, 0.0); 5];
        for (slot, (kind, rate)) in out.iter_mut().zip([
            (DirtyKind::Truncated, self.truncated_rate),
            (DirtyKind::ZeroThroughput, self.zero_rate),
            (DirtyKind::NanThroughput, self.nan_rate),
            (DirtyKind::Duplicate, self.duplicate_rate),
            (DirtyKind::ClockSkew, self.clock_skew_rate),
        ]) {
            assert!(rate >= 0.0, "rates must be non-negative");
            acc += rate;
            *slot = (kind, acc);
        }
        assert!(acc <= 1.0, "dirty rates must sum to at most 1, got {acc}");
        out
    }
}

/// Ground truth for one dirtied record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirtyLabel {
    /// Index of the corrupted record in the (post-corruption) campaign
    /// vector. Duplicates are appended, so original indices stay valid.
    pub index: usize,
    /// The record's test id.
    pub id: u64,
    /// What was done to it.
    pub kind: DirtyKind,
}

/// Corrupt `records` in place according to `scenario`, deterministically
/// from `stream` (one RNG over the records in order — the input order is
/// already parallelism-invariant, so the corruption is too). Duplicated
/// submissions are appended after the originals, preserving the index of
/// every original record. Returns ground-truth labels for every record
/// touched.
pub fn inject_dirty(
    records: &mut Vec<Measurement>,
    scenario: &DirtyScenario,
    stream: u64,
) -> Vec<DirtyLabel> {
    let thresholds = scenario.thresholds();
    let mut rng = StdRng::seed_from_u64(stream);
    let mut labels = Vec::new();
    let mut duplicates = Vec::new();
    let base_len = records.len();
    for (index, m) in records.iter_mut().enumerate() {
        let u: f64 = rng.gen();
        let Some(&(kind, _)) = thresholds.iter().find(|&&(_, cum)| u < cum) else {
            continue;
        };
        match kind {
            DirtyKind::Truncated => {
                // Aborted mid-ramp: only a sliver of the transfer ran and
                // the latency phase never completed.
                let surviving = rng.gen_range(0.02..0.3);
                m.down_mbps *= surviving;
                m.up_mbps *= surviving;
                m.rtt_ms = 0.0;
            }
            DirtyKind::ZeroThroughput => {
                m.down_mbps = 0.0;
                m.up_mbps = 0.0;
            }
            DirtyKind::NanThroughput => {
                m.down_mbps = f64::NAN;
                if rng.gen::<bool>() {
                    m.up_mbps = f64::NAN;
                }
            }
            DirtyKind::Duplicate => {
                duplicates.push(m.clone());
            }
            DirtyKind::ClockSkew => {
                // A skewed client clock reports a day beyond the campaign
                // year and/or an impossible hour.
                m.day += 365 + rng.gen_range(0..365);
                if rng.gen::<bool>() {
                    m.hour += 24;
                }
            }
        }
        labels.push(DirtyLabel { index, id: m.id, kind });
    }
    for (off, dup) in duplicates.into_iter().enumerate() {
        labels.push(DirtyLabel { index: base_len + off, id: dup.id, kind: DirtyKind::Duplicate });
        records.push(dup);
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalogs::catalog_for;
    use crate::city::{City, CityConfig};
    use crate::crowd::generate_ookla;
    use crate::population::tier_weights;

    fn population(r: &mut StdRng) -> Population {
        let cat = catalog_for(City::A);
        Population::generate(&cat, &tier_weights(City::A), 800, r)
    }

    /// Median of each cohort's plan-normalized values, split by membership
    /// in `affected`.
    fn cohort_medians(
        tests: &[Measurement],
        cfg: &CityConfig,
        affected: &HashSet<u64>,
        value: impl Fn(&Measurement) -> f64,
        plan: impl Fn(&CityConfig, usize) -> f64,
    ) -> (f64, f64) {
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let (mut hit, mut healthy) = (Vec::new(), Vec::new());
        for m in tests {
            let n = value(m) / plan(cfg, m.truth_tier.unwrap());
            if affected.contains(&m.user_id) {
                hit.push(n);
            } else {
                healthy.push(n);
            }
        }
        assert!(hit.len() > 30, "affected tests: {}", hit.len());
        (med(&mut hit), med(&mut healthy))
    }

    #[test]
    fn injection_hits_the_requested_fraction() {
        let mut r = StdRng::seed_from_u64(3);
        let mut pop = population(&mut r);
        let affected = inject(&mut pop, FaultScenario::oversubscribed_node(), &mut r);
        let frac = affected.len() as f64 / pop.len() as f64;
        assert!((0.12..0.28).contains(&frac), "affected fraction {frac}");
    }

    #[test]
    fn affected_homes_measure_far_below_plan() {
        let mut r = StdRng::seed_from_u64(5);
        let mut cfg = CityConfig::at_scale(City::A, 0.001);
        cfg.ookla_tests = 2000;
        let mut pop = Population::generate(&cfg.catalog, &tier_weights(City::A), 500, &mut r);
        let affected = inject(&mut pop, FaultScenario::oversubscribed_node(), &mut r);
        assert!(!affected.is_empty());
        let tests = generate_ookla(&cfg, &pop, &mut r);
        let (ma, mh) = cohort_medians(
            &tests,
            &cfg,
            &affected,
            |m| m.down_mbps,
            |cfg, t| cfg.catalog.plan(t).unwrap().down.0,
        );
        assert!(ma < mh * 0.7, "affected median {ma} should sit far below healthy {mh}");
    }

    #[test]
    fn uploads_survive_a_downstream_fault() {
        // The oversubscribed-node scenario keeps upstream ~intact, so BST
        // still has a clean upload axis to cluster on.
        let mut r = StdRng::seed_from_u64(7);
        let mut cfg = CityConfig::at_scale(City::A, 0.001);
        cfg.ookla_tests = 1500;
        let mut pop = Population::generate(&cfg.catalog, &tier_weights(City::A), 400, &mut r);
        let affected = inject(&mut pop, FaultScenario::oversubscribed_node(), &mut r);
        let tests = generate_ookla(&cfg, &pop, &mut r);
        let caps = [5.0, 10.0, 15.0, 35.0];
        let near = tests
            .iter()
            .filter(|m| affected.contains(&m.user_id))
            .filter(|m| caps.iter().any(|c| (m.up_mbps - c).abs() / c < 0.35))
            .count();
        let total = tests.iter().filter(|m| affected.contains(&m.user_id)).count();
        assert!(total > 30);
        assert!(near as f64 / total as f64 > 0.5, "{near}/{total} affected uploads near caps");
    }

    #[test]
    fn degraded_plant_hits_both_directions() {
        let mut r = StdRng::seed_from_u64(17);
        let mut cfg = CityConfig::at_scale(City::A, 0.001);
        cfg.ookla_tests = 3000;
        let mut pop = Population::generate(&cfg.catalog, &tier_weights(City::A), 600, &mut r);
        let affected = inject(&mut pop, FaultScenario::degraded_plant(), &mut r);
        let tests = generate_ookla(&cfg, &pop, &mut r);
        let (down_a, down_h) = cohort_medians(
            &tests,
            &cfg,
            &affected,
            |m| m.down_mbps,
            |cfg, t| cfg.catalog.plan(t).unwrap().down.0,
        );
        let (up_a, up_h) = cohort_medians(
            &tests,
            &cfg,
            &affected,
            |m| m.up_mbps,
            |cfg, t| cfg.catalog.plan(t).unwrap().up.0,
        );
        assert!(
            down_a < down_h * 0.85,
            "plant fault must degrade downstream: {down_a} vs {down_h}"
        );
        assert!(up_a < up_h * 0.8, "plant fault must degrade upstream: {up_a} vs {up_h}");
    }

    #[test]
    fn misprovisioned_upstream_spares_downstream() {
        let mut r = StdRng::seed_from_u64(19);
        let mut cfg = CityConfig::at_scale(City::A, 0.001);
        cfg.ookla_tests = 3000;
        let mut pop = Population::generate(&cfg.catalog, &tier_weights(City::A), 600, &mut r);
        let affected = inject(&mut pop, FaultScenario::misprovisioned_upstream(), &mut r);
        let tests = generate_ookla(&cfg, &pop, &mut r);
        let (down_a, down_h) = cohort_medians(
            &tests,
            &cfg,
            &affected,
            |m| m.down_mbps,
            |cfg, t| cfg.catalog.plan(t).unwrap().down.0,
        );
        let (up_a, up_h) = cohort_medians(
            &tests,
            &cfg,
            &affected,
            |m| m.up_mbps,
            |cfg, t| cfg.catalog.plan(t).unwrap().up.0,
        );
        assert!(up_a < up_h * 0.6, "upstream fault must crush uploads: {up_a} vs {up_h}");
        assert!(down_a > down_h * 0.8, "downstream should stay near plan: {down_a} vs {down_h}");
    }

    #[test]
    fn zero_fraction_is_a_no_op() {
        let mut r = StdRng::seed_from_u64(11);
        let mut pop = population(&mut r);
        let before: Vec<f64> = pop.users().iter().map(|u| u.access.overprovision).collect();
        let scenario = FaultScenario {
            affected_fraction: 0.0,
            down_capacity_factor: 0.1,
            up_capacity_factor: 0.1,
        };
        let affected = inject(&mut pop, scenario, &mut r);
        assert!(affected.is_empty());
        let after: Vec<f64> = pop.users().iter().map(|u| u.access.overprovision).collect();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "capacity factors must be positive")]
    fn zero_capacity_factor_rejected() {
        let mut r = StdRng::seed_from_u64(13);
        let mut pop = population(&mut r);
        let _ = inject(
            &mut pop,
            FaultScenario {
                affected_fraction: 0.1,
                down_capacity_factor: 0.0,
                up_capacity_factor: 1.0,
            },
            &mut r,
        );
    }

    fn campaign(seed: u64, n: usize) -> Vec<Measurement> {
        let mut r = StdRng::seed_from_u64(seed);
        let mut cfg = CityConfig::at_scale(City::A, 0.001);
        cfg.ookla_tests = n;
        let pop = Population::generate(&cfg.catalog, &tier_weights(City::A), 300, &mut r);
        generate_ookla(&cfg, &pop, &mut r)
    }

    #[test]
    fn dirty_injection_rate_and_labels_line_up() {
        let mut tests = campaign(23, 4000);
        let before = tests.len();
        let scenario = DirtyScenario::with_total_rate(0.1);
        let labels = inject_dirty(&mut tests, &scenario, 99);
        let frac = labels.len() as f64 / before as f64;
        assert!((0.06..0.16).contains(&frac), "dirty fraction {frac}");
        // Every kind occurs at a 2% rate over 4000 records.
        for kind in DirtyKind::all() {
            let n = labels.iter().filter(|l| l.kind == kind).count();
            assert!(n > 20, "{kind:?} occurred only {n} times");
        }
        // Labels point at the records they describe.
        for l in &labels {
            assert_eq!(tests[l.index].id, l.id, "label {l:?} mismatched");
        }
        // Duplicates really are appended copies of an earlier submission.
        let dup = labels.iter().find(|l| l.kind == DirtyKind::Duplicate && l.index >= before);
        let dup = dup.expect("at least one appended duplicate");
        assert!(tests[..before].iter().any(|m| m.id == dup.id));
    }

    #[test]
    fn dirty_injection_is_deterministic() {
        let scenario = DirtyScenario::with_total_rate(0.08);
        let mut a = campaign(29, 2000);
        let mut b = a.clone();
        let la = inject_dirty(&mut a, &scenario, 7);
        let lb = inject_dirty(&mut b, &scenario, 7);
        assert_eq!(la, lb);
        assert_eq!(a.len(), b.len());
        // NaN fields break Vec equality; compare ids + days instead.
        let key = |v: &[Measurement]| v.iter().map(|m| (m.id, m.day, m.hour)).collect::<Vec<_>>();
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn zero_dirty_rate_is_a_no_op() {
        let mut tests = campaign(31, 500);
        let before = tests.clone();
        let labels = inject_dirty(&mut tests, &DirtyScenario::with_total_rate(0.0), 3);
        assert!(labels.is_empty());
        assert_eq!(tests, before);
    }

    #[test]
    #[should_panic(expected = "total dirty rate must be in [0, 1]")]
    fn overfull_dirty_rate_rejected() {
        let _ = DirtyScenario::with_total_rate(1.5);
    }
}
