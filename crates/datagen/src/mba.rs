//! The FCC Measuring Broadband America panel, simulated.
//!
//! MBA whiteboxes are wired hardware units attached directly to the cable
//! modem (paper §3.3): no WiFi hop, no device constraint, tests at all
//! hours, and — crucially — the subscription plan is known. This is the
//! ground-truth substrate the paper evaluates BST against (Table 2).
//!
//! Two quirks reproduced from the paper: the State-A panel contains no
//! subscriber on the 25 Mbps plan (§4.3), and the MBA archive is missing
//! September 1 – October 31 ("this data is unavailable from the MBA
//! website", §3).

use crate::city::CityConfig;
use crate::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use st_netsim::{AccessLink, AccessMedium, DeviceProfile, NetworkPath, RttModel};
use st_speedtest::{Access, Measurement, Methodology, OoklaMethodology, Platform};

/// One MBA whitebox and its subscribed (ground-truth) plan.
struct Unit {
    id: u64,
    tier: usize,
    access: AccessLink,
}

/// Assign the panel's whiteboxes to plans: roughly the city's adoption
/// mix, minus tier 1 in State-A (§4.3). Panels are small, so sample tiers
/// uniformly from the eligible set.
fn sample_units<R: Rng + ?Sized>(cfg: &CityConfig, rng: &mut R) -> Vec<Unit> {
    let catalog = &cfg.catalog;
    let n_units = cfg.mba_units.max(1);
    let eligible: Vec<usize> = catalog
        .plans()
        .iter()
        .map(|p| p.tier)
        .filter(|&t| !(cfg.city == crate::city::City::A && t == 1))
        .collect();
    (0..n_units)
        .map(|i| {
            let tier = eligible[rng.gen_range(0..eligible.len())];
            let plan = catalog.plan(tier).expect("eligible tier exists");
            let mut access = AccessLink::provision_with(
                plan.down,
                plan.up,
                crate::catalogs::technology_for(cfg.city, tier),
                rng,
            );
            // Whiteboxes defer their scheduled tests when household
            // cross-traffic exceeds a threshold (the SamKnows design), so
            // the panel's measurements are nearly contention-free.
            access.cross_traffic_mean = 0.005;
            Unit { id: 1_000_000 + i as u64, tier, access }
        })
        .collect()
}

// The 2021 archive gap: no data for Sep 1 – Oct 31 (days 243..304).
const GAP: std::ops::Range<u16> = 243..304;

/// One scheduled whitebox test.
fn mba_one<R: Rng + ?Sized>(
    cfg: &CityConfig,
    unit: &Unit,
    methodology: &OoklaMethodology,
    rtt_model: &RttModel,
    id: usize,
    rng: &mut R,
) -> Measurement {
    // Scheduled tests run around the clock, not on the human diurnal
    // pattern of crowdsourced campaigns.
    let day = loop {
        let d = rng.gen_range(0..365u16);
        if !GAP.contains(&d) {
            break d;
        }
    };
    let hour = rng.gen_range(0..24u8);
    let path = NetworkPath::new(
        unit.access.clone(),
        AccessMedium::gigabit_ethernet(),
        DeviceProfile::unconstrained(),
        rtt_model.clone(),
    );
    let snap = path.snapshot(hour, rng);
    let res = methodology.measure(&snap, rng);
    Measurement {
        id: id as u64,
        user_id: unit.id,
        platform: Platform::MbaUnit,
        city: cfg.city.index(),
        day,
        hour,
        down_mbps: res.down.0,
        up_mbps: res.up.0,
        rtt_ms: res.rtt_s * 1000.0,
        loaded_rtt_ms: res.loaded_rtt_s * 1000.0,
        access: Access::Ethernet,
        kernel_memory_gb: None,
        truth_tier: Some(unit.tier),
    }
}

/// Generate the MBA panel for the state matching `cfg`'s city.
///
/// `cfg.mba_units` whiteboxes are assigned plans (tier 1 excluded for
/// City/State-A, matching §4.3) and together produce `cfg.mba_tests`
/// measurements spread across the year at all hours. Ground truth is
/// recorded in `truth_tier`.
pub fn generate_mba<R: Rng + ?Sized>(cfg: &CityConfig, rng: &mut R) -> Vec<Measurement> {
    let units = sample_units(cfg, rng);
    // MBA testing is scheduled hardware: multi-connection transfers like
    // the SamKnows methodology, which behaves like Ookla's.
    let methodology = OoklaMethodology::default();
    let rtt_model = RttModel::metro();
    let mut out = Vec::with_capacity(cfg.mba_tests);
    for id in 0..cfg.mba_tests {
        out.push(mba_one(cfg, &units[id % units.len()], &methodology, &rtt_model, id, rng));
    }
    out
}

/// Generate the MBA panel in deterministic chunks (see [`crate::par`]).
/// Unit/plan assignment draws from its own sub-stream so the panel
/// composition never depends on chunking or parallelism.
pub fn generate_mba_chunked(cfg: &CityConfig, stream: u64, parallelism: usize) -> Vec<Measurement> {
    let units = {
        let mut rng = StdRng::seed_from_u64(par::stream_seed(stream, par::tags::MBA_UNITS));
        sample_units(cfg, &mut rng)
    };
    let methodology = OoklaMethodology::default();
    let rtt_model = RttModel::metro();
    par::run_chunked(cfg.mba_tests, stream, parallelism, |range, rng| {
        range
            .map(|id| mba_one(cfg, &units[id % units.len()], &methodology, &rtt_model, id, rng))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{City, CityConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(55)
    }

    fn cfg(city: City) -> CityConfig {
        let mut c = CityConfig::at_scale(city, 0.01);
        c.mba_tests = 500;
        c
    }

    #[test]
    fn panel_size_and_unit_count() {
        let mut r = rng();
        let tests = generate_mba(&cfg(City::A), &mut r);
        assert_eq!(tests.len(), 500);
        let mut units: Vec<u64> = tests.iter().map(|m| m.user_id).collect();
        units.sort_unstable();
        units.dedup();
        assert_eq!(units.len(), 20, "State-A has 20 units (Table 2)");
    }

    #[test]
    fn state_a_has_no_tier_1() {
        let mut r = rng();
        let tests = generate_mba(&cfg(City::A), &mut r);
        assert!(tests.iter().all(|m| m.truth_tier != Some(1)), "§4.3: no 25/5 plan in MBA-A");
    }

    #[test]
    fn other_states_may_have_tier_1() {
        let mut r = rng();
        let tests = generate_mba(&cfg(City::B), &mut r);
        // Not guaranteed per-seed, but with 17 units over 6 tiers it is
        // overwhelmingly likely; assert the *mechanism* (tier 1 eligible).
        let tiers: Vec<usize> = tests.iter().filter_map(|m| m.truth_tier).collect();
        assert!(tiers.iter().all(|&t| (1..=6).contains(&t)));
    }

    #[test]
    fn wired_units_measure_near_plan() {
        let mut r = rng();
        let c = cfg(City::A);
        let tests = generate_mba(&c, &mut r);
        // Per unit, the median download should sit within ±30% of plan
        // except gigabit tiers, which undershoot (§4.3, Tier 6 ≈ 892/1200).
        for unit in 0..20u64 {
            let unit_id = 1_000_000 + unit;
            let mut downs: Vec<f64> =
                tests.iter().filter(|m| m.user_id == unit_id).map(|m| m.down_mbps).collect();
            if downs.len() < 5 {
                continue;
            }
            downs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = downs[downs.len() / 2];
            let tier =
                tests.iter().find(|m| m.user_id == unit_id).and_then(|m| m.truth_tier).unwrap();
            let plan = c.catalog.plan(tier).unwrap().down.0;
            let norm = median / plan;
            if plan >= 800.0 {
                assert!((0.6..=1.1).contains(&norm), "tier {tier}: norm {norm}");
            } else {
                assert!((0.8..=1.3).contains(&norm), "tier {tier}: norm {norm}");
            }
        }
    }

    #[test]
    fn uploads_sit_at_or_above_plan() {
        let mut r = rng();
        let c = cfg(City::A);
        let tests = generate_mba(&c, &mut r);
        let mut ok = 0usize;
        for m in &tests {
            let plan_up = c.catalog.plan(m.truth_tier.unwrap()).unwrap().up.0;
            if m.up_mbps >= plan_up * 0.85 {
                ok += 1;
            }
        }
        assert!(ok as f64 / tests.len() as f64 > 0.9, "{ok}/{}", tests.len());
    }

    #[test]
    fn september_october_gap_is_reproduced() {
        // §3: MBA data "lacks data from September 1 – October 31".
        let mut r = rng();
        let tests = generate_mba(&cfg(City::A), &mut r);
        assert!(
            tests.iter().all(|m| !(243..304).contains(&m.day)),
            "a measurement landed in the archive gap"
        );
        // The rest of the year is still covered.
        assert!(tests.iter().any(|m| m.day < 243));
        assert!(tests.iter().any(|m| m.day >= 304));
    }

    #[test]
    fn tests_cover_all_hours() {
        let mut r = rng();
        let tests = generate_mba(&cfg(City::C), &mut r);
        let mut hours = [false; 24];
        for m in &tests {
            hours[m.hour as usize] = true;
        }
        assert!(hours.iter().filter(|&&h| h).count() >= 20, "scheduled tests span the day");
    }
}
