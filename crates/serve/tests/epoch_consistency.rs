//! Snapshot-consistency stress: concurrent query clients hammer the
//! TCP API while multiple ingest threads stream chunks, and every
//! response must be internally consistent — epochs monotone per
//! client, every line parseable, and the epoch/segment recurrences
//! holding inside each snapshot. A torn read (a snapshot mixing state
//! from two epochs' global counters) would violate the
//! `epoch == floor(accepted / epoch_rows)` invariant, which is checked
//! on every single response.

use st_obs::Registry;
use st_serve::{epoch_index, query_once, ContextService, PartitionSpec, QueryServer, ServeOptions};
use st_speedtest::{Access, Measurement, Platform};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEAL_ROWS: u64 = 16;
const EPOCH_ROWS: u64 = 64;

fn m(id: u64) -> Measurement {
    Measurement {
        id,
        user_id: id,
        platform: Platform::AndroidApp,
        city: 0,
        day: (id % 300) as u16,
        hour: (id % 24) as u8,
        down_mbps: 100.0,
        up_mbps: 10.0,
        rtt_ms: 20.0,
        loaded_rtt_ms: 40.0,
        access: Access::Ethernet,
        kernel_memory_gb: Some(4.0),
        truth_tier: None,
    }
}

/// Fetch a required field or panic with its name.
fn field<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
    v.get(key).unwrap_or_else(|| panic!("response missing {key:?}: {v:?}"))
}

/// Every invariant a single epoch snapshot must satisfy.
fn check_snapshot(v: &serde_json::Value) {
    let snap = field(v, "snapshot");
    let epoch = field(snap, "epoch").as_u64().expect("epoch is a count");
    let accepted = field(snap, "accepted_rows").as_u64().expect("accepted_rows is a count");
    let final_epoch = field(snap, "final_epoch").as_bool().expect("final_epoch is a bool");
    if !final_epoch {
        assert_eq!(
            epoch,
            epoch_index(accepted, EPOCH_ROWS),
            "torn read: epoch {epoch} does not match accepted {accepted}"
        );
    }
    for city in field(snap, "cities").as_array().expect("cities array") {
        for c in field(city, "campaigns").as_array().expect("campaigns array") {
            let rows = field(c, "accepted_rows").as_u64().expect("campaign accepted");
            let sealed = field(c, "sealed_segments").as_u64().expect("sealed_segments");
            let tail = field(c, "tail_rows").as_u64().expect("tail_rows");
            let frozen = field(c, "frozen").as_bool().expect("frozen");
            if frozen {
                assert_eq!(tail, 0, "a frozen store has no tail");
                assert!(sealed * SEAL_ROWS >= rows, "frozen store lost rows");
            } else {
                // Seal boundaries are a pure function of the accepted
                // prefix: exactly floor(rows / R) segments, rows % R
                // buffered in the tail. A snapshot that mixed the two
                // reads would break the recurrence.
                assert_eq!(sealed, rows / SEAL_ROWS, "sealed segments diverged at {rows} rows");
                assert_eq!(tail, rows % SEAL_ROWS, "tail rows diverged at {rows} rows");
            }
        }
    }
}

#[test]
fn concurrent_queries_never_observe_torn_state() {
    let service = Arc::new(ContextService::new(
        vec![PartitionSpec::city("City-A"), PartitionSpec::city("City-B")],
        ServeOptions { seal_rows: SEAL_ROWS as usize, epoch_rows: EPOCH_ROWS as usize, warm: None },
        Registry::new(),
    ));
    let server = QueryServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let done = AtomicBool::new(false);
    let queries_answered = AtomicU64::new(0);
    let total_rows: u64 = 4 * 60 * 7; // 4 writers x 60 chunks x 7 rows

    std::thread::scope(|scope| {
        // Four ingest threads, each owning one (city, campaign) stream
        // with a disjoint id range so nothing quarantines as duplicate.
        let targets =
            [("City-A", "ookla"), ("City-A", "mlab"), ("City-B", "ookla"), ("City-B", "mba")];
        let mut writers = Vec::new();
        for (w, (city, campaign)) in targets.into_iter().enumerate() {
            let service = Arc::clone(&service);
            writers.push(scope.spawn(move || {
                let base = w as u64 * 1_000_000;
                for chunk in 0..60u64 {
                    let rows: Vec<Measurement> = (0..7).map(|r| m(base + chunk * 7 + r)).collect();
                    let receipt =
                        service.ingest_chunk(city, campaign, rows).expect("live ingest succeeds");
                    assert_eq!(receipt.stats.quarantined, 0, "ids are disjoint");
                }
            }));
        }

        // Three query clients reading over real TCP the whole time.
        let mut readers = Vec::new();
        for client in 0..3 {
            let done = &done;
            let queries_answered = &queries_answered;
            readers.push(scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut i = 0u64;
                while !done.load(Ordering::Acquire) {
                    let line = if i.is_multiple_of(2) {
                        "{\"cmd\":\"epoch\"}"
                    } else {
                        "{\"cmd\":\"status\"}"
                    };
                    let resp =
                        query_once(addr, line, Duration::from_secs(5)).expect("query round-trips");
                    let v: serde_json::Value = serde_json::from_str(&resp)
                        .unwrap_or_else(|e| panic!("client {client}: unparseable {resp:?}: {e}"));
                    assert_eq!(field(&v, "ok").as_bool(), Some(true), "{resp}");
                    let epoch = if i.is_multiple_of(2) {
                        check_snapshot(&v);
                        field(field(&v, "snapshot"), "epoch").as_u64().unwrap()
                    } else {
                        field(&v, "epoch").as_u64().unwrap()
                    };
                    assert!(
                        epoch >= last_epoch,
                        "client {client}: epoch went backwards ({last_epoch} -> {epoch})"
                    );
                    last_epoch = epoch;
                    queries_answered.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            }));
        }

        for w in writers {
            w.join().expect("writer");
        }
        done.store(true, Ordering::Release);
        for r in readers {
            r.join().expect("reader");
        }
    });
    assert!(
        queries_answered.load(Ordering::Relaxed) >= 3,
        "every client answered at least one query"
    );

    // All rows accepted: the published epoch matches the telescoped
    // crossing count for the coordinator's accepted total.
    let snap = service.current_epoch();
    assert_eq!(snap.epoch, epoch_index(snap.accepted_rows, EPOCH_ROWS));
    assert!(snap.accepted_rows <= total_rows);

    // Drain, publish the final epoch, and read it back over TCP.
    let out = service.drain().expect("drain once");
    assert_eq!(out.sanitize.quarantined, 0);
    let final_epoch = service
        .publish_final(
            &out.sanitize,
            vec![("rows".into(), total_rows.to_string())],
            Vec::new(),
            None,
            0,
        )
        .expect("final publish");
    let resp =
        query_once(addr, "{\"cmd\":\"epoch\"}", Duration::from_secs(5)).expect("final query");
    let v: serde_json::Value = serde_json::from_str(&resp).expect("final parses");
    let snap = field(&v, "snapshot");
    assert_eq!(field(snap, "final_epoch").as_bool(), Some(true));
    assert_eq!(field(snap, "epoch").as_u64(), Some(final_epoch));
    assert_eq!(field(snap, "accepted_rows").as_u64(), Some(total_rows));
    assert_eq!(final_epoch, epoch_index(total_rows, EPOCH_ROWS) + 1);
    check_snapshot(&v);

    server.stop();
}
