//! Snapshot-consistency stress: concurrent query clients hammer the
//! TCP API while multiple ingest threads stream chunks, and every
//! response must be internally consistent — epochs monotone per
//! client, every line parseable, and the epoch/segment recurrences
//! holding inside each snapshot. A torn read (a snapshot mixing state
//! from two epochs' global counters) would violate the
//! `epoch == floor(accepted / epoch_rows)` invariant, which is checked
//! on every single response.

use st_obs::Registry;
use st_serve::{epoch_index, query_once, ContextService, PartitionSpec, QueryServer, ServeOptions};
use st_speedtest::{Access, Measurement, Platform};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEAL_ROWS: u64 = 16;
const EPOCH_ROWS: u64 = 64;

fn m(id: u64) -> Measurement {
    Measurement {
        id,
        user_id: id,
        platform: Platform::AndroidApp,
        city: 0,
        day: (id % 300) as u16,
        hour: (id % 24) as u8,
        down_mbps: 100.0,
        up_mbps: 10.0,
        rtt_ms: 20.0,
        loaded_rtt_ms: 40.0,
        access: Access::Ethernet,
        kernel_memory_gb: Some(4.0),
        truth_tier: None,
    }
}

/// Fetch a required field or panic with its name.
fn field<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
    v.get(key).unwrap_or_else(|| panic!("response missing {key:?}: {v:?}"))
}

/// Every invariant a single epoch snapshot must satisfy.
fn check_snapshot(v: &serde_json::Value) {
    let snap = field(v, "snapshot");
    let epoch = field(snap, "epoch").as_u64().expect("epoch is a count");
    let accepted = field(snap, "accepted_rows").as_u64().expect("accepted_rows is a count");
    let final_epoch = field(snap, "final_epoch").as_bool().expect("final_epoch is a bool");
    if !final_epoch {
        assert_eq!(
            epoch,
            epoch_index(accepted, EPOCH_ROWS),
            "torn read: epoch {epoch} does not match accepted {accepted}"
        );
    }
    for city in field(snap, "cities").as_array().expect("cities array") {
        for c in field(city, "campaigns").as_array().expect("campaigns array") {
            let rows = field(c, "accepted_rows").as_u64().expect("campaign accepted");
            let sealed = field(c, "sealed_segments").as_u64().expect("sealed_segments");
            let tail = field(c, "tail_rows").as_u64().expect("tail_rows");
            let frozen = field(c, "frozen").as_bool().expect("frozen");
            if frozen {
                assert_eq!(tail, 0, "a frozen store has no tail");
                assert!(sealed * SEAL_ROWS >= rows, "frozen store lost rows");
            } else {
                // Seal boundaries are a pure function of the accepted
                // prefix: exactly floor(rows / R) segments, rows % R
                // buffered in the tail. A snapshot that mixed the two
                // reads would break the recurrence.
                assert_eq!(sealed, rows / SEAL_ROWS, "sealed segments diverged at {rows} rows");
                assert_eq!(tail, rows % SEAL_ROWS, "tail rows diverged at {rows} rows");
            }
        }
    }
}

#[test]
fn concurrent_queries_never_observe_torn_state() {
    let service = Arc::new(ContextService::new(
        vec![PartitionSpec::city("City-A"), PartitionSpec::city("City-B")],
        ServeOptions { seal_rows: SEAL_ROWS as usize, epoch_rows: EPOCH_ROWS as usize, warm: None },
        Registry::new(),
    ));
    let server = QueryServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let done = AtomicBool::new(false);
    let queries_answered = AtomicU64::new(0);
    let total_rows: u64 = 4 * 60 * 7; // 4 writers x 60 chunks x 7 rows

    std::thread::scope(|scope| {
        // Four ingest threads, each owning one (city, campaign) stream
        // with a disjoint id range so nothing quarantines as duplicate.
        let targets =
            [("City-A", "ookla"), ("City-A", "mlab"), ("City-B", "ookla"), ("City-B", "mba")];
        let mut writers = Vec::new();
        for (w, (city, campaign)) in targets.into_iter().enumerate() {
            let service = Arc::clone(&service);
            writers.push(scope.spawn(move || {
                let base = w as u64 * 1_000_000;
                for chunk in 0..60u64 {
                    let rows: Vec<Measurement> = (0..7).map(|r| m(base + chunk * 7 + r)).collect();
                    let receipt =
                        service.ingest_chunk(city, campaign, rows).expect("live ingest succeeds");
                    assert_eq!(receipt.stats.quarantined, 0, "ids are disjoint");
                }
            }));
        }

        // Three query clients reading over real TCP the whole time.
        let mut readers = Vec::new();
        for client in 0..3 {
            let done = &done;
            let queries_answered = &queries_answered;
            readers.push(scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut i = 0u64;
                while !done.load(Ordering::Acquire) {
                    let line = if i.is_multiple_of(2) {
                        "{\"cmd\":\"epoch\"}"
                    } else {
                        "{\"cmd\":\"status\"}"
                    };
                    let resp =
                        query_once(addr, line, Duration::from_secs(5)).expect("query round-trips");
                    let v: serde_json::Value = serde_json::from_str(&resp)
                        .unwrap_or_else(|e| panic!("client {client}: unparseable {resp:?}: {e}"));
                    assert_eq!(field(&v, "ok").as_bool(), Some(true), "{resp}");
                    let epoch = if i.is_multiple_of(2) {
                        check_snapshot(&v);
                        field(field(&v, "snapshot"), "epoch").as_u64().unwrap()
                    } else {
                        field(&v, "epoch").as_u64().unwrap()
                    };
                    assert!(
                        epoch >= last_epoch,
                        "client {client}: epoch went backwards ({last_epoch} -> {epoch})"
                    );
                    last_epoch = epoch;
                    queries_answered.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            }));
        }

        for w in writers {
            w.join().expect("writer");
        }
        done.store(true, Ordering::Release);
        for r in readers {
            r.join().expect("reader");
        }
    });
    assert!(
        queries_answered.load(Ordering::Relaxed) >= 3,
        "every client answered at least one query"
    );

    // All rows accepted: the published epoch matches the telescoped
    // crossing count for the coordinator's accepted total.
    let snap = service.current_epoch();
    assert_eq!(snap.epoch, epoch_index(snap.accepted_rows, EPOCH_ROWS));
    assert!(snap.accepted_rows <= total_rows);

    // Drain, publish the final epoch, and read it back over TCP.
    let out = service.drain().expect("drain once");
    assert_eq!(out.sanitize.quarantined, 0);
    let final_epoch = service
        .publish_final(
            &out.sanitize,
            vec![("rows".into(), total_rows.to_string())],
            Vec::new(),
            None,
            0,
        )
        .expect("final publish");
    let resp =
        query_once(addr, "{\"cmd\":\"epoch\"}", Duration::from_secs(5)).expect("final query");
    let v: serde_json::Value = serde_json::from_str(&resp).expect("final parses");
    let snap = field(&v, "snapshot");
    assert_eq!(field(snap, "final_epoch").as_bool(), Some(true));
    assert_eq!(field(snap, "epoch").as_u64(), Some(final_epoch));
    assert_eq!(field(snap, "accepted_rows").as_u64(), Some(total_rows));
    assert_eq!(final_epoch, epoch_index(total_rows, EPOCH_ROWS) + 1);
    check_snapshot(&v);

    server.stop();
}

/// The watch feed's core contract: with a single writer (so every
/// boundary crossing wins the publish race), a subscriber attached
/// before the first row must see epoch 0 as its base and then every
/// crossing exactly once, in order, ending with the final epoch — and
/// each row must satisfy the same floor/seal recurrences the polling
/// readers check, with counter deltas that telescope to the totals.
#[test]
fn watch_delivers_every_epoch_crossing_exactly_once() {
    let service = Arc::new(ContextService::new(
        vec![PartitionSpec::city("City-A")],
        ServeOptions { seal_rows: SEAL_ROWS as usize, epoch_rows: EPOCH_ROWS as usize, warm: None },
        Registry::new(),
    ));
    let server = QueryServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");

    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(b"{\"cmd\":\"watch\"}\n").unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);

    // Read the base row on this thread *before* ingesting anything:
    // from here on, no crossing can predate the subscription.
    let mut base = String::new();
    reader.read_line(&mut base).expect("base row");
    let v: serde_json::Value = serde_json::from_str(&base).expect("base parses");
    assert_eq!(field(&v, "epoch").as_u64(), Some(0));
    assert_eq!(field(&v, "final_epoch").as_bool(), Some(false));

    let watcher = std::thread::spawn(move || {
        let mut rows = vec![v];
        for line in reader.lines() {
            let line = line.expect("watch line");
            let row: serde_json::Value = serde_json::from_str(&line)
                .unwrap_or_else(|e| panic!("unparseable watch row {line:?}: {e}"));
            let done = field(&row, "final_epoch").as_bool() == Some(true);
            rows.push(row);
            if done {
                return rows;
            }
        }
        panic!("feed ended before the final epoch");
    });

    // One writer, 7-row chunks (7 < EPOCH_ROWS, so a chunk crosses at
    // most one boundary): the published epoch sequence is 1, 2, 3, ...
    let total: u64 = 60 * 7;
    for chunk in 0..60u64 {
        let rows: Vec<Measurement> = (0..7).map(|r| m(chunk * 7 + r)).collect();
        let receipt = service.ingest_chunk("City-A", "ookla", rows).expect("ingest");
        assert_eq!(receipt.stats.quarantined, 0, "ids are unique");
    }
    let out = service.drain().expect("drain once");
    let final_epoch = service
        .publish_final(&out.sanitize, Vec::new(), Vec::new(), None, 0)
        .expect("final publish");
    assert_eq!(final_epoch, epoch_index(total, EPOCH_ROWS) + 1);

    let rows = watcher.join().expect("watcher thread");
    // Exactly once and in order: the base plus one row per crossing,
    // no index skipped, none repeated, the final epoch last.
    let epochs: Vec<u64> =
        rows.iter().map(|r| field(r, "epoch").as_u64().expect("epoch")).collect();
    let expected: Vec<u64> = (0..=final_epoch).collect();
    assert_eq!(epochs, expected, "watch feed missed or repeated a crossing");

    let mut clean = 0u64;
    let mut epochs_counted = 0u64;
    for row in &rows {
        let accepted = field(row, "accepted_rows").as_u64().expect("accepted_rows");
        let sealed = field(row, "segments_sealed").as_u64().expect("segments_sealed");
        let final_row = field(row, "final_epoch").as_bool().expect("final_epoch");
        if final_row {
            assert_eq!(accepted, total);
            assert!(sealed * SEAL_ROWS >= accepted, "frozen stores lost rows");
        } else {
            // The same recurrences check_snapshot asserts, visible
            // through the feed: the epoch is the floor of the accepted
            // count and seals track the accepted prefix exactly.
            assert_eq!(field(row, "epoch").as_u64().unwrap(), epoch_index(accepted, EPOCH_ROWS));
            assert_eq!(sealed, accepted / SEAL_ROWS, "seal recurrence diverged at {accepted}");
        }
        let seals = field(row, "seals").as_array().expect("seals");
        let per_city: u64 =
            seals.iter().map(|s| field(s, "sealed_segments").as_u64().unwrap()).sum();
        assert_eq!(per_city, sealed, "per-city seal counts must sum to the total");
        let counters = field(row, "counters").as_object().expect("counters");
        assert!(counters.keys().all(|k| k.starts_with("serve.")), "{row:?}");
        clean += counters.get("serve.rows{outcome=clean}").and_then(|c| c.as_u64()).unwrap_or(0);
        epochs_counted += counters.get("serve.epochs").and_then(|c| c.as_u64()).unwrap_or(0);
    }
    // Deltas telescope: base totals + per-row increments = final totals.
    assert_eq!(clean, total, "serve.rows deltas must telescope to the accepted total");
    assert_eq!(epochs_counted, final_epoch, "serve.epochs deltas must telescope");

    server.stop();
}
