//! End-to-end wire ingest: real TCP speedtest sessions against shaped
//! in-process servers, folded into the service's non-deterministic
//! `wire` partition. Wire rows must be accepted by the sanitizer
//! (session reports carry finite throughputs and RTTs), must show up in
//! the epoch snapshot's wire partition, and must never advance the
//! epoch counter — wall-clock measurements stay out of the
//! deterministic class (DESIGN.md §18).

use st_obs::Registry;
use st_serve::{session_measurements, ContextService, PartitionSpec, ServeOptions, WIRE_CITY_CODE};
use st_speedtest::wire::ShapedServer;
use st_speedtest::{run_load, Access, BackoffSchedule, LoadOptions, Measurement, Platform};
use std::time::Duration;

fn city_row(id: u64) -> Measurement {
    Measurement {
        id,
        user_id: id,
        platform: Platform::AndroidApp,
        city: 0,
        day: 10,
        hour: 12,
        down_mbps: 100.0,
        up_mbps: 10.0,
        rtt_ms: 20.0,
        loaded_rtt_ms: 40.0,
        access: Access::Ethernet,
        kernel_memory_gb: Some(4.0),
        truth_tier: None,
    }
}

#[test]
fn wire_sessions_land_in_the_wire_partition_without_advancing_epochs() {
    let obs = Registry::new();
    let service = ContextService::new(
        vec![PartitionSpec::city("City-A"), PartitionSpec::wire()],
        ServeOptions { seal_rows: 4, epoch_rows: 1, warm: None },
        obs.clone(),
    );

    // A two-server shaped pool and a short seeded load run.
    let servers: Vec<ShapedServer> = (0..2)
        .map(|_| ShapedServer::start(200.0, 50.0))
        .collect::<std::io::Result<Vec<_>>>()
        .expect("shaped servers bind on loopback");
    let pool: Vec<_> = servers.iter().map(|s| s.addr()).collect();
    let mut opts = LoadOptions::new(6);
    opts.with_upload = true; // upload-free rows would quarantine
    opts.backoff = BackoffSchedule::new(Duration::from_millis(5), Duration::from_millis(40), 7);
    let summary = run_load(&pool, &opts, &Registry::disabled());
    assert!(summary.sessions_completed > 0, "the shaped pool must complete sessions");

    let rows = session_measurements(&summary.reports, 10, 12);
    assert_eq!(rows.len() as u64, summary.sessions_completed);
    for r in &rows {
        assert_eq!(r.city, WIRE_CITY_CODE);
        assert_eq!(r.day, 10);
        assert_eq!(r.hour, 12);
        assert!(r.down_mbps.is_finite() && r.down_mbps > 0.0);
        assert!(r.up_mbps.is_finite() && r.up_mbps > 0.0);
        assert!(r.rtt_ms.is_finite() && r.rtt_ms >= 0.0);
    }

    let n = rows.len() as u64;
    let receipt = service.ingest_chunk("wire", "sessions", rows).expect("wire ingest succeeds");
    assert_eq!(receipt.stats.quarantined, 0, "session reports sanitize clean");
    assert_eq!(receipt.epochs_crossed, 0, "wire rows never cross epoch boundaries");
    assert_eq!(receipt.epoch, 0, "even at epoch_rows = 1");

    // Wire ingest alone never republishes: the current epoch is still
    // the all-zero skeleton, and no deterministic counter moved.
    let snap = service.current_epoch();
    assert_eq!(snap.epoch, 0);
    assert_eq!(snap.accepted_rows, 0, "deterministic class saw nothing");
    let metrics = obs.snapshot();
    assert_eq!(metrics.deterministic.counters.get("serve.epochs"), None);
    assert!(
        !metrics.deterministic.counters.keys().any(|k| k.starts_with("serve.chunks")),
        "wire chunks must stay out of the deterministic class"
    );
    assert!(
        metrics.wall_clock.values.keys().any(|k| k.starts_with("serve.wire_rows")),
        "wire rows are recorded as wall-clock observations"
    );

    // One deterministic row crosses a boundary (epoch_rows = 1) and the
    // rebuilt snapshot picks up the wire partition's accepted rows.
    let receipt =
        service.ingest_chunk("City-A", "ookla", vec![city_row(1)]).expect("city ingest succeeds");
    assert_eq!(receipt.epochs_crossed, 1);
    let snap = service.current_epoch();
    assert_eq!(snap.epoch, 1);
    assert_eq!(snap.accepted_rows, 1, "only the city row is deterministic-class");
    let wire =
        snap.cities.iter().find(|c| c.city == "wire").expect("wire partition is in the snapshot");
    assert!(!wire.deterministic);
    assert_eq!(wire.campaigns.len(), 1);
    assert_eq!(wire.campaigns[0].campaign, "sessions");
    assert_eq!(wire.campaigns[0].accepted_rows, n);
}
