//! Property tests for the serve layer's determinism claims
//! (DESIGN.md §18):
//!
//! * epoch boundaries are a pure function of the accepted-row count —
//!   crossings telescope to `epoch_index(total)` under any chunking of
//!   the stream;
//! * a running [`ContextService`] fed the same rows under two different
//!   chunk plans lands on the same epoch, the same accepted totals, the
//!   same quarantine taxonomy, the same drained row sequence, and the
//!   same `serve.epochs` deterministic counter;
//! * [`st_obs::Registry::merge`] is associative, so the coordinator may
//!   fold worker sub-registries in any grouping and snapshot equality
//!   still holds.

use proptest::prelude::*;
use st_obs::Registry;
use st_serve::{epoch_index, epochs_crossed, ContextService, PartitionSpec, ServeOptions};
use st_speedtest::{Access, Measurement, Platform};

/// A clean-ish synthetic measurement; ids drawn from a small pool so
/// chunk plans routinely split duplicate submissions across chunks and
/// the incremental quarantine path is exercised.
fn m(id: u64) -> Measurement {
    Measurement {
        id,
        user_id: id % 13,
        platform: if id.is_multiple_of(2) { Platform::AndroidApp } else { Platform::Web },
        city: 0,
        day: (id % 300) as u16,
        hour: (id % 24) as u8,
        down_mbps: 20.0 + (id % 80) as f64,
        up_mbps: 2.0 + (id % 11) as f64,
        rtt_ms: 10.0 + (id % 40) as f64,
        loaded_rtt_ms: 15.0 + (id % 40) as f64,
        access: Access::Ethernet,
        kernel_memory_gb: Some(2.0 + (id % 6) as f64),
        truth_tier: None,
    }
}

/// Replay `stream` into a fresh one-partition service, cycling through
/// the chunk plan's sizes. Returns the service still live (not drained).
fn replay(stream: &[Measurement], plan: &[usize], epoch_rows: usize) -> (ContextService, Registry) {
    let obs = Registry::new();
    let service = ContextService::new(
        vec![PartitionSpec::city("City-A")],
        ServeOptions { seal_rows: 16, epoch_rows, warm: None },
        obs.clone(),
    );
    let mut rest = stream;
    let mut i = 0;
    while !rest.is_empty() {
        let take = plan[i % plan.len()].min(rest.len());
        let (chunk, tail) = rest.split_at(take);
        service.ingest_chunk("City-A", "ookla", chunk.to_vec()).expect("live service ingests");
        rest = tail;
        i += 1;
    }
    (service, obs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Summing boundary crossings over any partition of the stream
    /// telescopes to the epoch index of the total — the invariant that
    /// makes `serve.epochs` a deterministic counter.
    #[test]
    fn epoch_crossings_telescope_under_any_chunking(
        chunks in prop::collection::vec(0u64..500, 0..40),
        epoch_rows in prop::sample::select(vec![1u64, 7, 64, 100, 1500]),
    ) {
        let total: u64 = chunks.iter().sum();
        let mut at = 0u64;
        let mut crossed = 0u64;
        for c in &chunks {
            crossed += epochs_crossed(at, at + c, epoch_rows);
            at += c;
            // The index is monotone in the accepted count.
            prop_assert_eq!(epoch_index(at, epoch_rows), at / epoch_rows);
        }
        prop_assert_eq!(crossed, epoch_index(total, epoch_rows));
    }

    /// The running service under two different chunk plans: identical
    /// epoch, accepted totals, sanitize taxonomy, drained rows, and
    /// deterministic epoch counter.
    #[test]
    fn service_state_is_invariant_to_the_chunk_plan(
        ids in prop::collection::vec(0u64..200, 0..400),
        plan_a in prop::collection::vec(prop::sample::select(vec![1usize, 3, 17, 64, 129]), 1..4),
        plan_b in prop::collection::vec(prop::sample::select(vec![1usize, 3, 17, 64, 129]), 1..4),
        epoch_rows in prop::sample::select(vec![1usize, 32, 100]),
    ) {
        let stream: Vec<Measurement> = ids.into_iter().map(m).collect();
        let (sa, oa) = replay(&stream, &plan_a, epoch_rows);
        let (sb, ob) = replay(&stream, &plan_b, epoch_rows);

        // Snapshots are published at boundary crossings, so the row
        // counters inside them are captured at the *last crossing* —
        // a chunk-plan-dependent moment. What must agree across plans
        // is the epoch index itself; what must hold inside every
        // snapshot is the floor recurrence.
        let ea = sa.current_epoch();
        let eb = sb.current_epoch();
        prop_assert_eq!(ea.epoch, eb.epoch, "published epochs diverged across chunk plans");
        prop_assert_eq!(ea.epoch, epoch_index(ea.accepted_rows, epoch_rows as u64));
        prop_assert_eq!(eb.epoch, epoch_index(eb.accepted_rows, epoch_rows as u64));

        // The deterministic epoch counter equals the telescoped index.
        let ca = oa.snapshot().deterministic.counters.get("serve.epochs").copied();
        let cb = ob.snapshot().deterministic.counters.get("serve.epochs").copied();
        prop_assert_eq!(ca.unwrap_or(0), ea.epoch, "counter must equal the crossing count");
        prop_assert_eq!(ca.unwrap_or(0), cb.unwrap_or(0));

        // Drain both: same taxonomy, same frozen row sequence.
        let da = sa.drain().expect("first drain");
        let db = sb.drain().expect("first drain");
        prop_assert_eq!(&da.sanitize, &db.sanitize);
        prop_assert_eq!(da.segments, db.segments);
        let rows = |d: &st_serve::DrainOutput| -> Vec<u64> {
            d.partitions[0].stores[0].1.sealed_measurements().iter().map(|r| r.id).collect()
        };
        prop_assert_eq!(rows(&da), rows(&db), "drained row sequences diverged");
    }

    /// Merging worker sub-registries is associative: (a + b) + c and
    /// a + (b + c) snapshot identically. Observed values are integral
    /// so histogram min/max state is exact; counters are u64 adds and
    /// gauges resolve by max, both order-free.
    #[test]
    fn registry_merge_is_associative(
        ops_a in prop::collection::vec((0u8..4, 0u8..2, 0u64..20), 0..60),
        ops_b in prop::collection::vec((0u8..4, 0u8..2, 0u64..20), 0..60),
        ops_c in prop::collection::vec((0u8..4, 0u8..2, 0u64..20), 0..60),
    ) {
        const BOUNDS: &[f64] = &[1.0, 4.0, 16.0];
        let fill = |ops: &[(u8, u8, u64)]| {
            let r = Registry::new();
            for &(kind, which, v) in ops {
                let label = if which == 0 { "a" } else { "b" };
                let labels = [("k", label)];
                match kind {
                    0 => r.add("prop.counter", &labels, v),
                    1 => r.set_gauge("prop.gauge", &labels, v as f64),
                    2 => r.observe("prop.hist", &labels, v as f64, BOUNDS),
                    _ => r.observe_wall("prop.wall", &labels, v as f64, BOUNDS),
                }
            }
            r
        };

        // (a + b) + c
        let left = fill(&ops_a);
        left.merge(&fill(&ops_b));
        left.merge(&fill(&ops_c));
        // a + (b + c)
        let bc = fill(&ops_b);
        bc.merge(&fill(&ops_c));
        let right = fill(&ops_a);
        right.merge(&bc);

        prop_assert_eq!(left.snapshot(), right.snapshot());
    }
}
