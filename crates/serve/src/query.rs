//! Thread-per-connection line-delimited JSON query API (DESIGN.md §18).
//!
//! Each request is one JSON object per line (`{"cmd": "status"}`);
//! each response is one JSON object per line with an `ok` field.
//! Every command answers from the *current epoch snapshot* — a single
//! immutable `Arc` grabbed once per request — so a response is always
//! internally consistent, reads never block ingest, and two fields of
//! one response can never disagree about which epoch they describe.
//!
//! Commands:
//!
//! | cmd          | answer                                             |
//! |--------------|----------------------------------------------------|
//! | `status`     | global counters + per-partition accepted rows      |
//! | `city`       | one partition's per-campaign detail (`"city": ...`)|
//! | `headline`   | warm/final headline figures and tables             |
//! | `quarantine` | sanitize taxonomy of the current epoch             |
//! | `epoch`      | the full epoch snapshot                            |
//! | `shutdown`   | ack, then signals the server to stop accepting     |

use crate::epoch::{CitySnapshot, EpochSnapshot};
use crate::service::ContextService;
use serde::Serialize;
use st_speedtest::SanitizeReport;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Per-request wall-clock histogram bounds, seconds.
const QUERY_BOUNDS: &[f64] = &[0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1];

#[derive(Serialize)]
struct ErrorResponse {
    ok: bool,
    error: String,
}

#[derive(Serialize)]
struct CityRows {
    city: String,
    accepted_rows: u64,
}

#[derive(Serialize)]
struct StatusResponse {
    ok: bool,
    kind: &'static str,
    epoch: u64,
    final_epoch: bool,
    drained: bool,
    accepted_rows: u64,
    rows_in: u64,
    quarantined: u64,
    chunks: u64,
    segments_sealed: u64,
    epochs_published: u64,
    uptime_s: f64,
    cities: Vec<CityRows>,
}

#[derive(Serialize)]
struct CityResponse {
    ok: bool,
    kind: &'static str,
    epoch: u64,
    city: CitySnapshot,
}

#[derive(Serialize)]
struct HeadlineResponse {
    ok: bool,
    kind: &'static str,
    epoch: u64,
    final_epoch: bool,
    headlines: Vec<(String, String)>,
    tables: Vec<(String, String)>,
}

#[derive(Serialize)]
struct QuarantineResponse {
    ok: bool,
    kind: &'static str,
    epoch: u64,
    rows_in: u64,
    quarantined: u64,
    sanitize: SanitizeReport,
}

#[derive(Serialize)]
struct EpochResponse {
    ok: bool,
    kind: &'static str,
    snapshot: EpochSnapshot,
}

#[derive(Serialize)]
struct ShutdownResponse {
    ok: bool,
    kind: &'static str,
}

fn err(msg: impl Into<String>) -> String {
    serde_json::to_string(&ErrorResponse { ok: false, error: msg.into() })
        .expect("error response serializes")
}

fn json<T: Serialize>(resp: &T) -> String {
    serde_json::to_string(resp).expect("query response serializes")
}

/// Answer one request line. Returns the response line and whether the
/// request asked the server to shut down. Pure over (service state,
/// line) — exposed for direct use in tests and the in-process path.
pub fn dispatch(service: &ContextService, line: &str) -> (String, bool) {
    let value: serde_json::Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return (err(format!("bad request JSON: {e}")), false),
    };
    let Some(cmd) = value.get("cmd").and_then(|c| c.as_str()) else {
        return (err("request needs a string \"cmd\" field"), false);
    };
    let snap = service.current_epoch();
    service.registry().observe_wall("serve.query_seconds", &[("cmd", cmd)], 0.0, QUERY_BOUNDS);
    let resp = match cmd {
        "status" => {
            let epochs_published = service
                .registry()
                .snapshot_shared()
                .deterministic
                .counters
                .get("serve.epochs")
                .copied()
                .unwrap_or(0);
            json(&StatusResponse {
                ok: true,
                kind: "status",
                epoch: snap.epoch,
                final_epoch: snap.final_epoch,
                drained: service.is_drained(),
                accepted_rows: snap.accepted_rows,
                rows_in: snap.rows_in,
                quarantined: snap.quarantined,
                chunks: snap.chunks,
                segments_sealed: snap.segments_sealed,
                epochs_published,
                uptime_s: service.uptime_s(),
                cities: snap
                    .cities
                    .iter()
                    .map(|c| CityRows {
                        city: c.city.clone(),
                        accepted_rows: c.campaigns.iter().map(|s| s.accepted_rows).sum(),
                    })
                    .collect(),
            })
        }
        "city" => {
            let Some(name) = value.get("city").and_then(|c| c.as_str()) else {
                return (err("city query needs a string \"city\" field"), false);
            };
            match snap.cities.iter().find(|c| c.city == name) {
                Some(c) => json(&CityResponse {
                    ok: true,
                    kind: "city",
                    epoch: snap.epoch,
                    city: c.clone(),
                }),
                None => err(format!("unknown city {name:?}")),
            }
        }
        "headline" => json(&HeadlineResponse {
            ok: true,
            kind: "headline",
            epoch: snap.epoch,
            final_epoch: snap.final_epoch,
            headlines: snap.headlines.clone(),
            tables: snap.tables.clone(),
        }),
        "quarantine" => json(&QuarantineResponse {
            ok: true,
            kind: "quarantine",
            epoch: snap.epoch,
            rows_in: snap.rows_in,
            quarantined: snap.quarantined,
            sanitize: snap.sanitize.clone(),
        }),
        "epoch" => json(&EpochResponse { ok: true, kind: "epoch", snapshot: (*snap).clone() }),
        "shutdown" => return (json(&ShutdownResponse { ok: true, kind: "shutdown" }), true),
        other => err(format!("unknown cmd {other:?}")),
    };
    (resp, false)
}

/// Wakeable latch the `shutdown` command trips.
struct Signal {
    fired: Mutex<bool>,
    cv: Condvar,
    stop_accepting: AtomicBool,
}

impl Signal {
    fn new() -> Self {
        Signal {
            fired: Mutex::new(false),
            cv: Condvar::new(),
            stop_accepting: AtomicBool::new(false),
        }
    }

    fn fire(&self) {
        *self.fired.lock().expect("signal lock") = true;
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) -> bool {
        let fired = self.fired.lock().expect("signal lock");
        if *fired {
            return true;
        }
        let (fired, _) = self.cv.wait_timeout(fired, timeout).expect("signal lock");
        *fired
    }
}

/// A running query listener: one accept thread, one thread per
/// connection.
pub struct QueryServer {
    addr: SocketAddr,
    signal: Arc<Signal>,
    accept: Option<thread::JoinHandle<()>>,
}

impl QueryServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting.
    pub fn start(service: Arc<ContextService>, addr: &str) -> io::Result<QueryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let signal = Arc::new(Signal::new());
        let accept_signal = Arc::clone(&signal);
        let accept = thread::Builder::new().name("serve-accept".into()).spawn(move || {
            for stream in listener.incoming() {
                if accept_signal.stop_accepting.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&service);
                let signal = Arc::clone(&accept_signal);
                let _ = thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_conn(stream, &service, &signal));
            }
        })?;
        Ok(QueryServer { addr, signal, accept: Some(accept) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until a `shutdown` command arrives (or `stop` is called),
    /// up to `timeout`. Returns whether the signal fired.
    pub fn wait_shutdown(&self, timeout: Duration) -> bool {
        self.signal.wait(timeout)
    }

    /// Stop accepting and join the accept thread. In-flight
    /// connections finish their current line and exit on their own.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.signal.stop_accepting.store(true, Ordering::Release);
        self.signal.fire();
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown_inner();
        }
    }
}

fn handle_conn(stream: TcpStream, service: &ContextService, signal: &Signal) {
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, shutdown) = dispatch(service, &line);
        if writer
            .write_all(resp.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown {
            signal.fire();
            break;
        }
    }
}

/// One-shot client: connect, send `line`, read one response line.
/// What the `serve --connect` client mode and the test suites use.
pub fn query_once(addr: SocketAddr, line: &str, timeout: Duration) -> io::Result<String> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp)?;
    if resp.is_empty() {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "no response line"));
    }
    Ok(resp.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{PartitionSpec, ServeOptions};
    use st_obs::Registry;
    use st_speedtest::{Access, Measurement, Platform};

    fn m(id: u64) -> Measurement {
        Measurement {
            id,
            user_id: id,
            platform: Platform::AndroidApp,
            city: 0,
            day: 10,
            hour: 12,
            down_mbps: 100.0,
            up_mbps: 10.0,
            rtt_ms: 20.0,
            loaded_rtt_ms: 40.0,
            access: Access::Ethernet,
            kernel_memory_gb: None,
            truth_tier: None,
        }
    }

    fn service() -> Arc<ContextService> {
        let s = ContextService::new(
            vec![PartitionSpec::city("City-A")],
            ServeOptions { seal_rows: 8, epoch_rows: 10, warm: None },
            Registry::new(),
        );
        s.ingest_chunk("City-A", "ookla", (0..12).map(m).collect()).unwrap();
        Arc::new(s)
    }

    fn get<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
        v.get(key).unwrap_or_else(|| panic!("response missing {key:?}"))
    }

    #[test]
    fn dispatch_answers_every_command_from_one_epoch() {
        let s = service();
        for cmd in ["status", "headline", "quarantine", "epoch"] {
            let (resp, shutdown) = dispatch(&s, &format!("{{\"cmd\":\"{cmd}\"}}"));
            assert!(!shutdown);
            let v: serde_json::Value = serde_json::from_str(&resp).expect("response parses");
            assert_eq!(get(&v, "ok").as_bool(), Some(true), "{cmd}: {resp}");
        }
        let (resp, _) = dispatch(&s, "{\"cmd\":\"status\"}");
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        // One 12-row chunk crossed the 10-row boundary once; the
        // snapshot captures the accepted count at the crossing.
        assert_eq!(get(&v, "epoch").as_u64(), Some(1));
        assert_eq!(get(&v, "accepted_rows").as_u64(), Some(12));
        assert_eq!(get(&v, "epochs_published").as_u64(), Some(1));

        let (resp, _) = dispatch(&s, "{\"cmd\":\"city\",\"city\":\"City-A\"}");
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        let city = get(&v, "city");
        assert_eq!(get(city, "city").as_str(), Some("City-A"));
        assert!(get(city, "campaigns").as_array().is_some_and(|c| c.len() == 3));
    }

    #[test]
    fn malformed_requests_get_structured_errors() {
        let s = service();
        for bad in ["not json", "{}", "{\"cmd\":\"nope\"}", "{\"cmd\":\"city\"}"] {
            let (resp, shutdown) = dispatch(&s, bad);
            assert!(!shutdown);
            let v: serde_json::Value = serde_json::from_str(&resp).expect("error responses parse");
            assert_eq!(get(&v, "ok").as_bool(), Some(false), "{bad}: {resp}");
            assert!(get(&v, "error").as_str().is_some());
        }
    }

    #[test]
    fn tcp_round_trip_and_shutdown_signal() {
        let s = service();
        let server = QueryServer::start(Arc::clone(&s), "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let t = Duration::from_secs(5);
        let resp = query_once(addr, "{\"cmd\":\"status\"}", t).expect("status round-trip");
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(get(&v, "ok").as_bool(), Some(true));
        assert!(!server.wait_shutdown(Duration::from_millis(10)), "no shutdown yet");
        let resp = query_once(addr, "{\"cmd\":\"shutdown\"}", t).expect("shutdown round-trip");
        assert!(resp.contains("\"shutdown\""));
        assert!(server.wait_shutdown(t), "shutdown command fires the signal");
        server.stop();
    }
}
