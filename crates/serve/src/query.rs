//! Thread-per-connection line-delimited JSON query API (DESIGN.md §18).
//!
//! Each request is one JSON object per line (`{"cmd": "status"}`);
//! each response is one JSON object per line with an `ok` field.
//! Every command answers from the *current epoch snapshot* — a single
//! immutable `Arc` grabbed once per request — so a response is always
//! internally consistent, reads never block ingest, and two fields of
//! one response can never disagree about which epoch they describe.
//!
//! Commands:
//!
//! | cmd          | answer                                             |
//! |--------------|----------------------------------------------------|
//! | `status`     | global counters + per-partition accepted rows      |
//! | `city`       | one partition's per-campaign detail (`"city": ...`)|
//! | `headline`   | warm/final headline figures and tables             |
//! | `quarantine` | sanitize taxonomy of the current epoch             |
//! | `epoch`      | the full epoch snapshot                            |
//! | `metrics`    | the full two-class metrics snapshot                |
//! | `watch`      | *streaming*: one row now + one per epoch crossing  |
//! | `shutdown`   | ack, then signals the server to stop accepting     |
//!
//! Malformed or unknown requests get a uniform structured error row:
//! `{"ok": false, "kind": "error", "detail": "..."}` — still one JSON
//! object per line, so clients never need a second parser for the
//! failure path.
//!
//! `watch` is the one departure from request/response: the connection
//! switches to a push feed (the console's live feed). The server
//! writes one row immediately (the current epoch, with `serve.*`
//! counter *totals*), then one row per epoch crossing carrying the
//! counter *deltas* since the previous row — backed by
//! [`st_obs::MetricsSnapshot::delta`], so the rows telescope: base +
//! sum of deltas = final totals. The feed ends after the final epoch,
//! after an optional `"max": N` row budget, or when the server stops
//! accepting; the connection then returns to request/response.

use crate::epoch::{CitySnapshot, EpochSnapshot};
use crate::service::ContextService;
use serde::Serialize;
use st_obs::MetricsSnapshot;
use st_speedtest::SanitizeReport;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Per-request wall-clock histogram bounds, seconds.
const QUERY_BOUNDS: &[f64] = &[0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1];

/// How often a streaming watch wakes up to notice server shutdown.
const WATCH_POLL: Duration = Duration::from_millis(200);

#[derive(Serialize)]
struct ErrorResponse {
    ok: bool,
    kind: &'static str,
    detail: String,
}

#[derive(Serialize)]
struct CityRows {
    city: String,
    accepted_rows: u64,
}

#[derive(Serialize)]
struct StatusResponse {
    ok: bool,
    kind: &'static str,
    epoch: u64,
    final_epoch: bool,
    drained: bool,
    accepted_rows: u64,
    rows_in: u64,
    quarantined: u64,
    chunks: u64,
    segments_sealed: u64,
    epochs_published: u64,
    uptime_s: f64,
    cities: Vec<CityRows>,
}

#[derive(Serialize)]
struct CityResponse {
    ok: bool,
    kind: &'static str,
    epoch: u64,
    city: CitySnapshot,
}

#[derive(Serialize)]
struct HeadlineResponse {
    ok: bool,
    kind: &'static str,
    epoch: u64,
    final_epoch: bool,
    headlines: Vec<(String, String)>,
    tables: Vec<(String, String)>,
}

#[derive(Serialize)]
struct QuarantineResponse {
    ok: bool,
    kind: &'static str,
    epoch: u64,
    rows_in: u64,
    quarantined: u64,
    sanitize: SanitizeReport,
}

#[derive(Serialize)]
struct EpochResponse {
    ok: bool,
    kind: &'static str,
    snapshot: EpochSnapshot,
}

#[derive(Serialize)]
struct ShutdownResponse {
    ok: bool,
    kind: &'static str,
}

/// Per-city sealed-segment count inside a watch row.
#[derive(Serialize)]
struct SealCount {
    city: String,
    sealed_segments: u64,
}

/// One line of the `watch` feed: the epoch that crossed plus the
/// `serve.*` deterministic counter deltas since the previous row.
#[derive(Serialize)]
struct WatchRow {
    ok: bool,
    kind: &'static str,
    epoch: u64,
    final_epoch: bool,
    accepted_rows: u64,
    quarantined: u64,
    chunks: u64,
    segments_sealed: u64,
    seals: Vec<SealCount>,
    counters: BTreeMap<String, u64>,
}

fn err(msg: impl Into<String>) -> String {
    serde_json::to_string(&ErrorResponse { ok: false, kind: "error", detail: msg.into() })
        .expect("error response serializes")
}

fn json<T: Serialize>(resp: &T) -> String {
    serde_json::to_string(resp).expect("query response serializes")
}

/// Answer one request line. Returns the response line and whether the
/// request asked the server to shut down. Pure over (service state,
/// line) — exposed for direct use in tests and the in-process path.
pub fn dispatch(service: &ContextService, line: &str) -> (String, bool) {
    let value: serde_json::Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return (err(format!("bad request JSON: {e}")), false),
    };
    let Some(cmd) = value.get("cmd").and_then(|c| c.as_str()) else {
        return (err("request needs a string \"cmd\" field"), false);
    };
    let snap = service.current_epoch();
    service.registry().observe_wall("serve.query_seconds", &[("cmd", cmd)], 0.0, QUERY_BOUNDS);
    let resp = match cmd {
        "status" => {
            let epochs_published = service
                .registry()
                .snapshot_shared()
                .deterministic
                .counters
                .get("serve.epochs")
                .copied()
                .unwrap_or(0);
            json(&StatusResponse {
                ok: true,
                kind: "status",
                epoch: snap.epoch,
                final_epoch: snap.final_epoch,
                drained: service.is_drained(),
                accepted_rows: snap.accepted_rows,
                rows_in: snap.rows_in,
                quarantined: snap.quarantined,
                chunks: snap.chunks,
                segments_sealed: snap.segments_sealed,
                epochs_published,
                uptime_s: service.uptime_s(),
                cities: snap
                    .cities
                    .iter()
                    .map(|c| CityRows {
                        city: c.city.clone(),
                        accepted_rows: c.campaigns.iter().map(|s| s.accepted_rows).sum(),
                    })
                    .collect(),
            })
        }
        "city" => {
            let Some(name) = value.get("city").and_then(|c| c.as_str()) else {
                return (err("city query needs a string \"city\" field"), false);
            };
            match snap.cities.iter().find(|c| c.city == name) {
                Some(c) => json(&CityResponse {
                    ok: true,
                    kind: "city",
                    epoch: snap.epoch,
                    city: c.clone(),
                }),
                None => err(format!("unknown city {name:?}")),
            }
        }
        "headline" => json(&HeadlineResponse {
            ok: true,
            kind: "headline",
            epoch: snap.epoch,
            final_epoch: snap.final_epoch,
            headlines: snap.headlines.clone(),
            tables: snap.tables.clone(),
        }),
        "quarantine" => json(&QuarantineResponse {
            ok: true,
            kind: "quarantine",
            epoch: snap.epoch,
            rows_in: snap.rows_in,
            quarantined: snap.quarantined,
            sanitize: snap.sanitize.clone(),
        }),
        "epoch" => json(&EpochResponse { ok: true, kind: "epoch", snapshot: (*snap).clone() }),
        "metrics" => {
            // Assembled by hand so the shared snapshot `Arc` serializes
            // in place — no clone of the histogram maps per request.
            let metrics = service.registry().snapshot_shared();
            format!(
                "{{\"ok\":true,\"kind\":\"metrics\",\"epoch\":{},\"snapshot\":{}}}",
                snap.epoch,
                json(&*metrics)
            )
        }
        // Streaming is a connection-level mode, not a one-shot answer:
        // `handle_conn` intercepts it before dispatch ever runs.
        // Reaching this arm means the caller invoked the pure in-process
        // path, where a push feed cannot exist.
        "watch" => err(
            "watch is streaming-only: hold the connection open and read one row per epoch crossing",
        ),
        "shutdown" => return (json(&ShutdownResponse { ok: true, kind: "shutdown" }), true),
        other => err(format!("unknown cmd {other:?}")),
    };
    (resp, false)
}

/// Wakeable latch the `shutdown` command trips.
struct Signal {
    fired: Mutex<bool>,
    cv: Condvar,
    stop_accepting: AtomicBool,
}

impl Signal {
    fn new() -> Self {
        Signal {
            fired: Mutex::new(false),
            cv: Condvar::new(),
            stop_accepting: AtomicBool::new(false),
        }
    }

    fn fire(&self) {
        *self.fired.lock().expect("signal lock") = true;
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) -> bool {
        let fired = self.fired.lock().expect("signal lock");
        if *fired {
            return true;
        }
        let (fired, _) = self.cv.wait_timeout(fired, timeout).expect("signal lock");
        *fired
    }
}

/// A running query listener: one accept thread, one thread per
/// connection.
pub struct QueryServer {
    addr: SocketAddr,
    signal: Arc<Signal>,
    accept: Option<thread::JoinHandle<()>>,
}

impl QueryServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting.
    pub fn start(service: Arc<ContextService>, addr: &str) -> io::Result<QueryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let signal = Arc::new(Signal::new());
        let accept_signal = Arc::clone(&signal);
        let accept = thread::Builder::new().name("serve-accept".into()).spawn(move || {
            for stream in listener.incoming() {
                if accept_signal.stop_accepting.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&service);
                let signal = Arc::clone(&accept_signal);
                let _ = thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_conn(stream, &service, &signal));
            }
        })?;
        Ok(QueryServer { addr, signal, accept: Some(accept) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until a `shutdown` command arrives (or `stop` is called),
    /// up to `timeout`. Returns whether the signal fired.
    pub fn wait_shutdown(&self, timeout: Duration) -> bool {
        self.signal.wait(timeout)
    }

    /// Stop accepting and join the accept thread. In-flight
    /// connections finish their current line and exit on their own.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.signal.stop_accepting.store(true, Ordering::Release);
        self.signal.fire();
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Serialize one watch row for `snap`, carrying the `serve.*`
/// deterministic counter deltas since `prev` (which is advanced to the
/// metrics state captured for this row). Seeding `prev` with
/// [`MetricsSnapshot::empty`] makes the first row carry running totals;
/// every later row carries increments, and the rows telescope.
fn watch_row(
    service: &ContextService,
    snap: &EpochSnapshot,
    prev: &mut Arc<MetricsSnapshot>,
) -> String {
    let now = service.registry().snapshot_shared();
    let delta = now.delta(prev.as_ref());
    *prev = now;
    let counters: BTreeMap<String, u64> =
        delta.deterministic.counters.into_iter().filter(|(k, _)| k.starts_with("serve.")).collect();
    json(&WatchRow {
        ok: true,
        kind: "watch",
        epoch: snap.epoch,
        final_epoch: snap.final_epoch,
        accepted_rows: snap.accepted_rows,
        quarantined: snap.quarantined,
        chunks: snap.chunks,
        segments_sealed: snap.segments_sealed,
        seals: snap
            .cities
            .iter()
            .map(|c| SealCount {
                city: c.city.clone(),
                sealed_segments: c.campaigns.iter().map(|s| s.sealed_segments).sum(),
            })
            .collect(),
        counters,
    })
}

fn write_line(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Run one `watch` feed on an open connection: emit the current epoch
/// immediately, then every snapshot the publisher hands us, exactly
/// once each and in order (see [`crate::EpochPublisher::subscribe`]).
/// Ends after the final epoch, after `max` rows, when the server stops
/// accepting, or on a client write error.
fn stream_watch(
    writer: &mut TcpStream,
    service: &ContextService,
    signal: &Signal,
    max: Option<u64>,
) -> io::Result<()> {
    let (base, rx) = service.subscribe_epochs();
    let mut prev = Arc::new(MetricsSnapshot::empty());
    let mut sent = 0u64;
    write_line(writer, &watch_row(service, &base, &mut prev))?;
    sent += 1;
    if base.final_epoch || max.is_some_and(|m| sent >= m) {
        return Ok(());
    }
    loop {
        match rx.recv_timeout(WATCH_POLL) {
            Ok(snap) => {
                write_line(writer, &watch_row(service, &snap, &mut prev))?;
                sent += 1;
                if snap.final_epoch || max.is_some_and(|m| sent >= m) {
                    return Ok(());
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if signal.stop_accepting.load(Ordering::Acquire) {
                    return Ok(());
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

fn handle_conn(stream: TcpStream, service: &ContextService, signal: &Signal) {
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // `watch` flips the connection into push mode until the feed
        // ends; everything else stays strict request/response.
        if let Ok(v) = serde_json::from_str(&line) {
            if v.get("cmd").and_then(|c| c.as_str()) == Some("watch") {
                service.registry().observe_wall(
                    "serve.query_seconds",
                    &[("cmd", "watch")],
                    0.0,
                    QUERY_BOUNDS,
                );
                let max = v.get("max").and_then(|m| m.as_u64());
                if stream_watch(&mut writer, service, signal, max).is_err() {
                    break;
                }
                continue;
            }
        }
        let (resp, shutdown) = dispatch(service, &line);
        if write_line(&mut writer, &resp).is_err() {
            break;
        }
        if shutdown {
            signal.fire();
            break;
        }
    }
}

/// One-shot client: connect, send `line`, read one response line.
/// What the `serve --connect` client mode and the test suites use.
pub fn query_once(addr: SocketAddr, line: &str, timeout: Duration) -> io::Result<String> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp)?;
    if resp.is_empty() {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "no response line"));
    }
    Ok(resp.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{PartitionSpec, ServeOptions};
    use st_obs::Registry;
    use st_speedtest::{Access, Measurement, Platform};

    fn m(id: u64) -> Measurement {
        Measurement {
            id,
            user_id: id,
            platform: Platform::AndroidApp,
            city: 0,
            day: 10,
            hour: 12,
            down_mbps: 100.0,
            up_mbps: 10.0,
            rtt_ms: 20.0,
            loaded_rtt_ms: 40.0,
            access: Access::Ethernet,
            kernel_memory_gb: None,
            truth_tier: None,
        }
    }

    fn service() -> Arc<ContextService> {
        let s = ContextService::new(
            vec![PartitionSpec::city("City-A")],
            ServeOptions { seal_rows: 8, epoch_rows: 10, warm: None },
            Registry::new(),
        );
        s.ingest_chunk("City-A", "ookla", (0..12).map(m).collect()).unwrap();
        Arc::new(s)
    }

    fn get<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
        v.get(key).unwrap_or_else(|| panic!("response missing {key:?}"))
    }

    #[test]
    fn dispatch_answers_every_command_from_one_epoch() {
        let s = service();
        for cmd in ["status", "headline", "quarantine", "epoch", "metrics"] {
            let (resp, shutdown) = dispatch(&s, &format!("{{\"cmd\":\"{cmd}\"}}"));
            assert!(!shutdown);
            let v: serde_json::Value = serde_json::from_str(&resp).expect("response parses");
            assert_eq!(get(&v, "ok").as_bool(), Some(true), "{cmd}: {resp}");
        }
        let (resp, _) = dispatch(&s, "{\"cmd\":\"status\"}");
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        // One 12-row chunk crossed the 10-row boundary once; the
        // snapshot captures the accepted count at the crossing.
        assert_eq!(get(&v, "epoch").as_u64(), Some(1));
        assert_eq!(get(&v, "accepted_rows").as_u64(), Some(12));
        assert_eq!(get(&v, "epochs_published").as_u64(), Some(1));

        let (resp, _) = dispatch(&s, "{\"cmd\":\"city\",\"city\":\"City-A\"}");
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        let city = get(&v, "city");
        assert_eq!(get(city, "city").as_str(), Some("City-A"));
        assert!(get(city, "campaigns").as_array().is_some_and(|c| c.len() == 3));

        // metrics returns the full two-class snapshot, both sections
        // split exactly as BENCH_metrics.json lays them out.
        let (resp, _) = dispatch(&s, "{\"cmd\":\"metrics\"}");
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(get(&v, "kind").as_str(), Some("metrics"));
        let snap = get(&v, "snapshot");
        assert_eq!(get(snap, "schema").as_str(), Some("st-obs/v1"));
        let det = get(snap, "deterministic");
        assert!(get(snap, "wall_clock").as_object().is_some());
        let rows = get(get(det, "counters"), "serve.rows{outcome=clean}");
        assert_eq!(rows.as_u64(), Some(12), "metrics carries the serve.* counters: {resp}");
    }

    #[test]
    fn malformed_requests_get_structured_errors() {
        let s = service();
        // One failure shape for every failure mode, streaming included:
        // ok:false, kind:"error", and a human-readable detail string.
        for bad in
            ["not json", "{}", "{\"cmd\":\"nope\"}", "{\"cmd\":\"city\"}", "{\"cmd\":\"watch\"}"]
        {
            let (resp, shutdown) = dispatch(&s, bad);
            assert!(!shutdown);
            let v: serde_json::Value = serde_json::from_str(&resp).expect("error responses parse");
            assert_eq!(get(&v, "ok").as_bool(), Some(false), "{bad}: {resp}");
            assert_eq!(get(&v, "kind").as_str(), Some("error"), "{bad}: {resp}");
            assert!(get(&v, "detail").as_str().is_some_and(|d| !d.is_empty()), "{bad}: {resp}");
        }
    }

    #[test]
    fn watch_over_tcp_streams_rows_and_returns_to_request_response() {
        let s = service();
        let server = QueryServer::start(Arc::clone(&s), "127.0.0.1:0").expect("bind");
        let t = Duration::from_secs(5);
        let stream = TcpStream::connect_timeout(&server.addr(), t).expect("connect");
        stream.set_read_timeout(Some(t)).unwrap();
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"cmd\":\"watch\",\"max\":1}\n").unwrap();
        writer.flush().unwrap();
        let mut row = String::new();
        reader.read_line(&mut row).expect("watch row");
        let v: serde_json::Value = serde_json::from_str(&row).expect("watch row parses");
        assert_eq!(get(&v, "kind").as_str(), Some("watch"));
        assert_eq!(get(&v, "epoch").as_u64(), Some(1));
        assert_eq!(get(&v, "accepted_rows").as_u64(), Some(12));
        // The first row is seeded from the empty snapshot: its counter
        // deltas are the running serve.* totals.
        let counters = get(&v, "counters").as_object().expect("counters map");
        assert!(counters.keys().all(|k| k.starts_with("serve.")), "{row}");
        assert_eq!(counters.get("serve.rows{outcome=clean}").and_then(|c| c.as_u64()), Some(12));
        // After the row budget the same connection answers one-shots.
        writer.write_all(b"{\"cmd\":\"status\"}\n").unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("status after watch");
        let v: serde_json::Value = serde_json::from_str(&resp).expect("status parses");
        assert_eq!(get(&v, "kind").as_str(), Some("status"));
        server.stop();
    }

    #[test]
    fn tcp_round_trip_and_shutdown_signal() {
        let s = service();
        let server = QueryServer::start(Arc::clone(&s), "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let t = Duration::from_secs(5);
        let resp = query_once(addr, "{\"cmd\":\"status\"}", t).expect("status round-trip");
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(get(&v, "ok").as_bool(), Some(true));
        assert!(!server.wait_shutdown(Duration::from_millis(10)), "no shutdown yet");
        let resp = query_once(addr, "{\"cmd\":\"shutdown\"}", t).expect("shutdown round-trip");
        assert!(resp.contains("\"shutdown\""));
        assert!(server.wait_shutdown(t), "shutdown command fires the signal");
        server.stop();
    }
}
