//! Epoch boundaries and the published snapshot model (DESIGN.md §18).
//!
//! An *epoch* is the unit of publication: every `epoch_rows` accepted
//! campaign rows, the service assembles one immutable [`EpochSnapshot`]
//! and atomically swaps it in as the current epoch. Queries clone an
//! `Arc` onto whatever snapshot is current — readers never block the
//! ingest path and can never observe a half-built epoch.
//!
//! The boundary function itself is deliberately trivial: the epoch
//! index is `accepted_rows / epoch_rows`, a pure function of the
//! accepted-row *count*. Chunk sizes, stream interleave, and worker
//! scheduling decide *when* a boundary is crossed but never *where* it
//! falls, and the total number of crossings telescopes to
//! `epoch_index(total)` under any partition of the stream — the
//! property the `serve.epochs` deterministic counter and the proptests
//! in `tests/serve_prop.rs` lean on.

use parking_lot::{Mutex, RwLock};
use serde::Serialize;
use st_speedtest::SanitizeReport;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// Epoch index after `accepted_rows` rows with boundaries every
/// `epoch_rows`. Pure in the accepted-row count; panics on a zero
/// divisor (the CLI layer rejects `--epoch-rows 0` with a usage error
/// long before this runs).
pub fn epoch_index(accepted_rows: u64, epoch_rows: u64) -> u64 {
    assert!(epoch_rows > 0, "epoch_rows must be >= 1");
    accepted_rows / epoch_rows
}

/// Boundaries crossed by growing the accepted count from `before` to
/// `after`. Summing this over any chunking of a stream telescopes to
/// `epoch_index(total, epoch_rows)` — crossings are invariant to how
/// the stream was cut or interleaved.
pub fn epochs_crossed(before: u64, after: u64, epoch_rows: u64) -> u64 {
    debug_assert!(after >= before, "accepted-row counts are monotone");
    epoch_index(after, epoch_rows).saturating_sub(epoch_index(before, epoch_rows))
}

/// One campaign stream's state as captured in an epoch.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignSnapshot {
    /// Campaign name within the city partition ("ookla", "mlab", ...).
    pub campaign: String,
    /// Rows the incremental sanitizer accepted (sealed + tail).
    pub accepted_rows: u64,
    /// Immutable segments sealed so far.
    pub sealed_segments: u64,
    /// Accepted rows still buffered in the mutable tail.
    pub tail_rows: u64,
    /// Whether the stream has been frozen (final epoch only).
    pub frozen: bool,
}

/// One city partition's state as captured in an epoch.
#[derive(Debug, Clone, Serialize)]
pub struct CitySnapshot {
    /// Partition name (city label, or "wire" for session results).
    pub city: String,
    /// Whether this partition joins the deterministic counter class
    /// and advances epochs (wire partitions do not — DESIGN.md §18).
    pub deterministic: bool,
    /// Per-campaign stream detail.
    pub campaigns: Vec<CampaignSnapshot>,
}

/// One published epoch: everything a query can be answered from.
///
/// Immutable once published; the service swaps a fresh `Arc` in at
/// each boundary and readers hold whichever one they grabbed. The
/// global counters (`accepted_rows`, `rows_in`, ...) are captured
/// atomically at the boundary crossing; the per-city detail is read
/// per-partition immediately after and is therefore *at least as new
/// as* the trigger (never older, never torn).
#[derive(Debug, Clone, Serialize)]
pub struct EpochSnapshot {
    /// Epoch index: `accepted_rows / epoch_rows` at the crossing, plus
    /// one final increment when the stream drains.
    pub epoch: u64,
    /// True only for the post-drain epoch (frozen stores, rendered
    /// artifacts).
    pub final_epoch: bool,
    /// Deterministic-class accepted rows at the crossing.
    pub accepted_rows: u64,
    /// Rows offered to the sanitizer (all partitions).
    pub rows_in: u64,
    /// Rows quarantined (all partitions).
    pub quarantined: u64,
    /// Chunks ingested (all partitions).
    pub chunks: u64,
    /// Segments sealed (all partitions).
    pub segments_sealed: u64,
    /// Per-partition stream detail.
    pub cities: Vec<CitySnapshot>,
    /// Merged sanitize taxonomy across every stream.
    pub sanitize: SanitizeReport,
    /// Warm headline `(label, value)` pairs (final figures after
    /// drain).
    pub headlines: Vec<(String, String)>,
    /// Warm rendered tables as `(id, text)` pairs.
    pub tables: Vec<(String, String)>,
    /// Batch-comparable FNV-1a artifact hash — final epoch only.
    pub artifact_hash: Option<String>,
    /// Files under the artifact hash — final epoch only.
    pub artifact_files: u64,
}

impl EpochSnapshot {
    /// The epoch published before any row arrives: index 0, all zeros,
    /// with the full city/campaign skeleton so `city` queries resolve
    /// from the first connection on.
    pub fn initial(cities: Vec<CitySnapshot>) -> Self {
        EpochSnapshot {
            epoch: 0,
            final_epoch: false,
            accepted_rows: 0,
            rows_in: 0,
            quarantined: 0,
            chunks: 0,
            segments_sealed: 0,
            cities,
            sanitize: SanitizeReport::default(),
            headlines: Vec::new(),
            tables: Vec::new(),
            artifact_hash: None,
            artifact_files: 0,
        }
    }
}

/// The single swap point between ingest and queries.
///
/// Writers race only here: `publish` refuses snapshots that are not
/// strictly newer than the current one, so two ingest threads that
/// both crossed a boundary can build their epochs concurrently and the
/// later index always wins — observed epochs are monotone per reader.
///
/// Beyond the swap, the publisher carries a subscription side for the
/// `watch` verb: every snapshot that *wins* the swap is delivered to
/// every live subscriber exactly once, in publication order. A
/// snapshot that loses the monotonicity race is dropped from both the
/// swap and the feeds, so a subscriber's sequence is strictly
/// increasing — the same monotone history a polling reader observes,
/// with no crossings skipped and none repeated.
pub struct EpochPublisher {
    current: RwLock<Arc<EpochSnapshot>>,
    /// Live subscriber channels. Guarded separately from `current`, but
    /// only touched while holding a `current` lock (read for
    /// registration, write for notification) — that exclusion is what
    /// makes the handoff in [`EpochPublisher::subscribe`] gap-free.
    subs: Mutex<Vec<Sender<Arc<EpochSnapshot>>>>,
}

impl EpochPublisher {
    /// Start at the given epoch-0 snapshot.
    pub fn new(initial: EpochSnapshot) -> Self {
        EpochPublisher { current: RwLock::new(Arc::new(initial)), subs: Mutex::new(Vec::new()) }
    }

    /// The current epoch (an `Arc` bump; never blocks on ingest).
    pub fn current(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// Register a live feed: returns the snapshot that is current at
    /// registration time plus a receiver that will yield every snapshot
    /// published *after* it, in order, exactly once.
    ///
    /// Registration happens under the `current` read lock, which
    /// excludes the publish path (it holds the write lock across both
    /// the swap and the notification sweep). So the returned base and
    /// the stream cannot have a gap between them: any publish is either
    /// fully before registration (visible in the base) or fully after
    /// (delivered on the channel).
    pub fn subscribe(&self) -> (Arc<EpochSnapshot>, Receiver<Arc<EpochSnapshot>>) {
        let cur = self.current.read();
        let (tx, rx) = std::sync::mpsc::channel();
        self.subs.lock().push(tx);
        (Arc::clone(&cur), rx)
    }

    /// Swap `snap` in if it is strictly newer than the current epoch
    /// (final beats non-final at equal index) and, on a successful
    /// swap, hand it to every subscriber. Returns whether the swap
    /// happened.
    pub fn publish(&self, snap: Arc<EpochSnapshot>) -> bool {
        let mut cur = self.current.write();
        let newer = snap.epoch > cur.epoch
            || (snap.epoch == cur.epoch && snap.final_epoch && !cur.final_epoch);
        if newer {
            *cur = snap;
            // Notify while still holding the write lock so deliveries
            // are totally ordered with swaps; sends are unbounded and
            // never block. Disconnected receivers are pruned here.
            self.subs.lock().retain(|tx| tx.send(Arc::clone(&cur)).is_ok());
        }
        newer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_index_is_a_floor_and_crossings_telescope() {
        assert_eq!(epoch_index(0, 10), 0);
        assert_eq!(epoch_index(9, 10), 0);
        assert_eq!(epoch_index(10, 10), 1);
        assert_eq!(epoch_index(25, 10), 2);
        // Any chunking of 0..25 crosses the same number of boundaries.
        for chunks in [vec![25], vec![1; 25], vec![9, 9, 7], vec![10, 10, 5]] {
            let mut at = 0u64;
            let mut crossed = 0u64;
            for c in chunks {
                crossed += epochs_crossed(at, at + c, 10);
                at += c;
            }
            assert_eq!(crossed, epoch_index(25, 10));
        }
    }

    #[test]
    fn publisher_is_monotone_and_final_beats_warm() {
        let p = EpochPublisher::new(EpochSnapshot::initial(Vec::new()));
        assert_eq!(p.current().epoch, 0);
        let mut e2 = EpochSnapshot::initial(Vec::new());
        e2.epoch = 2;
        assert!(p.publish(Arc::new(e2)));
        // A straggler that lost the race must not roll the epoch back.
        let mut e1 = EpochSnapshot::initial(Vec::new());
        e1.epoch = 1;
        assert!(!p.publish(Arc::new(e1)));
        assert_eq!(p.current().epoch, 2);
        // Same index, final flag: the final snapshot wins once.
        let mut f2 = EpochSnapshot::initial(Vec::new());
        f2.epoch = 2;
        f2.final_epoch = true;
        assert!(p.publish(Arc::new(f2.clone())));
        assert!(!p.publish(Arc::new(f2)));
        assert!(p.current().final_epoch);
    }

    #[test]
    fn subscribers_see_every_winning_publish_exactly_once() {
        let p = EpochPublisher::new(EpochSnapshot::initial(Vec::new()));
        let (base, rx) = p.subscribe();
        assert_eq!(base.epoch, 0);
        let snap_at = |epoch: u64, final_epoch: bool| {
            let mut s = EpochSnapshot::initial(Vec::new());
            s.epoch = epoch;
            s.final_epoch = final_epoch;
            Arc::new(s)
        };
        assert!(p.publish(snap_at(1, false)));
        assert!(!p.publish(snap_at(1, false)), "losing publishes are dropped from the feed too");
        assert!(p.publish(snap_at(2, false)));
        assert!(p.publish(snap_at(2, true)));
        let seen: Vec<(u64, bool)> = rx.try_iter().map(|s| (s.epoch, s.final_epoch)).collect();
        assert_eq!(seen, vec![(1, false), (2, false), (2, true)]);
        // A subscriber that joins late sees the current state as its
        // base and only subsequent publishes on the channel.
        let (base, rx2) = p.subscribe();
        assert_eq!((base.epoch, base.final_epoch), (2, true));
        assert!(rx2.try_recv().is_err());
        // Dropped receivers are pruned on the next publish rather than
        // accumulating forever.
        drop(rx2);
        drop(rx);
        let mut f3 = EpochSnapshot::initial(Vec::new());
        f3.epoch = 3;
        assert!(p.publish(Arc::new(f3)));
        assert!(p.subs.lock().is_empty());
    }

    #[test]
    #[should_panic(expected = "epoch_rows")]
    fn zero_epoch_rows_is_a_caller_bug() {
        epoch_index(1, 0);
    }
}
