//! The sharded ingest service: per-city [`SegmentedStore`] partitions
//! behind per-partition locks, a tiny coordinator for the global
//! accepted-row count, and epoch publication at every boundary
//! crossing (DESIGN.md §18).
//!
//! Locking discipline (no lock is ever held while another of the same
//! rank is taken):
//!
//! 1. a partition's `streams` mutex — held only for one
//!    `append_chunk` (or one stat read during snapshot assembly);
//! 2. the coordinator mutex — held for a few integer updates;
//! 3. the publisher's `RwLock` — held for one `Arc` swap.
//!
//! Ingest takes 1 then 2 then (on a crossing) 3, releasing each before
//! the next; snapshot assembly re-takes partition locks one at a time.
//! Queries touch only 3 (a read lock around an `Arc` clone), so
//! readers never block writers and vice versa.

use crate::epoch::{epoch_index, CampaignSnapshot, CitySnapshot, EpochPublisher, EpochSnapshot};
use parking_lot::Mutex;
use st_obs::Registry;
use st_speedtest::{
    ChunkStats, Measurement, SanitizeReport, SegmentedStore, StoreError, DEFAULT_SEAL_ROWS,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Instant;

/// Default accepted rows per epoch.
pub const DEFAULT_EPOCH_ROWS: usize = 8192;

/// Per-chunk ingest latency buckets, seconds (wall-clock class).
const SERVE_CHUNK_BOUNDS: &[f64] =
    &[0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1.0];

/// Accepted-rows-per-wire-chunk buckets (wall-clock class: wire
/// completion counts move with real sockets).
const WIRE_ROW_BOUNDS: &[f64] = &[1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 500.0, 1000.0];

/// One partition the service shards into, declared at construction.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// Partition name — a city label, or e.g. "wire".
    pub city: String,
    /// Campaign stream names within the partition.
    pub campaigns: Vec<String>,
    /// Whether rows here join the deterministic counter class and
    /// advance epochs. Replayed campaign streams say true; wire
    /// sessions (whose completion set depends on real sockets) say
    /// false, keeping `serve.*` deterministic counters
    /// parallelism-invariant and epoch boundaries pure (DESIGN.md §18).
    pub deterministic: bool,
}

impl PartitionSpec {
    /// A deterministic city partition with the standard three
    /// campaigns.
    pub fn city(label: &str) -> Self {
        PartitionSpec {
            city: label.to_string(),
            campaigns: vec!["ookla".into(), "mlab".into(), "mba".into()],
            deterministic: true,
        }
    }

    /// The wall-clock-class partition wire-session results land in.
    pub fn wire() -> Self {
        PartitionSpec {
            city: "wire".to_string(),
            campaigns: vec!["sessions".into()],
            deterministic: false,
        }
    }
}

/// Everything a warm render sees: the sealed (therefore
/// chunking-invariant) rows of every deterministic partition.
pub struct WarmInput {
    /// Epoch index being rendered.
    pub epoch: u64,
    /// Per-city `(campaign, sealed rows)` streams, in partition order.
    pub cities: Vec<WarmCity>,
}

/// One city's sealed streams, handed to the warm renderer.
pub struct WarmCity {
    /// City label.
    pub city: String,
    /// `(campaign, sealed accepted rows)` in campaign order.
    pub campaigns: Vec<(String, Vec<Measurement>)>,
}

/// What a warm render produces for the epoch snapshot.
#[derive(Debug, Clone, Default)]
pub struct WarmOutput {
    /// Headline `(label, value)` pairs.
    pub headlines: Vec<(String, String)>,
    /// Rendered tables as `(id, text)` pairs.
    pub tables: Vec<(String, String)>,
}

/// Injected warm-analysis renderer. The service itself knows nothing
/// about BST fits or figures — the bench layer injects a closure over
/// `st-analysis` entry points, keeping the dependency arrow pointing
/// the right way (st-bench → st-serve, never back).
pub type WarmRenderer = Arc<dyn Fn(&WarmInput) -> WarmOutput + Send + Sync>;

/// Service construction knobs.
#[derive(Clone)]
pub struct ServeOptions {
    /// Accepted rows per sealed segment (per stream).
    pub seal_rows: usize,
    /// Accepted rows per published epoch (global).
    pub epoch_rows: usize,
    /// Warm-analysis renderer run at each epoch crossing (`None`
    /// publishes counters-only epochs).
    pub warm: Option<WarmRenderer>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { seal_rows: DEFAULT_SEAL_ROWS, epoch_rows: DEFAULT_EPOCH_ROWS, warm: None }
    }
}

/// Typed ingest-path error: the service loop never unwraps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The named partition does not exist.
    UnknownCity(String),
    /// The partition exists but has no such campaign stream.
    UnknownCampaign {
        /// Partition name.
        city: String,
        /// Offered campaign name.
        campaign: String,
    },
    /// The service has drained: stores are frozen and owned by the
    /// caller of [`ContextService::drain`].
    Draining,
    /// A store-level invariant violation surfaced through the ingest
    /// path (e.g. [`StoreError::Frozen`]).
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownCity(city) => write!(f, "unknown partition {city:?}"),
            ServeError::UnknownCampaign { city, campaign } => {
                write!(f, "partition {city:?} has no campaign {campaign:?}")
            }
            ServeError::Draining => write!(f, "service is draining; stores are frozen"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// What one accepted chunk did, from the caller's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Sanitize outcome counts and segments sealed by this chunk.
    pub stats: ChunkStats,
    /// Epoch index after this chunk.
    pub epoch: u64,
    /// Boundaries this chunk crossed (0 almost always).
    pub epochs_crossed: u64,
}

/// One frozen campaign stream handed back by [`ContextService::drain`].
pub struct DrainedPartition {
    /// Partition name.
    pub city: String,
    /// Whether the partition was deterministic class.
    pub deterministic: bool,
    /// `(campaign, frozen store)` in campaign order.
    pub stores: Vec<(String, SegmentedStore)>,
}

/// Everything [`ContextService::drain`] hands to the finisher.
pub struct DrainOutput {
    /// Frozen partitions, in spec order.
    pub partitions: Vec<DrainedPartition>,
    /// Merged sanitize taxonomy across every stream.
    pub sanitize: SanitizeReport,
    /// Sealed segments across every frozen store.
    pub segments: u64,
}

struct StreamSlot {
    campaign: String,
    store: SegmentedStore,
}

struct Partition {
    city: String,
    deterministic: bool,
    campaigns: Vec<String>,
    streams: Mutex<Vec<StreamSlot>>,
}

/// The final epoch's rendered payload: headlines, tables, the
/// batch-comparable artifact hash, and the hashed file count.
type FinalPayload = (Vec<(String, String)>, Vec<(String, String)>, Option<String>, u64);

/// Global integer state; every field is updated under one short-lived
/// mutex so an epoch snapshot captures them atomically.
#[derive(Debug, Clone, Copy, Default)]
struct Coordinator {
    rows_in: u64,
    accepted: u64,
    quarantined: u64,
    chunks: u64,
    segments: u64,
    epoch: u64,
}

/// The long-running contextualization service (DESIGN.md §18).
pub struct ContextService {
    partitions: Vec<Partition>,
    coord: Mutex<Coordinator>,
    publisher: EpochPublisher,
    drained: AtomicBool,
    /// City detail captured at drain time, used by `publish_final`
    /// (the live partitions are empty once their stores are handed
    /// out).
    final_cities: Mutex<Option<Vec<CitySnapshot>>>,
    seal_rows: usize,
    epoch_rows: u64,
    warm: Option<WarmRenderer>,
    obs: Registry,
    started: Instant,
}

impl ContextService {
    /// Build the service with one [`SegmentedStore`] per declared
    /// campaign stream and publish the empty epoch 0.
    pub fn new(specs: Vec<PartitionSpec>, opts: ServeOptions, obs: Registry) -> Self {
        assert!(opts.seal_rows > 0, "seal_rows must be >= 1");
        assert!(opts.epoch_rows > 0, "epoch_rows must be >= 1");
        let partitions: Vec<Partition> = specs
            .into_iter()
            .map(|spec| Partition {
                streams: Mutex::new(
                    spec.campaigns
                        .iter()
                        .map(|c| StreamSlot {
                            campaign: c.clone(),
                            store: SegmentedStore::builder(opts.seal_rows),
                        })
                        .collect(),
                ),
                city: spec.city,
                deterministic: spec.deterministic,
                campaigns: spec.campaigns,
            })
            .collect();
        let skeleton = partitions
            .iter()
            .map(|p| CitySnapshot {
                city: p.city.clone(),
                deterministic: p.deterministic,
                campaigns: p
                    .campaigns
                    .iter()
                    .map(|c| CampaignSnapshot {
                        campaign: c.clone(),
                        accepted_rows: 0,
                        sealed_segments: 0,
                        tail_rows: 0,
                        frozen: false,
                    })
                    .collect(),
            })
            .collect();
        ContextService {
            partitions,
            coord: Mutex::new(Coordinator::default()),
            publisher: EpochPublisher::new(EpochSnapshot::initial(skeleton)),
            drained: AtomicBool::new(false),
            final_cities: Mutex::new(None),
            seal_rows: opts.seal_rows,
            epoch_rows: opts.epoch_rows as u64,
            warm: opts.warm,
            obs,
            started: Instant::now(),
        }
    }

    /// Partition names, in spec order.
    pub fn cities(&self) -> Vec<String> {
        self.partitions.iter().map(|p| p.city.clone()).collect()
    }

    /// Accepted rows per sealed segment.
    pub fn seal_rows(&self) -> usize {
        self.seal_rows
    }

    /// Accepted rows per published epoch.
    pub fn epoch_rows(&self) -> u64 {
        self.epoch_rows
    }

    /// Whether [`ContextService::drain`] has run.
    pub fn is_drained(&self) -> bool {
        self.drained.load(Ordering::Acquire)
    }

    /// Seconds since the service was built (wall-clock class).
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The metrics registry every `serve.*` metric lands in.
    pub fn registry(&self) -> &Registry {
        &self.obs
    }

    /// The current epoch (an `Arc` bump; never blocks ingest).
    pub fn current_epoch(&self) -> Arc<EpochSnapshot> {
        self.publisher.current()
    }

    /// Subscribe to epoch publications: the current snapshot as a base
    /// plus a receiver yielding every later successfully-published
    /// snapshot exactly once, in order (the `watch` verb's feed — see
    /// [`EpochPublisher::subscribe`] for the gap-freedom argument).
    pub fn subscribe_epochs(&self) -> (Arc<EpochSnapshot>, Receiver<Arc<EpochSnapshot>>) {
        self.publisher.subscribe()
    }

    fn lookup(&self, city: &str, campaign: &str) -> Result<(usize, usize), ServeError> {
        let pi = self
            .partitions
            .iter()
            .position(|p| p.city == city)
            .ok_or_else(|| ServeError::UnknownCity(city.to_string()))?;
        let si =
            self.partitions[pi].campaigns.iter().position(|c| c == campaign).ok_or_else(|| {
                ServeError::UnknownCampaign {
                    city: city.to_string(),
                    campaign: campaign.to_string(),
                }
            })?;
        Ok((pi, si))
    }

    /// Ingest one chunk into the named campaign stream: incremental
    /// sanitize, segment sealing, deterministic counters, and epoch
    /// publication when a boundary is crossed. Every failure mode is a
    /// typed [`ServeError`] — the service loop never unwraps.
    pub fn ingest_chunk(
        &self,
        city: &str,
        campaign: &str,
        rows: Vec<Measurement>,
    ) -> Result<IngestReceipt, ServeError> {
        let (pi, si) = self.lookup(city, campaign)?;
        if self.is_drained() {
            return Err(ServeError::Draining);
        }
        let part = &self.partitions[pi];
        let t0 = Instant::now();
        let stats = {
            let mut streams = part.streams.lock();
            // A drain that raced us between the flag check and this
            // lock leaves the slot list empty — surface it typed.
            let slot = streams.get_mut(si).ok_or(ServeError::Draining)?;
            slot.store.append_chunk(rows)?
        };
        let accepted = stats.clean + stats.repaired;
        self.obs.observe_wall(
            "serve.chunk_seconds",
            &[("city", &part.city)],
            t0.elapsed().as_secs_f64(),
            SERVE_CHUNK_BOUNDS,
        );
        if part.deterministic {
            self.obs.inc("serve.chunks", &[("campaign", campaign), ("city", &part.city)]);
            for (outcome, n) in [
                ("clean", stats.clean),
                ("repaired", stats.repaired),
                ("quarantined", stats.quarantined),
            ] {
                self.obs.add("serve.rows", &[("outcome", outcome)], n);
            }
        } else {
            // Wire-session rows: wall-clock class only (DESIGN.md §18).
            self.obs.observe_wall(
                "serve.wire_rows",
                &[("city", &part.city)],
                accepted as f64,
                WIRE_ROW_BOUNDS,
            );
        }
        let (view, crossed) = {
            let mut c = self.coord.lock();
            c.rows_in += stats.rows_in as u64;
            c.chunks += 1;
            c.quarantined += stats.quarantined;
            c.segments += stats.segments_sealed as u64;
            if part.deterministic {
                let before = c.epoch;
                c.accepted += accepted;
                c.epoch = epoch_index(c.accepted, self.epoch_rows);
                (*c, c.epoch - before)
            } else {
                (*c, 0)
            }
        };
        if crossed > 0 {
            // Crossings telescope to epoch_index(total accepted), so
            // this counter is chunking- and parallelism-invariant.
            self.obs.add("serve.epochs", &[], crossed);
            let snap = self.build_snapshot(view, false, None);
            self.publisher.publish(Arc::new(snap));
        }
        Ok(IngestReceipt { stats, epoch: view.epoch, epochs_crossed: crossed })
    }

    /// Assemble an epoch from a coordinator view captured at the
    /// crossing plus per-partition detail read immediately after
    /// (never older than the trigger, see [`EpochSnapshot`]).
    fn build_snapshot(
        &self,
        view: Coordinator,
        final_epoch: bool,
        finals: Option<FinalPayload>,
    ) -> EpochSnapshot {
        let mut cities = Vec::with_capacity(self.partitions.len());
        let mut sanitize = SanitizeReport::default();
        let mut warm_cities = Vec::new();
        for part in &self.partitions {
            let streams = part.streams.lock();
            let mut campaigns = Vec::with_capacity(streams.len());
            let mut warm_campaigns = Vec::new();
            for slot in streams.iter() {
                sanitize.merge(slot.store.report());
                campaigns.push(CampaignSnapshot {
                    campaign: slot.campaign.clone(),
                    accepted_rows: slot.store.accepted_rows() as u64,
                    sealed_segments: slot.store.num_segments() as u64,
                    tail_rows: slot.store.tail_len() as u64,
                    frozen: slot.store.is_frozen(),
                });
                if self.warm.is_some() && part.deterministic && !final_epoch {
                    warm_campaigns.push((slot.campaign.clone(), slot.store.sealed_measurements()));
                }
            }
            drop(streams);
            if !warm_campaigns.is_empty() {
                warm_cities.push(WarmCity { city: part.city.clone(), campaigns: warm_campaigns });
            }
            cities.push(CitySnapshot {
                city: part.city.clone(),
                deterministic: part.deterministic,
                campaigns,
            });
        }
        let (mut headlines, mut tables, mut artifact_hash, mut artifact_files) =
            (Vec::new(), Vec::new(), None, 0);
        if let Some((h, t, hash, files)) = finals {
            (headlines, tables, artifact_hash, artifact_files) = (h, t, hash, files);
        } else if let Some(warm) = &self.warm {
            let out = warm(&WarmInput { epoch: view.epoch, cities: warm_cities });
            headlines = out.headlines;
            tables = out.tables;
        }
        EpochSnapshot {
            epoch: view.epoch,
            final_epoch,
            accepted_rows: view.accepted,
            rows_in: view.rows_in,
            quarantined: view.quarantined,
            chunks: view.chunks,
            segments_sealed: view.segments,
            cities,
            sanitize,
            headlines,
            tables,
            artifact_hash,
            artifact_files,
        }
    }

    /// Stop ingest, freeze every stream, and hand the frozen stores to
    /// the caller (who fits/renders the final analyses). A second
    /// drain — or any ingest after this — gets a typed error.
    pub fn drain(&self) -> Result<DrainOutput, ServeError> {
        if self.drained.swap(true, Ordering::AcqRel) {
            return Err(ServeError::Draining);
        }
        let mut partitions = Vec::with_capacity(self.partitions.len());
        let mut sanitize = SanitizeReport::default();
        let mut segments = 0u64;
        let mut cities = Vec::with_capacity(self.partitions.len());
        for part in &self.partitions {
            let taken: Vec<StreamSlot> = std::mem::take(&mut *part.streams.lock());
            let mut stores = Vec::with_capacity(taken.len());
            let mut campaigns = Vec::with_capacity(taken.len());
            for mut slot in taken {
                slot.store.freeze()?;
                sanitize.merge(slot.store.report());
                segments += slot.store.num_segments() as u64;
                campaigns.push(CampaignSnapshot {
                    campaign: slot.campaign.clone(),
                    accepted_rows: slot.store.accepted_rows() as u64,
                    sealed_segments: slot.store.num_segments() as u64,
                    tail_rows: 0,
                    frozen: true,
                });
                stores.push((slot.campaign, slot.store));
            }
            cities.push(CitySnapshot {
                city: part.city.clone(),
                deterministic: part.deterministic,
                campaigns,
            });
            partitions.push(DrainedPartition {
                city: part.city.clone(),
                deterministic: part.deterministic,
                stores,
            });
        }
        self.coord.lock().segments = segments;
        *self.final_cities.lock() = Some(cities);
        Ok(DrainOutput { partitions, sanitize, segments })
    }

    /// Publish the final epoch: the drained counters plus the rendered
    /// artifacts' headline set and batch-comparable hash. Returns the
    /// final epoch index (`epoch_index(total accepted) + 1`, so the
    /// total `serve.epochs` count stays a pure function of the
    /// accepted-row sequence).
    pub fn publish_final(
        &self,
        sanitize: &SanitizeReport,
        headlines: Vec<(String, String)>,
        tables: Vec<(String, String)>,
        artifact_hash: Option<String>,
        artifact_files: u64,
    ) -> Result<u64, ServeError> {
        if !self.is_drained() {
            return Err(ServeError::Store(StoreError::NotFrozen));
        }
        let view = {
            let mut c = self.coord.lock();
            c.epoch += 1;
            *c
        };
        self.obs.inc("serve.epochs", &[]);
        let cities = self.final_cities.lock().clone().unwrap_or_default();
        let snap = EpochSnapshot {
            epoch: view.epoch,
            final_epoch: true,
            accepted_rows: view.accepted,
            rows_in: view.rows_in,
            quarantined: view.quarantined,
            chunks: view.chunks,
            segments_sealed: view.segments,
            cities,
            sanitize: sanitize.clone(),
            headlines,
            tables,
            artifact_hash,
            artifact_files,
        };
        self.publisher.publish(Arc::new(snap));
        Ok(view.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_speedtest::{Access, Measurement, Platform};

    fn m(id: u64) -> Measurement {
        Measurement {
            id,
            user_id: id,
            platform: Platform::AndroidApp,
            city: 0,
            day: (id % 300) as u16,
            hour: (id % 24) as u8,
            down_mbps: 100.0,
            up_mbps: 10.0,
            rtt_ms: 20.0,
            loaded_rtt_ms: 40.0,
            access: Access::Ethernet,
            kernel_memory_gb: Some(4.0),
            truth_tier: None,
        }
    }

    fn svc(epoch_rows: usize) -> ContextService {
        ContextService::new(
            vec![PartitionSpec::city("City-A"), PartitionSpec::wire()],
            ServeOptions { seal_rows: 8, epoch_rows, warm: None },
            Registry::new(),
        )
    }

    #[test]
    fn unknown_targets_are_typed_errors() {
        let s = svc(100);
        assert_eq!(
            s.ingest_chunk("Nowhere", "ookla", vec![m(1)]),
            Err(ServeError::UnknownCity("Nowhere".into()))
        );
        assert_eq!(
            s.ingest_chunk("City-A", "nope", vec![m(1)]),
            Err(ServeError::UnknownCampaign { city: "City-A".into(), campaign: "nope".into() })
        );
    }

    #[test]
    fn epochs_publish_at_accepted_row_boundaries() {
        let s = svc(10);
        assert_eq!(s.current_epoch().epoch, 0);
        let r = s.ingest_chunk("City-A", "ookla", (0..9).map(m).collect()).unwrap();
        assert_eq!((r.epoch, r.epochs_crossed), (0, 0));
        assert_eq!(s.current_epoch().epoch, 0);
        // One more accepted row crosses the boundary.
        let r = s.ingest_chunk("City-A", "mlab", vec![m(100)]).unwrap();
        assert_eq!((r.epoch, r.epochs_crossed), (1, 1));
        let snap = s.current_epoch();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.accepted_rows, 10);
        assert_eq!(snap.epoch, epoch_index(snap.accepted_rows, 10));
        // A quarantined row does not advance the accepted count.
        let mut bad = m(200);
        bad.down_mbps = f64::NAN;
        let r = s.ingest_chunk("City-A", "ookla", vec![bad]).unwrap();
        assert_eq!(r.stats.quarantined, 1);
        assert_eq!(s.current_epoch().epoch, 1);
    }

    #[test]
    fn wire_rows_do_not_advance_epochs_or_deterministic_counters() {
        let s = svc(5);
        s.ingest_chunk("wire", "sessions", (0..25).map(m).collect()).unwrap();
        assert_eq!(s.current_epoch().epoch, 0, "wire rows are wall-clock class");
        let snap = s.registry().snapshot_shared();
        assert!(snap.deterministic.counters.is_empty(), "no deterministic serve counters");
        assert!(snap.wall_clock.values.contains_key("serve.wire_rows{city=wire}"));
        // ... but they are visible in the partition detail of the next
        // published epoch.
        s.ingest_chunk("City-A", "ookla", (100..105).map(m).collect()).unwrap();
        let ep = s.current_epoch();
        assert_eq!(ep.epoch, 1);
        let wire = ep.cities.iter().find(|c| c.city == "wire").unwrap();
        assert_eq!(wire.campaigns[0].accepted_rows, 25);
        assert!(!wire.deterministic);
    }

    #[test]
    fn drain_freezes_once_and_ingest_after_drain_is_typed() {
        let s = svc(100);
        s.ingest_chunk("City-A", "ookla", (0..20).map(m).collect()).unwrap();
        let out = s.drain().unwrap();
        assert_eq!(out.partitions.len(), 2);
        let city = &out.partitions[0];
        assert_eq!(city.stores.len(), 3);
        assert!(city.stores.iter().all(|(_, st)| st.is_frozen()));
        assert_eq!(city.stores[0].1.accepted_rows(), 20);
        assert!(out.segments >= 4, "3 + 1 wire streams leave at least one segment each");
        // Second drain and late ingest both surface typed errors.
        assert!(matches!(s.drain(), Err(ServeError::Draining)));
        assert!(matches!(
            s.ingest_chunk("City-A", "ookla", vec![m(999)]),
            Err(ServeError::Draining)
        ));
        // publish_final increments the epoch once and flips the flag.
        let e = s
            .publish_final(
                &out.sanitize,
                vec![("h".into(), "1".into())],
                vec![],
                Some("abc".into()),
                89,
            )
            .unwrap();
        let snap = s.current_epoch();
        assert_eq!(snap.epoch, e);
        assert!(snap.final_epoch);
        assert_eq!(snap.artifact_hash.as_deref(), Some("abc"));
        assert_eq!(snap.cities[0].campaigns[0].accepted_rows, 20);
        assert!(snap.cities[0].campaigns.iter().all(|c| c.frozen));
    }

    #[test]
    fn publish_final_before_drain_is_rejected() {
        let s = svc(100);
        assert!(s.publish_final(&SanitizeReport::default(), vec![], vec![], None, 0).is_err());
    }

    #[test]
    fn warm_renderer_feeds_epoch_headlines_from_sealed_rows_only() {
        let warm: WarmRenderer = Arc::new(|input: &WarmInput| {
            let sealed: usize =
                input.cities.iter().flat_map(|c| c.campaigns.iter()).map(|(_, r)| r.len()).sum();
            WarmOutput {
                headlines: vec![("sealed rows".into(), sealed.to_string())],
                tables: vec![],
            }
        });
        let s = ContextService::new(
            vec![PartitionSpec::city("City-A")],
            ServeOptions { seal_rows: 8, epoch_rows: 10, warm: Some(warm) },
            Registry::new(),
        );
        s.ingest_chunk("City-A", "ookla", (0..12).map(m).collect()).unwrap();
        let ep = s.current_epoch();
        assert_eq!(ep.epoch, 1);
        // 12 accepted rows, seal_rows 8: exactly one sealed segment.
        assert_eq!(ep.headlines, vec![("sealed rows".to_string(), "8".to_string())]);
    }
}
