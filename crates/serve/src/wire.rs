//! Bridging wire-session results (`st_speedtest::load`) into the
//! service's measurement stream.
//!
//! A completed [`SessionReport`] carries measured download/upload
//! throughput and ping latency — enough to build a [`Measurement`]
//! that flows through the same incremental sanitize/segment path as a
//! replayed campaign row. Sessions that did not complete are dropped
//! here (they carry zeroed readings, not measurements); sessions that
//! completed with implausible readings are kept and left to the
//! sanitizer's quarantine taxonomy, which is the whole point of
//! funneling wire results through the store.
//!
//! Wire rows land in a `deterministic: false` partition
//! ([`crate::PartitionSpec::wire`]): which sessions complete depends
//! on real sockets, so their counts stay in the wall-clock metric
//! class and never advance epoch boundaries (DESIGN.md §18).

use st_speedtest::{Access, Measurement, Platform, SessionReport};

/// City code for wire rows — outside the campaign city space, so a
/// wire row can never be mistaken for a replayed one.
pub const WIRE_CITY_CODE: u8 = u8::MAX;

/// Convert the completed sessions of one load run into measurements.
/// `day`/`hour` stamp the arrival bin (the wire protocol carries no
/// timestamp of its own).
pub fn session_measurements(reports: &[SessionReport], day: u16, hour: u8) -> Vec<Measurement> {
    reports
        .iter()
        .filter(|r| r.completed)
        .map(|r| Measurement {
            id: r.session,
            user_id: r.session,
            platform: Platform::Web,
            city: WIRE_CITY_CODE,
            day,
            hour,
            down_mbps: r.down_mbps,
            up_mbps: r.up_mbps,
            rtt_ms: r.latency_ms,
            loaded_rtt_ms: r.latency_ms + r.jitter_ms,
            access: Access::Unknown,
            kernel_memory_gb: None,
            truth_tier: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_speedtest::PlannedOutcome;

    fn report(session: u64, completed: bool, down: f64) -> SessionReport {
        SessionReport {
            session,
            endpoint: 0,
            planned: PlannedOutcome::Ok,
            fault: None,
            completed,
            attempts_used: 1,
            down_mbps: down,
            up_mbps: if completed { 5.0 } else { 0.0 },
            latency_ms: if completed { 12.0 } else { 0.0 },
            jitter_ms: 1.5,
            scores: None,
            error: None,
        }
    }

    #[test]
    fn only_completed_sessions_become_measurements() {
        let reports = vec![report(1, true, 80.0), report(2, false, 0.0), report(3, true, 120.0)];
        let rows = session_measurements(&reports, 7, 13);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, 1);
        assert_eq!(rows[1].down_mbps, 120.0);
        assert!(rows.iter().all(|m| m.city == WIRE_CITY_CODE && m.day == 7 && m.hour == 13));
        assert_eq!(rows[0].loaded_rtt_ms, 13.5);
    }
}
