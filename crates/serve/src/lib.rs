#![warn(missing_docs)]
//! `st-serve` — the long-running contextualization service (ROADMAP
//! item 1, DESIGN.md §18).
//!
//! The batch pipeline answers "what did this campaign look like" once;
//! an operator needs the same contextualized analyses to stay warm
//! while measurements keep arriving. This crate turns the segmented
//! storage layer (`st_speedtest::SegmentedStore`, DESIGN.md §17) into
//! a service:
//!
//! * **Sharded ingest** ([`ContextService`]): streamed measurement
//!   chunks — replayed campaign streams or wire-session results — are
//!   routed into per-city partitions, each campaign stream its own
//!   `SegmentedStore` running sanitize/quarantine incrementally and
//!   sealing immutable segments every `seal_rows` accepted rows.
//! * **Epoch snapshots** ([`EpochSnapshot`], [`EpochPublisher`]):
//!   every `epoch_rows` accepted rows the service assembles one
//!   immutable snapshot (counters, per-city detail, sanitize taxonomy,
//!   warm headlines) and atomically swaps it in. Queries clone an
//!   `Arc` of whatever epoch is current — readers never block writers
//!   and never observe torn state.
//! * **Query API** ([`QueryServer`]): a thread-per-connection,
//!   line-delimited JSON protocol (`status`, `city`, `headline`,
//!   `quarantine`, `epoch`, `shutdown`), every command answered from
//!   one epoch snapshot.
//!
//! The crate deliberately depends only on `st-speedtest` and `st-obs`:
//! warm analyses are injected as a [`WarmRenderer`] closure and the
//! final fit/render after [`ContextService::drain`] belongs to the
//! caller (the `serve` binary in `st-bench`), which is how the
//! serve-identity suite proves the drained stores reproduce the batch
//! golden artifacts byte for byte.

pub mod epoch;
pub mod query;
pub mod service;
pub mod wire;

pub use epoch::{
    epoch_index, epochs_crossed, CampaignSnapshot, CitySnapshot, EpochPublisher, EpochSnapshot,
};
pub use query::{dispatch, query_once, QueryServer};
pub use service::{
    ContextService, DrainOutput, DrainedPartition, IngestReceipt, PartitionSpec, ServeError,
    ServeOptions, WarmCity, WarmInput, WarmOutput, WarmRenderer, DEFAULT_EPOCH_ROWS,
};
pub use wire::{session_measurements, WIRE_CITY_CODE};
