//! ASCII rendering for logs and EXPERIMENTS.md.

use crate::series::Series;

/// Render one or more CDF series as a fixed-size ASCII grid.
///
/// Each series gets a distinct glyph; overlapping cells keep the first
/// series' glyph. The x-axis spans the combined bounds.
pub fn ascii_cdf(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "grid too small to be legible");
    let Some((x0, x1, _, _)) = Series::bounds_of(series) else {
        return String::from("(no data)\n");
    };
    let x1 = if x1 > x0 { x1 } else { x0 + 1.0 };
    let glyphs = ['*', '+', 'o', 'x', '#', '@', '%', '~'];

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        #[allow(clippy::needless_range_loop)] // grid is indexed [row][col]
        for col in 0..width {
            let x = x0 + (x1 - x0) * col as f64 / (width - 1) as f64;
            if let Some(y) = s.step_at(x) {
                let y = y.clamp(0.0, 1.0);
                let row = ((1.0 - y) * (height - 1) as f64).round() as usize;
                if grid[row][col] == ' ' {
                    grid[row][col] = glyph;
                }
            }
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y = 1.0 - r as f64 / (height - 1) as f64;
        out.push_str(&format!("{y:4.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("     +{}\n", "-".repeat(width)));
    out.push_str(&format!("      {:<12.4}{:>width$.4}\n", x0, x1, width = width - 12));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("      {} {}\n", glyphs[si % glyphs.len()], s.label));
    }
    out
}

/// Render one or more density/line series as an ASCII grid: like
/// [`ascii_cdf`] but y spans the data range rather than `[0, 1]`, with
/// linear interpolation between points.
pub fn ascii_lines(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "grid too small to be legible");
    let Some((x0, x1, _, y1)) = Series::bounds_of(series) else {
        return String::from("(no data)\n");
    };
    let x1 = if x1 > x0 { x1 } else { x0 + 1.0 };
    let y1 = if y1 > 0.0 { y1 } else { 1.0 };
    let glyphs = ['*', '+', 'o', 'x', '#', '@', '%', '~'];

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        if s.points.len() < 2 {
            continue;
        }
        #[allow(clippy::needless_range_loop)] // grid is indexed [row][col]
        for col in 0..width {
            let x = x0 + (x1 - x0) * col as f64 / (width - 1) as f64;
            // Linear interpolation between the bracketing points.
            let mut y = None;
            for w in s.points.windows(2) {
                let ((xa, ya), (xb, yb)) = (w[0], w[1]);
                if xa <= x && x <= xb && xb > xa {
                    y = Some(ya + (yb - ya) * (x - xa) / (xb - xa));
                    break;
                }
            }
            if let Some(y) = y {
                let frac = (y / y1).clamp(0.0, 1.0);
                let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
                if grid[row][col] == ' ' {
                    grid[row][col] = glyph;
                }
            }
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let frac = 1.0 - r as f64 / (height - 1) as f64;
        out.push_str(&format!("{:9.3} |", frac * y1));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("          +{}\n", "-".repeat(width)));
    out.push_str(&format!("           {:<12.3}{:>width$.3}\n", x0, x1, width = width - 12));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("           {} {}\n", glyphs[si % glyphs.len()], s.label));
    }
    out
}

/// Render rows as a fixed-width text table with a header rule.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    assert!(!headers.is_empty(), "table needs headers");
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.len(), headers.len(), "row {i} width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<width$} |", c, width = widths[i]));
        }
        line.push('\n');
        line
    };
    let mut out = render_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let mut rule = String::from("|");
    for w in &widths {
        rule.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    rule.push('\n');
    out.push_str(&rule);
    for r in rows {
        out.push_str(&render_row(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_plot_contains_curve_and_legend() {
        let s = Series::new("down", vec![(0.0, 0.0), (50.0, 0.5), (100.0, 1.0)]);
        let plot = ascii_cdf(&[s], 40, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains("down"));
        assert!(plot.contains("1.00 |"));
        assert!(plot.contains("0.00 |"));
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let a = Series::new("a", vec![(0.0, 0.1), (1.0, 0.9)]);
        let b = Series::new("b", vec![(0.0, 0.5), (1.0, 0.6)]);
        let plot = ascii_cdf(&[a, b], 30, 8);
        assert!(plot.contains('*') && plot.contains('+'));
    }

    #[test]
    fn empty_series_produces_placeholder() {
        assert_eq!(ascii_cdf(&[], 30, 8), "(no data)\n");
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grid_rejected() {
        let _ = ascii_cdf(&[], 4, 2);
    }

    #[test]
    fn line_plot_renders_a_peak() {
        let s = Series::new("density", vec![(0.0, 0.0), (5.0, 1.0), (10.0, 0.0)]);
        let plot = ascii_lines(&[s], 40, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains("density"));
        // The top row (max density) is hit near the middle.
        let first_line = plot.lines().next().unwrap();
        assert!(first_line.contains('*'), "peak should touch the top row: {first_line}");
    }

    #[test]
    fn line_plot_empty_is_placeholder() {
        assert_eq!(ascii_lines(&[], 30, 8), "(no data)\n");
    }

    #[test]
    fn table_alignment_and_rule() {
        let t = ascii_table(
            &["State", "ISP", "Accuracy"],
            &[
                vec!["A".into(), "1".into(), "99.33%".into()],
                vec!["B".into(), "2".into(), "98.19%".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("State") && lines[0].contains("Accuracy"));
        assert!(lines[1].starts_with("|--"));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_table_rejected() {
        let _ = ascii_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
