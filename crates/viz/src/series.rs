//! Labelled point series — the common currency between analyses and
//! renderers.

/// One labelled line of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points }
    }

    /// Whether the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `(min_x, max_x, min_y, max_y)` over the series, skipping non-finite
    /// points; `None` if nothing finite remains.
    pub fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut b: Option<(f64, f64, f64, f64)> = None;
        for &(x, y) in &self.points {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            b = Some(match b {
                None => (x, x, y, y),
                Some((x0, x1, y0, y1)) => (x0.min(x), x1.max(x), y0.min(y), y1.max(y)),
            });
        }
        b
    }

    /// Combined bounds over several series.
    pub fn bounds_of(series: &[Series]) -> Option<(f64, f64, f64, f64)> {
        series
            .iter()
            .filter_map(|s| s.bounds())
            .reduce(|a, b| (a.0.min(b.0), a.1.max(b.1), a.2.min(b.2), a.3.max(b.3)))
    }

    /// The y value at the largest x not exceeding `x` (step
    /// interpolation), or `None` before the first point.
    pub fn step_at(&self, x: f64) -> Option<f64> {
        let mut best: Option<(f64, f64)> = None;
        for &(px, py) in &self.points {
            if px <= x && best.is_none_or(|(bx, _)| px >= bx) {
                best = Some((px, py));
            }
        }
        best.map(|(_, y)| y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_of_single_series() {
        let s = Series::new("a", vec![(0.0, 1.0), (2.0, -1.0), (1.0, 5.0)]);
        assert_eq!(s.bounds(), Some((0.0, 2.0, -1.0, 5.0)));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn bounds_skip_non_finite() {
        let s = Series::new("a", vec![(f64::NAN, 1.0), (1.0, 2.0)]);
        assert_eq!(s.bounds(), Some((1.0, 1.0, 2.0, 2.0)));
        let empty = Series::new("e", vec![(f64::NAN, f64::NAN)]);
        assert_eq!(empty.bounds(), None);
    }

    #[test]
    fn combined_bounds() {
        let a = Series::new("a", vec![(0.0, 0.0)]);
        let b = Series::new("b", vec![(5.0, -2.0)]);
        assert_eq!(Series::bounds_of(&[a, b]), Some((0.0, 5.0, -2.0, 0.0)));
        assert_eq!(Series::bounds_of(&[]), None);
    }

    #[test]
    fn step_interpolation() {
        let s = Series::new("a", vec![(1.0, 0.25), (2.0, 0.5), (4.0, 1.0)]);
        assert_eq!(s.step_at(0.5), None);
        assert_eq!(s.step_at(1.0), Some(0.25));
        assert_eq!(s.step_at(3.0), Some(0.5));
        assert_eq!(s.step_at(9.0), Some(1.0));
    }
}
