//! Minimal SVG chart rendering.
//!
//! Produces self-contained SVG documents: line charts (CDFs, densities)
//! and grouped bar charts (the Fig. 11 time-of-day histogram). The output
//! is plain text, deterministic, and viewable in any browser.

use crate::series::Series;
use std::fmt::Write as _;

/// Chart geometry and labels.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgConfig {
    /// Total width, px.
    pub width: u32,
    /// Total height, px.
    pub height: u32,
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
}

impl Default for SvgConfig {
    fn default() -> Self {
        SvgConfig {
            width: 640,
            height: 420,
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
        }
    }
}

impl SvgConfig {
    /// Config with title and axis labels.
    pub fn titled(title: &str, x_label: &str, y_label: &str) -> Self {
        SvgConfig {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            ..Default::default()
        }
    }
}

const MARGIN_L: f64 = 60.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;
const PALETTE: [&str; 8] =
    ["#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn axis_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    // NaN or a degenerate range both collapse to a single tick.
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return vec![lo];
    }
    (0..=n).map(|i| lo + (hi - lo) * i as f64 / n as f64).collect()
}

/// Render a multi-series line chart (CDFs, KDE densities).
pub fn svg_lines(series: &[Series], cfg: &SvgConfig) -> String {
    let (x0, x1, y0, y1) = Series::bounds_of(series).unwrap_or((0.0, 1.0, 0.0, 1.0));
    let (x1, y1) = (if x1 > x0 { x1 } else { x0 + 1.0 }, if y1 > y0 { y1 } else { y0 + 1.0 });

    let w = cfg.width as f64;
    let h = cfg.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let sx = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
    let sy = |y: f64| MARGIN_T + plot_h - (y - y0) / (y1 - y0) * plot_h;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        cfg.width, cfg.height, cfg.width, cfg.height
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    let _ = writeln!(
        out,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="15" font-family="sans-serif">{}</text>"#,
        w / 2.0,
        esc(&cfg.title)
    );

    // Axes and ticks.
    let _ = writeln!(
        out,
        r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h,
        MARGIN_L + plot_w,
        MARGIN_T + plot_h
    );
    let _ = writeln!(
        out,
        r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h
    );
    for t in axis_ticks(x0, x1, 5) {
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="11" font-family="sans-serif">{:.4}</text>"#,
            sx(t),
            MARGIN_T + plot_h + 16.0,
            t
        );
    }
    for t in axis_ticks(y0, y1, 5) {
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" font-size="11" font-family="sans-serif">{:.4}</text>"#,
            MARGIN_L - 6.0,
            sy(t) + 4.0,
            t
        );
        let _ = writeln!(
            out,
            r##"<line x1="{MARGIN_L}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#dddddd"/>"##,
            sy(t),
            MARGIN_L + plot_w,
            sy(t)
        );
    }
    let _ = writeln!(
        out,
        r#"<text x="{}" y="{}" text-anchor="middle" font-size="12" font-family="sans-serif">{}</text>"#,
        w / 2.0,
        h - 10.0,
        esc(&cfg.x_label)
    );
    let _ = writeln!(
        out,
        r#"<text x="14" y="{}" text-anchor="middle" font-size="12" font-family="sans-serif" transform="rotate(-90 14 {})">{}</text>"#,
        h / 2.0,
        h / 2.0,
        esc(&cfg.y_label)
    );

    // Series polylines + legend.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let pts: Vec<String> = s
            .points
            .iter()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y)))
            .collect();
        if !pts.is_empty() {
            let _ = writeln!(
                out,
                r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="1.8"/>"#,
                pts.join(" "),
                color
            );
        }
        let ly = MARGIN_T + 14.0 * i as f64 + 6.0;
        let _ = writeln!(
            out,
            r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{}" stroke-width="2"/>"#,
            MARGIN_L + plot_w - 130.0,
            MARGIN_L + plot_w - 110.0,
            color
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" font-family="sans-serif">{}</text>"#,
            MARGIN_L + plot_w - 105.0,
            ly + 4.0,
            esc(&s.label)
        );
    }

    out.push_str("</svg>\n");
    out
}

/// Render a grouped bar chart: `groups` label the x clusters, each series
/// contributes one bar per group (series point order must match groups).
pub fn svg_bars(groups: &[&str], series: &[Series], cfg: &SvgConfig) -> String {
    assert!(
        series.iter().all(|s| s.points.len() == groups.len()),
        "each series needs one value per group"
    );
    let max_y =
        series.iter().flat_map(|s| s.points.iter().map(|p| p.1)).fold(0.0f64, f64::max).max(1e-9);

    let w = cfg.width as f64;
    let h = cfg.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let group_w = plot_w / groups.len().max(1) as f64;
    let bar_w = (group_w * 0.8) / series.len().max(1) as f64;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        cfg.width, cfg.height, cfg.width, cfg.height
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    let _ = writeln!(
        out,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="15" font-family="sans-serif">{}</text>"#,
        w / 2.0,
        esc(&cfg.title)
    );

    for (g, gname) in groups.iter().enumerate() {
        for (i, s) in series.iter().enumerate() {
            let v = s.points[g].1.max(0.0);
            let bh = v / max_y * plot_h;
            let x = MARGIN_L + g as f64 * group_w + group_w * 0.1 + i as f64 * bar_w;
            let y = MARGIN_T + plot_h - bh;
            let _ = writeln!(
                out,
                r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{}"/>"#,
                x,
                y,
                bar_w * 0.92,
                bh,
                PALETTE[i % PALETTE.len()]
            );
        }
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="11" font-family="sans-serif">{}</text>"#,
            MARGIN_L + g as f64 * group_w + group_w / 2.0,
            MARGIN_T + plot_h + 16.0,
            esc(gname)
        );
    }

    for (i, s) in series.iter().enumerate() {
        let ly = MARGIN_T + 14.0 * i as f64 + 6.0;
        let _ = writeln!(
            out,
            r#"<rect x="{:.1}" y="{:.1}" width="10" height="10" fill="{}"/>"#,
            MARGIN_L + plot_w - 130.0,
            ly - 8.0,
            PALETTE[i % PALETTE.len()]
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" font-family="sans-serif">{}</text>"#,
            MARGIN_L + plot_w - 115.0,
            ly + 1.0,
            esc(&s.label)
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_contains_all_series() {
        let series = vec![
            Series::new("down", vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]),
            Series::new("up", vec![(0.0, 0.2), (2.0, 0.9)]),
        ];
        let svg = svg_lines(&series, &SvgConfig::titled("CDF", "Mbps", "Fraction"));
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("down") && svg.contains("up"));
        assert!(svg.contains("CDF") && svg.contains("Mbps"));
    }

    #[test]
    fn line_chart_handles_empty_input() {
        let svg = svg_lines(&[], &SvgConfig::default());
        assert!(svg.contains("<svg") && svg.contains("</svg>"));
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let series = vec![Series::new("a", vec![(0.0, 0.0), (f64::NAN, 0.5), (1.0, 1.0)])];
        let svg = svg_lines(&series, &SvgConfig::default());
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn labels_are_escaped() {
        let series = vec![Series::new("a<b>&c", vec![(0.0, 0.0)])];
        let svg = svg_lines(&series, &SvgConfig::titled("t<&>", "x", "y"));
        assert!(svg.contains("a&lt;b&gt;&amp;c"));
        assert!(svg.contains("t&lt;&amp;&gt;"));
    }

    #[test]
    fn bar_chart_draws_one_rect_per_value() {
        let groups = ["00-06", "06-12", "12-18", "18-24"];
        let series = vec![
            Series::new("Tier 1-3", vec![(0.0, 10.0), (1.0, 20.0), (2.0, 35.0), (3.0, 35.0)]),
            Series::new("Tier 4", vec![(0.0, 12.0), (1.0, 22.0), (2.0, 33.0), (3.0, 33.0)]),
        ];
        let svg = svg_bars(&groups, &series, &SvgConfig::titled("Fig 11", "", "%"));
        // 8 bars + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 8 + 2 + 1 /* background */);
        for g in groups {
            assert!(svg.contains(g));
        }
    }

    #[test]
    #[should_panic(expected = "one value per group")]
    fn bar_chart_validates_lengths() {
        let _ = svg_bars(&["a", "b"], &[Series::new("s", vec![(0.0, 1.0)])], &SvgConfig::default());
    }
}
