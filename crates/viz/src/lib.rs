#![warn(missing_docs)]
//! Figure rendering for the experiment harness.
//!
//! Every figure in the paper is either a CDF, a density curve, or a bar
//! chart. This crate renders all three as standalone SVG files (for the
//! `repro` binary's output directory) and as terminal-friendly ASCII
//! (for logs and EXPERIMENTS.md snippets). No external plotting stack is
//! required.

pub mod ascii;
pub mod series;
pub mod svg;

pub use ascii::{ascii_cdf, ascii_lines, ascii_table};
pub use series::Series;
pub use svg::{svg_bars, svg_lines, SvgConfig};
