//! The console's state: a plain data snapshot of everything the
//! renderer draws, split along the two-class metric taxonomy
//! (DESIGN.md §13). Fields that derive from deterministic counters or
//! ledger rows feed the `D` pane (byte-identical at every parallelism
//! level); fields that derive from the environment — addresses,
//! uptimes, the parallelism knob itself — feed the `W` pane and are
//! excluded from every determinism contract.
//!
//! The state does no I/O and no formatting: feeds produce
//! [`crate::Event`]s, the [`crate::Controller`] folds them in here, and
//! the [`crate::Renderer`] reads the result. That strict split is what
//! makes the whole UI testable headless.

/// Identity of the run being observed, as recorded in its ledger row.
/// Every field is deterministic for a given (code, scale, seed) tuple
/// except `parallelism`, which is informational (the determinism
/// contract says nothing downstream may depend on it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunIdentity {
    /// Ledger row schema tag ("st-ledger/v1", "st-serve/v1", ...).
    pub schema: String,
    /// The run's `--scale`.
    pub scale: f64,
    /// The run's `--seed`.
    pub seed: u64,
    /// The run's `--parallelism` (wall-clock pane only).
    pub parallelism: u64,
    /// FNV-1a artifact-set hash, 16 hex digits.
    pub artifact_hash: String,
    /// Files under the artifact hash.
    pub artifact_files: u64,
}

/// One observed epoch crossing (one row of the `watch` feed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochPoint {
    /// Epoch index at the crossing.
    pub epoch: u64,
    /// Whether this is the post-drain final epoch.
    pub final_epoch: bool,
    /// Accepted rows at the crossing.
    pub accepted_rows: u64,
    /// Sealed segments at the crossing.
    pub segments_sealed: u64,
    /// `serve.rows{outcome=clean}` increment since the previous row.
    pub clean_delta: u64,
    /// `serve.rows{outcome=repaired}` increment since the previous row.
    pub repaired_delta: u64,
    /// `serve.rows{outcome=quarantined}` increment since the previous
    /// row.
    pub quarantined_delta: u64,
}

/// Everything the renderer draws. `Default` is the blank console: no
/// feeds attached, nothing observed yet.
#[derive(Debug, Clone, Default)]
pub struct ConsoleState {
    // ---- deterministic pane inputs ----
    /// The run identity from the newest ledger row seen.
    pub run: Option<RunIdentity>,
    /// Batch-comparable ledger rows seen so far.
    pub ledger_rows: u64,
    /// Current epoch index.
    pub epoch: u64,
    /// Whether the final epoch has been published.
    pub final_epoch: bool,
    /// Whether the live feed has ended (final row seen).
    pub feed_done: bool,
    /// Accepted rows in the current epoch snapshot.
    pub accepted_rows: u64,
    /// Rows offered to the sanitizer.
    pub rows_in: u64,
    /// Rows quarantined.
    pub quarantined: u64,
    /// Chunks ingested.
    pub chunks: u64,
    /// Segments sealed.
    pub segments_sealed: u64,
    /// Epochs published (`serve.epochs` counter).
    pub epochs_published: u64,
    /// Per-city accepted rows, in server order.
    pub cities: Vec<(String, u64)>,
    /// Sanitizer outcome totals from the deterministic counters:
    /// `(clean, repaired, quarantined)`. Two monotone sources agree on
    /// this — `metrics` polls carry totals, watch rows carry deltas
    /// that sum to the same totals — so both fold in via `max`, never
    /// by adding one source on top of the other.
    pub outcomes: (u64, u64, u64),
    /// Running sums of the watch-row deltas (the watch feed's own
    /// reconstruction of the outcome totals).
    pub watch_totals: (u64, u64, u64),
    /// Epoch timeline, oldest first, strictly increasing epoch index.
    pub timeline: Vec<EpochPoint>,
    /// Drift flags vs the baseline, empty when clean. `None` means no
    /// baseline was given (the drift panel reads "no baseline").
    pub drift: Option<Vec<String>>,

    // ---- wall-clock pane inputs ----
    /// Server address the live feed is attached to.
    pub connected: Option<String>,
    /// Ledger file being tailed.
    pub ledger_path: Option<String>,
    /// Server uptime as of the last status poll, seconds.
    pub uptime_s: f64,
    /// Frames rendered so far (advanced by `Event::Tick`).
    pub ticks: u64,
    /// Environmental notes: feed errors, reconnects. Never drift.
    pub notes: Vec<String>,
}

impl ConsoleState {
    /// Record one watch row, keeping the timeline strictly monotone:
    /// replays or reconnect overlaps are dropped, never duplicated.
    pub fn push_point(&mut self, p: EpochPoint) {
        // A row is stale unless it advances the epoch, or finalizes
        // the epoch we are already on.
        if self.timeline.last().is_some_and(|last| {
            p.epoch < last.epoch || (p.epoch == last.epoch && (last.final_epoch || !p.final_epoch))
        }) {
            return;
        }
        self.epoch = p.epoch;
        self.final_epoch = p.final_epoch;
        self.accepted_rows = p.accepted_rows;
        self.segments_sealed = p.segments_sealed;
        self.watch_totals.0 += p.clean_delta;
        self.watch_totals.1 += p.repaired_delta;
        self.watch_totals.2 += p.quarantined_delta;
        self.outcomes.0 = self.outcomes.0.max(self.watch_totals.0);
        self.outcomes.1 = self.outcomes.1.max(self.watch_totals.1);
        self.outcomes.2 = self.outcomes.2.max(self.watch_totals.2);
        if p.final_epoch {
            self.feed_done = true;
        }
        self.timeline.push(p);
    }

    /// The per-epoch accepted-row increments, the sparkline's input —
    /// a pure function of the deterministic watch counters.
    pub fn throughput_buckets(&self) -> Vec<u64> {
        self.timeline.iter().map(|p| p.clean_delta + p.repaired_delta).collect()
    }

    /// The coarse stage this run is in, derived from observed state
    /// only: attaching, ingesting, or final.
    pub fn stage(&self) -> &'static str {
        if self.final_epoch {
            "final"
        } else if self.accepted_rows > 0 || self.epoch > 0 {
            "ingesting"
        } else if self.connected.is_some() || self.ledger_rows > 0 {
            "attached"
        } else {
            "waiting"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(epoch: u64, accepted: u64) -> EpochPoint {
        EpochPoint { epoch, accepted_rows: accepted, clean_delta: accepted, ..Default::default() }
    }

    #[test]
    fn timeline_stays_monotone_under_replays() {
        let mut s = ConsoleState::default();
        s.push_point(p(0, 0));
        s.push_point(p(1, 64));
        s.push_point(p(1, 64)); // reconnect overlap: dropped
        s.push_point(p(0, 0)); // stale replay: dropped
        s.push_point(p(2, 128));
        let epochs: Vec<u64> = s.timeline.iter().map(|x| x.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2]);
        assert_eq!(s.epoch, 2);
        // A final row at the same index supersedes the warm one.
        let mut fin = p(2, 130);
        fin.final_epoch = true;
        s.push_point(fin);
        assert!(s.final_epoch && s.feed_done);
        assert_eq!(s.timeline.len(), 4);
    }

    #[test]
    fn stage_tracks_observed_progress() {
        let mut s = ConsoleState::default();
        assert_eq!(s.stage(), "waiting");
        s.connected = Some("127.0.0.1:1".into());
        assert_eq!(s.stage(), "attached");
        s.push_point(p(1, 64));
        assert_eq!(s.stage(), "ingesting");
        let mut fin = p(2, 128);
        fin.final_epoch = true;
        s.push_point(fin);
        assert_eq!(s.stage(), "final");
    }
}
