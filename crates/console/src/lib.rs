//! st-console: a terminal operator console over the speedtest-context
//! ledger / metrics / serve surface.
//!
//! The crate is a strict three-way split:
//!
//! * **feeds** ([`feed`]) do I/O: a one-shot [`QueryClient`] for the
//!   `status` and `metrics` verbs and a streaming [`WatchFeed`] for
//!   the `watch` verb, both speaking line-delimited JSON to the
//!   st-serve query socket. Feeds emit plain-data [`Event`]s.
//! * **the controller** ([`controller`]) folds events into
//!   [`ConsoleState`] — the only place state mutates.
//! * **the renderer** ([`render`]) is a pure function from state to a
//!   fixed-width plain-text [`Frame`] whose lines are classed
//!   [`PaneClass::Deterministic`] or [`PaneClass::WallClock`],
//!   mirroring the repo's two-class metric taxonomy (DESIGN.md §13).
//!
//! Because the renderer reads no clock and the deterministic pane is a
//! pure function of deterministic inputs, frames rendered against two
//! runs of the same (scale, seed) at different parallelism levels are
//! byte-identical line-for-line on the `D|` prefix — which is exactly
//! what CI asserts. [`run_headless`] renders a fixed number of frames
//! to any writer and exits, so the full console is exercised in tests
//! and CI with no terminal attached.

#![warn(missing_docs)]

pub mod controller;
pub mod feed;
pub mod render;
pub mod state;

pub use controller::{Controller, Event};
pub use feed::{metrics_event, status_event, watch_event, QueryClient, WatchFeed};
pub use render::{sparkline, Frame, PaneClass, Renderer, DEFAULT_WIDTH};
pub use state::{ConsoleState, EpochPoint, RunIdentity};

use std::io::{self, Write};

/// Drive the console headless: for each of `frames` frames, let
/// `poll` push pending feed events into the controller, advance the
/// tick counter, render, and write the frame text followed by a blank
/// separator line to `out`.
///
/// The frame index passed to the renderer is ordinal (1-based), never
/// a clock, so the output for a given event sequence is reproducible
/// byte-for-byte.
pub fn run_headless<W: Write>(
    controller: &mut Controller,
    renderer: &Renderer,
    frames: u64,
    mut poll: impl FnMut(&mut Controller),
    out: &mut W,
) -> io::Result<()> {
    for idx in 1..=frames {
        poll(controller);
        controller.apply(Event::Tick);
        out.write_all(renderer.render(&controller.state, idx).to_text().as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()
}
