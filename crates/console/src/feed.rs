//! Feeds: adapters from the st-serve query socket to [`Event`]s.
//!
//! Two shapes, matching the two query modes (DESIGN.md §18):
//!
//! * [`QueryClient`] — one request/response line per call, used for
//!   the `status` and `metrics` polls.
//! * [`WatchFeed`] — holds a connection open on the `watch` verb and
//!   forwards one event per epoch crossing through a channel; the
//!   controller drains it at frame boundaries.
//!
//! Everything here parses line-delimited JSON through
//! `serde_json::Value` — the console deliberately has no compile-time
//! dependency on st-serve or st-obs, so the wire format is the only
//! contract, same as for any external operator tooling.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::Duration;

use serde_json::Value;

use crate::controller::Event;
use crate::state::EpochPoint;

/// One-shot request/response client for the query socket.
#[derive(Debug, Clone)]
pub struct QueryClient {
    addr: String,
    timeout: Duration,
}

impl QueryClient {
    /// A client for `addr` (e.g. `127.0.0.1:4422`); every call opens a
    /// fresh connection and applies `timeout` to reads.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Self {
        Self { addr: addr.into(), timeout }
    }

    /// The address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Send one JSON request line and parse the one response line.
    pub fn query(&self, request: &str) -> Result<Value, String> {
        let stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream.set_read_timeout(Some(self.timeout)).map_err(|e| e.to_string())?;
        stream.set_write_timeout(Some(self.timeout)).map_err(|e| e.to_string())?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        writer
            .write_all(format!("{request}\n").as_bytes())
            .map_err(|e| format!("send to {}: {e}", self.addr))?;
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .map_err(|e| format!("read from {}: {e}", self.addr))?;
        serde_json::from_str(line.trim()).map_err(|e| format!("bad response JSON: {e:?}"))
    }

    /// Poll `status` and translate the answer into an event.
    pub fn status(&self) -> Result<Event, String> {
        status_event(&self.query("{\"cmd\":\"status\"}")?)
    }

    /// Poll `metrics` and translate the answer into an event.
    pub fn metrics(&self) -> Result<Event, String> {
        metrics_event(&self.query("{\"cmd\":\"metrics\"}")?)
    }
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing field {key}"))
}

fn check_ok(v: &Value) -> Result<(), String> {
    if v.get("ok").and_then(Value::as_bool) == Some(true) {
        Ok(())
    } else {
        let detail = v.get("detail").and_then(Value::as_str).unwrap_or("no detail").to_string();
        Err(format!("server error: {detail}"))
    }
}

/// Translate a `status` response into [`Event::Status`].
pub fn status_event(v: &Value) -> Result<Event, String> {
    check_ok(v)?;
    let cities = match v.get("cities").and_then(Value::as_array) {
        Some(rows) => rows
            .iter()
            .map(|c| {
                let name = c
                    .get("city")
                    .and_then(Value::as_str)
                    .ok_or("city row missing name")?
                    .to_string();
                Ok((name, get_u64(c, "accepted_rows")?))
            })
            .collect::<Result<Vec<_>, String>>()?,
        None => Vec::new(),
    };
    Ok(Event::Status {
        epoch: get_u64(v, "epoch")?,
        final_epoch: v.get("final_epoch").and_then(Value::as_bool).unwrap_or(false),
        accepted_rows: get_u64(v, "accepted_rows")?,
        rows_in: get_u64(v, "rows_in").unwrap_or(0),
        quarantined: get_u64(v, "quarantined").unwrap_or(0),
        chunks: get_u64(v, "chunks").unwrap_or(0),
        segments_sealed: get_u64(v, "segments_sealed").unwrap_or(0),
        epochs_published: get_u64(v, "epochs_published").unwrap_or(0),
        uptime_s: v.get("uptime_s").and_then(Value::as_f64).unwrap_or(0.0),
        cities,
    })
}

/// Translate a `metrics` response into [`Event::Metrics`], reading the
/// sanitizer outcome counters out of the embedded snapshot.
pub fn metrics_event(v: &Value) -> Result<Event, String> {
    check_ok(v)?;
    let counters = v
        .get("snapshot")
        .and_then(|s| s.get("deterministic"))
        .and_then(|d| d.get("counters"))
        .ok_or("metrics response missing deterministic counters")?;
    let outcome = |name: &str| {
        counters.get(&format!("serve.rows{{outcome={name}}}")).and_then(Value::as_u64).unwrap_or(0)
    };
    Ok(Event::Metrics {
        clean: outcome("clean"),
        repaired: outcome("repaired"),
        quarantined: outcome("quarantined"),
    })
}

/// Translate one `watch` row into [`Event::Watch`].
pub fn watch_event(v: &Value) -> Result<Event, String> {
    check_ok(v)?;
    let counters = v.get("counters");
    let delta = |name: &str| {
        counters
            .and_then(|c| c.get(&format!("serve.rows{{outcome={name}}}")))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    Ok(Event::Watch(EpochPoint {
        epoch: get_u64(v, "epoch")?,
        final_epoch: v.get("final_epoch").and_then(Value::as_bool).unwrap_or(false),
        accepted_rows: get_u64(v, "accepted_rows")?,
        segments_sealed: get_u64(v, "segments_sealed").unwrap_or(0),
        clean_delta: delta("clean"),
        repaired_delta: delta("repaired"),
        quarantined_delta: delta("quarantined"),
    }))
}

/// A live `watch` subscription: a background reader pushing one
/// [`Event`] per received row into a channel. The reader stops after
/// the final-epoch row, on EOF, or once the feed is dropped.
#[derive(Debug)]
pub struct WatchFeed {
    rx: Receiver<Event>,
    alive: Arc<AtomicBool>,
}

impl Drop for WatchFeed {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::Release);
    }
}

impl WatchFeed {
    /// Connect to `addr`, send the `watch` command, read the base row
    /// synchronously, and start the background reader for the rest.
    ///
    /// The server emits the base row (current epoch, counter totals)
    /// immediately on subscription; reading it before returning makes
    /// attachment deterministic — the first `drain` always carries the
    /// base row, so the first rendered frame never races the wire.
    pub fn connect(addr: &str, timeout: Duration) -> Result<WatchFeed, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        // Short read timeouts let the reader notice a dropped feed
        // (send fails) instead of blocking forever on a quiet server.
        stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        writer.write_all(b"{\"cmd\":\"watch\"}\n").map_err(|e| format!("send to {addr}: {e}"))?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("watch base row from {addr}: {e}"))?;
        let base = serde_json::from_str(line.trim())
            .map_err(|e| format!("bad watch JSON: {e:?}"))
            .and_then(|v: Value| watch_event(&v))?;
        let base_final = matches!(&base, Event::Watch(p) if p.final_epoch);
        let (tx, rx) = channel();
        tx.send(base).expect("receiver alive");
        let alive = Arc::new(AtomicBool::new(true));
        let alive_reader = Arc::clone(&alive);
        std::thread::spawn(move || {
            if base_final {
                return; // the base row already ended the feed
            }
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) => break, // server closed the stream
                    Ok(_) => {
                        let event = serde_json::from_str(line.trim())
                            .map_err(|e| format!("bad watch JSON: {e:?}"))
                            .and_then(|v: Value| watch_event(&v));
                        let done = matches!(
                            &event,
                            Ok(Event::Watch(p)) if p.final_epoch
                        );
                        let event = event.unwrap_or_else(|e| Event::Note(format!("watch: {e}")));
                        if tx.send(event).is_err() || done {
                            break;
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        // Quiet server: keep waiting unless the feed
                        // handle was dropped.
                        if !alive_reader.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Event::Note(format!("watch: read error: {e}")));
                        break;
                    }
                }
            }
        });
        Ok(WatchFeed { rx, alive })
    }

    /// Drain every event received since the last drain.
    pub fn drain(&self) -> Vec<Event> {
        self.rx.try_iter().collect()
    }
}
