//! The controller: folds feed [`Event`]s into [`ConsoleState`].
//!
//! This is the only place state mutates. Feeds (the st-serve query
//! socket, the ledger tail) translate their wire formats into events;
//! the renderer reads the resulting state. Because events are plain
//! data, the whole pipeline replays deterministically in tests: the
//! same event sequence always yields the same state, and therefore the
//! same deterministic pane bytes.

use crate::state::{ConsoleState, EpochPoint, RunIdentity};

/// One observation from a feed. Every event is plain data — no
/// handles, no clocks — so sequences can be recorded and replayed.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The live feed attached to a server (wall-clock pane: the
    /// address is environmental).
    Connected {
        /// Address of the st-serve query listener.
        addr: String,
    },
    /// The ledger tail attached to a file (wall-clock pane).
    LedgerAttached {
        /// Path of the ledger being tailed.
        path: String,
    },
    /// A `status` poll answered.
    Status {
        /// Current epoch index.
        epoch: u64,
        /// Whether the final epoch has been published.
        final_epoch: bool,
        /// Accepted rows in the published epoch.
        accepted_rows: u64,
        /// Rows offered to the sanitizer.
        rows_in: u64,
        /// Rows quarantined.
        quarantined: u64,
        /// Chunks ingested.
        chunks: u64,
        /// Segments sealed.
        segments_sealed: u64,
        /// Epochs published so far.
        epochs_published: u64,
        /// Server uptime in seconds (wall-clock pane).
        uptime_s: f64,
        /// Per-city accepted rows, in server order.
        cities: Vec<(String, u64)>,
    },
    /// A `metrics` poll answered; carries the sanitizer outcome totals
    /// `(clean, repaired, quarantined)` from the deterministic
    /// counters.
    Metrics {
        /// `serve.rows{outcome=clean}` total.
        clean: u64,
        /// `serve.rows{outcome=repaired}` total.
        repaired: u64,
        /// `serve.rows{outcome=quarantined}` total.
        quarantined: u64,
    },
    /// One row of the `watch` feed: an epoch crossing.
    Watch(EpochPoint),
    /// A batch-comparable ledger row was tailed.
    Ledger(RunIdentity),
    /// Drift flags from comparing the newest ledger row against the
    /// baseline. An empty list is a clean comparison (and clears any
    /// earlier flags from a stale row).
    Drift(Vec<String>),
    /// An environmental note — feed error, reconnect — for the
    /// wall-clock pane. Never treated as drift.
    Note(String),
    /// A frame boundary; advances the frame counter.
    Tick,
}

/// Folds [`Event`]s into a [`ConsoleState`].
#[derive(Debug, Default)]
pub struct Controller {
    /// The state the renderer reads.
    pub state: ConsoleState,
}

impl Controller {
    /// A controller over a blank console.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one event into the state.
    pub fn apply(&mut self, event: Event) {
        let s = &mut self.state;
        match event {
            Event::Connected { addr } => s.connected = Some(addr),
            Event::LedgerAttached { path } => s.ledger_path = Some(path),
            Event::Status {
                epoch,
                final_epoch,
                accepted_rows,
                rows_in,
                quarantined,
                chunks,
                segments_sealed,
                epochs_published,
                uptime_s,
                cities,
            } => {
                // Status answers describe published epochs, which are
                // monotone; a reordered stale answer must not roll the
                // panel backwards.
                if epoch > s.epoch || (epoch == s.epoch && (final_epoch || !s.final_epoch)) {
                    s.epoch = epoch;
                    s.final_epoch = s.final_epoch || final_epoch;
                    s.accepted_rows = accepted_rows;
                    s.rows_in = rows_in;
                    s.quarantined = quarantined;
                    s.chunks = chunks;
                    s.segments_sealed = segments_sealed;
                    s.epochs_published = epochs_published;
                    s.cities = cities;
                }
                s.uptime_s = uptime_s;
            }
            Event::Metrics { clean, repaired, quarantined } => {
                // Totals, not deltas: later polls supersede earlier
                // ones (counters are monotone).
                s.outcomes = (
                    s.outcomes.0.max(clean),
                    s.outcomes.1.max(repaired),
                    s.outcomes.2.max(quarantined),
                );
            }
            Event::Watch(p) => s.push_point(p),
            Event::Ledger(run) => {
                s.ledger_rows += 1;
                s.run = Some(run);
            }
            Event::Drift(flags) => s.drift = Some(flags),
            Event::Note(note) => s.notes.push(note),
            Event::Tick => s.ticks += 1,
        }
    }

    /// Whether any drift flag is raised — the binary's exit-1 signal.
    pub fn drifted(&self) -> bool {
        self.state.drift.as_ref().is_some_and(|d| !d.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_status_answers_do_not_roll_back() {
        let mut c = Controller::new();
        let fresh = Event::Status {
            epoch: 3,
            final_epoch: false,
            accepted_rows: 192,
            rows_in: 200,
            quarantined: 8,
            chunks: 4,
            segments_sealed: 12,
            epochs_published: 3,
            uptime_s: 1.5,
            cities: vec![("City-A".into(), 192)],
        };
        let stale = Event::Status {
            epoch: 2,
            final_epoch: false,
            accepted_rows: 128,
            rows_in: 130,
            quarantined: 2,
            chunks: 2,
            segments_sealed: 8,
            epochs_published: 2,
            uptime_s: 2.0,
            cities: vec![],
        };
        c.apply(fresh);
        c.apply(stale);
        assert_eq!(c.state.epoch, 3);
        assert_eq!(c.state.accepted_rows, 192);
        assert_eq!(c.state.cities.len(), 1);
        // Wall-clock uptime still tracks the newest answer: it is
        // environmental and carries no ordering contract.
        assert!((c.state.uptime_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn watch_deltas_and_metrics_totals_never_double_count() {
        use crate::state::EpochPoint;
        let mut c = Controller::new();
        // Base row carries the running totals as deltas from empty.
        c.apply(Event::Watch(EpochPoint {
            epoch: 1,
            accepted_rows: 50,
            clean_delta: 50,
            ..Default::default()
        }));
        // A metrics poll reporting the same totals must not add.
        c.apply(Event::Metrics { clean: 50, repaired: 0, quarantined: 0 });
        assert_eq!(c.state.outcomes, (50, 0, 0));
        c.apply(Event::Watch(EpochPoint {
            epoch: 2,
            accepted_rows: 64,
            clean_delta: 14,
            ..Default::default()
        }));
        assert_eq!(c.state.outcomes, (64, 0, 0));
        c.apply(Event::Metrics { clean: 64, repaired: 0, quarantined: 0 });
        assert_eq!(c.state.outcomes, (64, 0, 0), "agreeing sources stay fixed");
    }

    #[test]
    fn metrics_totals_are_monotone_and_drift_clears() {
        let mut c = Controller::new();
        c.apply(Event::Metrics { clean: 10, repaired: 2, quarantined: 1 });
        c.apply(Event::Metrics { clean: 8, repaired: 1, quarantined: 0 });
        assert_eq!(c.state.outcomes, (10, 2, 1));
        assert!(!c.drifted());
        c.apply(Event::Drift(vec!["seed: 1 -> 2".into()]));
        assert!(c.drifted());
        c.apply(Event::Drift(vec![]));
        assert!(!c.drifted());
        assert_eq!(c.state.drift, Some(vec![]));
    }
}
