//! The renderer: a pure function from [`ConsoleState`] to a
//! fixed-width plain-text [`Frame`].
//!
//! Every frame line carries a [`PaneClass`]. Deterministic lines are a
//! pure function of deterministic inputs (counters, ledger rows, the
//! frame index) and are byte-identical at every parallelism level —
//! CI extracts them with `grep '^D|'` and byte-compares runs.
//! Wall-clock lines carry everything environmental: addresses,
//! uptimes, the parallelism knob, feed notes. No clock is ever read
//! here; the frame index comes from the controller's tick counter.

use crate::state::ConsoleState;

/// Which determinism contract a frame line lives under (DESIGN.md
/// §13 taxonomy, applied to UI text instead of metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaneClass {
    /// Byte-identical across parallelism levels for one (scale, seed).
    Deterministic,
    /// Environmental; never compared across runs.
    WallClock,
}

/// One rendered frame: a fixed-width cell grid of classed lines.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Interior width of every line, in characters.
    pub width: usize,
    /// The lines, top to bottom, each with its pane class.
    pub lines: Vec<(PaneClass, String)>,
}

impl Frame {
    /// Serialize the frame: one line per cell row, prefixed `D|` or
    /// `W|`, padded (or truncated) to exactly `width` characters.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (class, line) in &self.lines {
            out.push_str(match class {
                PaneClass::Deterministic => "D|",
                PaneClass::WallClock => "W|",
            });
            out.push_str(&pad(line, self.width));
            out.push('\n');
        }
        out
    }
}

/// Pad or truncate to exactly `width` characters (counted as chars,
/// so the grid stays aligned for any UTF-8 city name).
fn pad(s: &str, width: usize) -> String {
    let mut out: String = s.chars().take(width).collect();
    for _ in out.chars().count()..width {
        out.push(' ');
    }
    out
}

/// Glyph ramp for sparklines, darkest last. ASCII only, one byte per
/// glyph, so deterministic-pane comparisons stay byte-level.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Render `values` as a fixed-width sparkline: the last `width`
/// values, left-padded with blanks, each mapped onto [`RAMP`] by
/// integer math against the window maximum. Zero is always blank and
/// any non-zero value is visible. Pure integer arithmetic: the same
/// counters always produce the same glyphs.
pub fn sparkline(values: &[u64], width: usize) -> String {
    let window = &values[values.len().saturating_sub(width)..];
    let max = window.iter().copied().max().unwrap_or(0);
    let mut out = String::with_capacity(width);
    for _ in 0..width - window.len() {
        out.push(' ');
    }
    for &v in window {
        let glyph = if v == 0 || max == 0 {
            b' '
        } else {
            // Map 1..=max onto ramp indices 1..=9, with v == max
            // always landing on the darkest glyph.
            RAMP[(1 + (v as usize * (RAMP.len() - 2)) / max as usize).min(RAMP.len() - 1)]
        };
        out.push(glyph as char);
    }
    out
}

/// Renders [`ConsoleState`] into fixed-width frames.
#[derive(Debug, Clone)]
pub struct Renderer {
    /// Interior frame width in characters.
    pub width: usize,
}

/// Default interior frame width.
pub const DEFAULT_WIDTH: usize = 72;

impl Default for Renderer {
    fn default() -> Self {
        Self { width: DEFAULT_WIDTH }
    }
}

impl Renderer {
    /// A renderer with the given interior width (clamped to a usable
    /// minimum so headers and sparklines always fit).
    pub fn new(width: usize) -> Self {
        Self { width: width.max(40) }
    }

    /// Render one frame. `frame_idx` is ordinal (1-based) and comes
    /// from the caller's loop, never from a clock.
    pub fn render(&self, s: &ConsoleState, frame_idx: u64) -> Frame {
        use PaneClass::{Deterministic as D, WallClock as W};
        let mut lines: Vec<(PaneClass, String)> = Vec::new();
        let spark_w = 24usize;

        lines.push((D, format!("st-console frame {frame_idx}")));
        lines.push((
            D,
            match &s.run {
                Some(r) => format!(
                    "run: {} scale {} seed {} artifacts {} hash {}",
                    r.schema, r.scale, r.seed, r.artifact_files, r.artifact_hash
                ),
                None => format!("run: (no ledger row yet) ledger rows {}", s.ledger_rows),
            },
        ));
        lines.push((
            D,
            format!(
                "stage: {} epoch {}{} published {}",
                s.stage(),
                s.epoch,
                if s.final_epoch { " (final)" } else { "" },
                s.epochs_published
            ),
        ));
        let (clean, repaired, quarantined) = s.outcomes;
        let judged = clean + repaired + quarantined;
        lines.push((
            D,
            format!(
                "rows: in {} accepted {} | clean {} ({}) repaired {} ({}) quarantined {} ({})",
                s.rows_in,
                s.accepted_rows,
                clean,
                permille(clean, judged),
                repaired,
                permille(repaired, judged),
                quarantined,
                permille(quarantined, judged),
            ),
        ));
        lines
            .push((D, format!("store: chunks {} segments sealed {}", s.chunks, s.segments_sealed)));
        let cities = if s.cities.is_empty() {
            "(none)".to_string()
        } else {
            s.cities
                .iter()
                .map(|(name, rows)| format!("{name} {rows}"))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        lines.push((D, format!("cities: {cities}")));
        lines.push((
            D,
            format!("ingest/epoch: [{}] max {}", sparkline(&s.throughput_buckets(), spark_w), {
                s.throughput_buckets().into_iter().max().unwrap_or(0)
            }),
        ));
        let timeline: String = {
            let pts = &s.timeline;
            let shown = &pts[pts.len().saturating_sub(8)..];
            if shown.is_empty() {
                "(no crossings yet)".to_string()
            } else {
                let head = if shown.len() < pts.len() { ".. " } else { "" };
                format!(
                    "{head}{}",
                    shown
                        .iter()
                        .map(|p| format!(
                            "e{}{}:{}",
                            p.epoch,
                            if p.final_epoch { "F" } else { "" },
                            p.accepted_rows
                        ))
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            }
        };
        lines.push((D, format!("epochs: {timeline}")));
        match &s.drift {
            None => lines.push((D, "drift: (no baseline)".to_string())),
            Some(flags) if flags.is_empty() => lines.push((D, "drift: clean".to_string())),
            Some(flags) => {
                lines.push((D, format!("drift: {} flag(s)", flags.len())));
                for flag in flags {
                    lines.push((D, format!("  !! {flag}")));
                }
            }
        }

        // ---- wall-clock pane: environment only ----
        lines.push((
            W,
            format!(
                "feed: {} ledger {}",
                s.connected.as_deref().unwrap_or("(not connected)"),
                s.ledger_path.as_deref().unwrap_or("(none)")
            ),
        ));
        let parallelism = s.run.as_ref().map(|r| r.parallelism);
        lines.push((
            W,
            format!(
                "env: uptime {:.1}s parallelism {} ticks {}",
                s.uptime_s,
                parallelism.map_or_else(|| "?".to_string(), |p| p.to_string()),
                s.ticks
            ),
        ));
        for note in &s.notes {
            lines.push((W, format!("note: {note}")));
        }

        Frame { width: self.width, lines }
    }
}

/// Integer per-mille formatter: avoids float division so the
/// deterministic pane never depends on float formatting.
fn permille(part: u64, total: u64) -> String {
    match (part * 1000).checked_div(total) {
        None => "---".to_string(),
        Some(pm) => format!("{}.{}%", pm / 10, pm % 10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_is_fixed_width_and_integer_scaled() {
        assert_eq!(sparkline(&[], 8), "        ");
        assert_eq!(sparkline(&[0, 0, 0], 8).chars().count(), 8);
        let line = sparkline(&[1, 5, 10], 8);
        assert_eq!(line.chars().count(), 8);
        assert!(line.ends_with('@'), "max value maps to the darkest glyph: {line:?}");
        assert_eq!(&line[..5], "     ");
        // Window: only the last `width` values matter.
        assert_eq!(sparkline(&[99, 1, 1], 2), sparkline(&[1, 1], 2));
        // All-equal values are all darkest; zeros stay blank.
        assert_eq!(sparkline(&[4, 0, 4], 3), "@ @");
    }

    #[test]
    fn pad_counts_chars_not_bytes() {
        assert_eq!(pad("ab", 4), "ab  ");
        assert_eq!(pad("abcdef", 4), "abcd");
        let city = "Zürich"; // 6 chars, 7 bytes
        assert_eq!(pad(city, 8).chars().count(), 8);
    }

    #[test]
    fn permille_never_touches_floats() {
        assert_eq!(permille(0, 0), "---");
        assert_eq!(permille(1, 3), "33.3%");
        assert_eq!(permille(3, 3), "100.0%");
    }
}
