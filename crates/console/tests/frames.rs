//! Headless frame contracts: determinism of the `D|` pane, strict
//! pane separation, fixed-width grid geometry, and wire-format
//! parsing of the three query verbs the console consumes.

use st_console::{
    metrics_event, run_headless, status_event, watch_event, Controller, Event, Renderer,
};
use st_console::{EpochPoint, RunIdentity};

fn ingest_events(parallelism: u64, uptime_s: f64, addr: &str) -> Vec<Event> {
    // A scripted run: deterministic content identical across calls,
    // wall-clock content (parallelism, uptime, address) varying.
    let mut events = vec![
        Event::Connected { addr: addr.to_string() },
        Event::LedgerAttached { path: "out/BENCH_ledger.jsonl".into() },
        Event::Ledger(RunIdentity {
            schema: "st-serve/v1".into(),
            scale: 0.05,
            seed: 2024,
            parallelism,
            artifact_hash: "00f1e2d3c4b5a697".into(),
            artifact_files: 7,
        }),
    ];
    for epoch in 0..5u64 {
        events.push(Event::Watch(EpochPoint {
            epoch,
            final_epoch: false,
            accepted_rows: epoch * 64,
            segments_sealed: epoch * 4,
            clean_delta: if epoch == 0 { 0 } else { 60 },
            repaired_delta: if epoch == 0 { 0 } else { 3 },
            quarantined_delta: if epoch == 0 { 0 } else { 1 },
        }));
    }
    events.push(Event::Status {
        epoch: 4,
        final_epoch: false,
        accepted_rows: 256,
        rows_in: 260,
        quarantined: 4,
        chunks: 13,
        segments_sealed: 16,
        epochs_published: 4,
        uptime_s,
        cities: vec![("City-A".into(), 130), ("City-B".into(), 126)],
    });
    // A metrics poll reporting the same totals the watch deltas sum
    // to: the two sources must agree, not add.
    events.push(Event::Metrics { clean: 240, repaired: 12, quarantined: 4 });
    events.push(Event::Drift(vec![]));
    events
}

fn render_frames(events: &[Event], frames: u64) -> String {
    let mut controller = Controller::new();
    let renderer = Renderer::new(72);
    let mut queue: Vec<Event> = events.to_vec();
    let mut out = Vec::new();
    run_headless(
        &mut controller,
        &renderer,
        frames,
        |c| {
            for e in queue.drain(..) {
                c.apply(e);
            }
        },
        &mut out,
    )
    .unwrap();
    String::from_utf8(out).unwrap()
}

fn deterministic_pane(text: &str) -> String {
    text.lines().filter(|l| l.starts_with("D|")).collect::<Vec<_>>().join("\n")
}

#[test]
fn same_events_render_byte_identical_frames() {
    let a = render_frames(&ingest_events(1, 1.25, "127.0.0.1:4000"), 3);
    let b = render_frames(&ingest_events(1, 1.25, "127.0.0.1:4000"), 3);
    assert_eq!(a, b, "rendering is a pure function of the event sequence");
}

#[test]
fn deterministic_pane_is_invariant_to_wall_clock_inputs() {
    // Same run observed at parallelism 1 and 4: different uptime,
    // different address, different parallelism knob. The D pane must
    // not move; the W pane must (it is where those inputs live).
    let p1 = render_frames(&ingest_events(1, 0.9, "127.0.0.1:4000"), 2);
    let p4 = render_frames(&ingest_events(4, 7.6, "127.0.0.1:5111"), 2);
    assert_eq!(deterministic_pane(&p1), deterministic_pane(&p4));
    assert_ne!(p1, p4, "wall-clock pane reflects the differing environment");
    for needle in ["0.9", "7.6", "4000", "5111"] {
        assert!(
            !deterministic_pane(&p1).contains(needle) && !deterministic_pane(&p4).contains(needle),
            "wall-clock value {needle:?} leaked into the deterministic pane"
        );
    }
}

#[test]
fn frames_are_a_fixed_width_cell_grid_with_classed_lines() {
    let text = render_frames(&ingest_events(2, 3.0, "127.0.0.1:4000"), 2);
    let mut d_lines = 0;
    let mut w_lines = 0;
    for line in text.lines() {
        if line.is_empty() {
            continue; // frame separator
        }
        assert!(line.starts_with("D|") || line.starts_with("W|"), "unclassed frame line: {line:?}");
        assert_eq!(line.chars().count(), 72 + 2, "grid width broken on: {line:?}");
        if line.starts_with("D|") {
            d_lines += 1;
        } else {
            w_lines += 1;
        }
    }
    assert!(d_lines > 0 && w_lines > 0, "both pane classes present");
    // Frame headers are ordinal, not wall-clock.
    assert!(text.contains("st-console frame 1"));
    assert!(text.contains("st-console frame 2"));
    // The scripted metrics poll reports the same totals the watch
    // deltas sum to; the rates panel must not double count.
    assert!(text.contains("clean 240 "), "outcome totals counted once:\n{text}");
}

#[test]
fn drift_flags_render_in_the_deterministic_pane() {
    let mut events = ingest_events(1, 1.0, "127.0.0.1:4000");
    events.push(Event::Drift(vec![
        "seed: 2024 -> 2025".into(),
        "counters ledger.records_quarantined: 4 -> 9".into(),
    ]));
    let text = render_frames(&events, 1);
    let pane = deterministic_pane(&text);
    assert!(pane.contains("drift: 2 flag(s)"));
    assert!(pane.contains("!! seed: 2024 -> 2025"));

    // And a clean comparison renders as such.
    let clean = render_frames(&ingest_events(1, 1.0, "127.0.0.1:4000"), 1);
    assert!(deterministic_pane(&clean).contains("drift: clean"));

    // No baseline at all is distinct from a clean comparison.
    let bare = render_frames(&[], 1);
    assert!(deterministic_pane(&bare).contains("drift: (no baseline)"));
}

#[test]
fn sparkline_panel_reflects_throughput_and_stays_fixed_width() {
    let text = render_frames(&ingest_events(1, 1.0, "127.0.0.1:4000"), 1);
    let ingest_line =
        text.lines().find(|l| l.starts_with("D|ingest/epoch:")).expect("throughput panel present");
    let open = ingest_line.find('[').unwrap();
    let close = ingest_line.find(']').unwrap();
    assert_eq!(ingest_line[open + 1..close].chars().count(), 24);
    assert!(ingest_line.contains("max 63"), "per-epoch max from counters: {ingest_line:?}");
}

#[test]
fn wire_formats_of_all_three_verbs_parse_into_events() {
    let status = serde_json::from_str(
        "{\"ok\":true,\"kind\":\"status\",\"epoch\":3,\"final_epoch\":false,\
         \"accepted_rows\":192,\"rows_in\":200,\"quarantined\":8,\"chunks\":4,\
         \"segments_sealed\":12,\"epochs_published\":3,\"uptime_s\":1.5,\
         \"cities\":[{\"city\":\"City-A\",\"accepted_rows\":192}]}",
    )
    .unwrap();
    match status_event(&status).unwrap() {
        Event::Status { epoch, accepted_rows, cities, .. } => {
            assert_eq!((epoch, accepted_rows), (3, 192));
            assert_eq!(cities, vec![("City-A".to_string(), 192)]);
        }
        other => panic!("expected Status, got {other:?}"),
    }

    let metrics = serde_json::from_str(
        "{\"ok\":true,\"kind\":\"metrics\",\"epoch\":3,\"snapshot\":{\
         \"schema\":\"st-obs/v1\",\"deterministic\":{\"counters\":{\
         \"serve.rows{outcome=clean}\":180,\"serve.rows{outcome=repaired}\":12,\
         \"serve.rows{outcome=quarantined}\":8}},\"wall_clock\":{}}}",
    )
    .unwrap();
    assert_eq!(
        metrics_event(&metrics).unwrap(),
        Event::Metrics { clean: 180, repaired: 12, quarantined: 8 }
    );

    let watch = serde_json::from_str(
        "{\"ok\":true,\"kind\":\"watch\",\"epoch\":2,\"final_epoch\":true,\
         \"accepted_rows\":128,\"quarantined\":0,\"chunks\":2,\"segments_sealed\":8,\
         \"seals\":[],\"counters\":{\"serve.rows{outcome=clean}\":64,\
         \"serve.epochs\":1}}",
    )
    .unwrap();
    match watch_event(&watch).unwrap() {
        Event::Watch(p) => {
            assert!(p.final_epoch);
            assert_eq!((p.epoch, p.accepted_rows, p.clean_delta), (2, 128, 64));
        }
        other => panic!("expected Watch, got {other:?}"),
    }

    // The uniform error row surfaces as an Err, not a panic.
    let error =
        serde_json::from_str("{\"ok\":false,\"kind\":\"error\",\"detail\":\"unknown command\"}")
            .unwrap();
    let err = status_event(&error).unwrap_err();
    assert!(err.contains("unknown command"), "error detail propagated: {err}");
}
