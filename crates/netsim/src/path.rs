//! End-to-end path composition.
//!
//! A [`NetworkPath`] is one user's complete route to a test server at one
//! moment: provisioned access link, home medium (WiFi or Ethernet), device
//! profile, and RTT model. [`NetworkPath::snapshot`] samples the
//! time-varying pieces and returns the parameters a transport simulation
//! needs; the speed-test methodologies in `st-speedtest` then run
//! [`crate::tcp::TcpSimulator`] against that snapshot.

use crate::device::DeviceProfile;
use crate::link::AccessLink;
use crate::rtt::RttModel;
use crate::units::Mbps;
use crate::wifi::WifiLink;
use rand::Rng;

/// How the measuring device reaches the home router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessMedium {
    /// Wired: an Ethernet NIC of the given line rate (typically 1 Gbps,
    /// delivering ~940 Mbps of TCP goodput after framing overhead).
    Ethernet {
        /// NIC line rate.
        link_rate: Mbps,
    },
    /// Wireless: an association to the home AP.
    Wifi(WifiLink),
}

impl AccessMedium {
    /// Gigabit Ethernet — the common wired case.
    pub fn gigabit_ethernet() -> Self {
        AccessMedium::Ethernet { link_rate: Mbps(1000.0) }
    }

    /// Whether this is a WiFi medium.
    pub fn is_wifi(&self) -> bool {
        matches!(self, AccessMedium::Wifi(_))
    }

    /// Sample the medium's deliverable TCP capacity.
    fn sample_capacity<R: Rng + ?Sized>(&self, rng: &mut R) -> Mbps {
        match self {
            // Ethernet goodput: ~94% of line rate (IFG + headers),
            // effectively deterministic.
            AccessMedium::Ethernet { link_rate } => *link_rate * 0.94,
            AccessMedium::Wifi(link) => link.sample_capacity(rng),
        }
    }

    /// Per-packet loss contributed by the medium.
    fn loss_rate(&self) -> f64 {
        match self {
            AccessMedium::Ethernet { .. } => 1e-7,
            AccessMedium::Wifi(link) => link.loss_rate(),
        }
    }
}

/// The sampled state of a path at test time — everything a transport
/// simulation needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSnapshot {
    /// Downstream rate available end-to-end (min of access and medium).
    pub down_available: Mbps,
    /// Upstream rate available end-to-end.
    pub up_available: Mbps,
    /// Round-trip time, seconds.
    pub rtt_s: f64,
    /// Combined random per-packet loss on the path.
    pub loss_rate: f64,
    /// Device receive-window budget, bytes.
    pub rwnd_total_bytes: f64,
    /// Device processing ceiling.
    pub device_cap: Mbps,
}

/// One user's end-to-end measurement path.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkPath {
    /// The provisioned last mile.
    pub access: AccessLink,
    /// The in-home hop.
    pub medium: AccessMedium,
    /// The measuring device.
    pub device: DeviceProfile,
    /// RTT sampler.
    pub rtt: RttModel,
}

impl NetworkPath {
    /// Compose a path.
    pub fn new(
        access: AccessLink,
        medium: AccessMedium,
        device: DeviceProfile,
        rtt: RttModel,
    ) -> Self {
        NetworkPath { access, medium, device, rtt }
    }

    /// Sample the path state for a test starting at local `hour` (0–23).
    pub fn snapshot<R: Rng + ?Sized>(&self, hour: u8, rng: &mut R) -> PathSnapshot {
        let rtt_s = match &self.medium {
            AccessMedium::Ethernet { .. } => self.rtt.sample_wired(rng),
            AccessMedium::Wifi(link) => self.rtt.sample_wifi(rng, link.rssi_dbm),
        };
        let medium_cap = self.medium.sample_capacity(rng);
        let down_access = self.access.sample_down_available(hour, rng);
        let up_access = self.access.sample_up_available(hour, rng);

        // The device's processing cap binds symmetrically; the window cap is
        // applied inside the TCP simulation via rwnd_total_bytes.
        let device_cap = self.device.processing_cap;

        PathSnapshot {
            down_available: down_access.min(medium_cap).min(device_cap),
            up_available: up_access.min(medium_cap).min(device_cap),
            rtt_s,
            loss_rate: (self.access.base_loss + self.medium.loss_rate()).min(0.05),
            rwnd_total_bytes: self.device.max_tcp_buffer_bytes,
            device_cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wifi::Band;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    fn plan_path(medium: AccessMedium, rng: &mut StdRng) -> NetworkPath {
        let access = AccessLink::provision(Mbps(1200.0), Mbps(35.0), rng);
        NetworkPath::new(access, medium, DeviceProfile::unconstrained(), RttModel::metro())
    }

    #[test]
    fn ethernet_path_bottleneck_is_nic_or_access() {
        let mut r = rng();
        let path = plan_path(AccessMedium::gigabit_ethernet(), &mut r);
        for _ in 0..100 {
            let s = path.snapshot(12, &mut r);
            assert!(s.down_available.0 <= 940.0 + 1e-9, "{}", s.down_available);
            assert!(s.down_available.0 > 300.0);
            assert!(s.up_available.0 <= 35.0 * 1.25);
            assert!(s.loss_rate < 1e-3);
        }
    }

    #[test]
    fn weak_wifi_is_the_bottleneck() {
        let mut r = rng();
        let weak = AccessMedium::Wifi(WifiLink::new(Band::G2_4, -78.0));
        let path = plan_path(weak, &mut r);
        for _ in 0..100 {
            let s = path.snapshot(12, &mut r);
            // 2.4 GHz at -78 dBm: PHY 28.9 → capacity well under 25 Mbps.
            assert!(s.down_available.0 < 25.0, "{}", s.down_available);
        }
    }

    #[test]
    fn wifi_loss_exceeds_ethernet_loss() {
        let mut r = rng();
        let eth = plan_path(AccessMedium::gigabit_ethernet(), &mut r).snapshot(0, &mut r);
        let wifi_path = plan_path(AccessMedium::Wifi(WifiLink::new(Band::G5, -82.0)), &mut r);
        let wifi = wifi_path.snapshot(0, &mut r);
        assert!(wifi.loss_rate > eth.loss_rate);
    }

    #[test]
    fn snapshot_rates_are_valid_and_capped_by_device() {
        let mut r = rng();
        let mut low_mem_dev = DeviceProfile::from_memory(1.0, &mut r);
        low_mem_dev.processing_cap = Mbps(150.0);
        let access = AccessLink::provision(Mbps(800.0), Mbps(15.0), &mut r);
        let path = NetworkPath::new(
            access,
            AccessMedium::Wifi(WifiLink::new(Band::G5, -45.0)),
            low_mem_dev,
            RttModel::metro(),
        );
        for _ in 0..50 {
            let s = path.snapshot(18, &mut r);
            assert!(s.down_available.is_valid() && s.up_available.is_valid());
            assert!(s.down_available.0 <= 150.0, "device cap ignored: {}", s.down_available);
        }
    }

    #[test]
    fn medium_helpers() {
        assert!(AccessMedium::Wifi(WifiLink::new(Band::G5, -50.0)).is_wifi());
        assert!(!AccessMedium::gigabit_ethernet().is_wifi());
    }
}
