//! The home WiFi hop.
//!
//! "WiFi-connected devices contribute to almost 97% of the native
//! application tests" (paper §5.1) and the WiFi hop is the dominant local
//! bottleneck the paper quantifies (§6.1): spectrum band and RSSI together
//! swing measured download speed by more than 6×.
//!
//! The model follows standard 802.11 behaviour:
//! * **PHY rate** from an MCS lookup keyed by band and RSSI — 2.4 GHz
//!   modelled as 802.11n, 20 MHz, 2 spatial streams (max 144.4 Mbps);
//!   5 GHz as 802.11ac, 80 MHz, 2 streams (max 866.7 Mbps).
//! * **MAC efficiency** ~65%: contention, ACKs, preambles.
//! * **Contention/interference**: a random share of airtime lost to
//!   neighbouring networks — heavier on 2.4 GHz, where three
//!   non-overlapping channels serve every apartment in range.
//! * **Loss**: residual post-retry packet loss grows as RSSI approaches
//!   the sensitivity floor; this is what guts single-flow TCP.

use crate::units::Mbps;
use rand::Rng;
use serde::Serialize;

/// WiFi spectrum band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Band {
    /// 2.4 GHz: longer reach, narrow channels, crowded spectrum.
    G2_4,
    /// 5 GHz: wide channels, higher rates, faster attenuation.
    G5,
}

impl Band {
    /// Human-readable label used by analysis output.
    pub fn label(&self) -> &'static str {
        match self {
            Band::G2_4 => "2.4 GHz",
            Band::G5 => "5 GHz",
        }
    }
}

/// One device's association to the home AP during a test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WifiLink {
    /// Spectrum band in use.
    pub band: Band,
    /// Received signal strength at the device, dBm.
    pub rssi_dbm: f64,
}

impl WifiLink {
    /// Create a link; RSSI is clamped into the physically plausible
    /// `[-95, -20]` dBm window.
    pub fn new(band: Band, rssi_dbm: f64) -> Self {
        assert!(rssi_dbm.is_finite(), "RSSI must be finite");
        WifiLink { band, rssi_dbm: rssi_dbm.clamp(-95.0, -20.0) }
    }

    /// The negotiated PHY rate for this band/RSSI.
    ///
    /// Values are the 802.11n (2.4 GHz, 20 MHz, 2SS, 800 ns GI) and
    /// 802.11ac (5 GHz, 80 MHz, 2SS) MCS tables, selected by the RSSI
    /// thresholds vendors use for rate adaptation.
    pub fn phy_rate(&self) -> Mbps {
        let r = self.rssi_dbm;
        match self.band {
            Band::G2_4 => Mbps(match () {
                _ if r >= -55.0 => 144.4,
                _ if r >= -62.0 => 130.0,
                _ if r >= -67.0 => 115.6,
                _ if r >= -72.0 => 86.7,
                _ if r >= -77.0 => 57.8,
                _ if r >= -82.0 => 28.9,
                _ if r >= -88.0 => 14.4,
                _ => 6.5,
            }),
            Band::G5 => Mbps(match () {
                _ if r >= -50.0 => 866.7,
                _ if r >= -55.0 => 780.0,
                _ if r >= -60.0 => 650.0,
                _ if r >= -65.0 => 520.0,
                _ if r >= -70.0 => 390.0,
                _ if r >= -75.0 => 260.0,
                _ if r >= -80.0 => 130.0,
                _ if r >= -87.0 => 65.0,
                _ => 29.3,
            }),
        }
    }

    /// Residual (post-MAC-retry) packet loss rate seen by TCP.
    ///
    /// Near the AP this is negligible; within ~15 dB of the sensitivity
    /// floor retries start failing and TCP sees real loss.
    pub fn loss_rate(&self) -> f64 {
        let floor = match self.band {
            Band::G2_4 => -92.0,
            Band::G5 => -90.0,
        };
        let margin = (self.rssi_dbm - floor).max(0.0);
        if margin > 25.0 {
            1e-5
        } else {
            // Exponential ramp: 25 dB margin → 1e-5, 0 dB → ~2%.
            (0.02 * (-(margin) / 7.5).exp()).max(1e-5)
        }
    }

    /// Sample the TCP-visible throughput capacity of this hop:
    /// `PHY × MAC efficiency × (1 − contention)`.
    pub fn sample_capacity<R: Rng + ?Sized>(&self, rng: &mut R) -> Mbps {
        let phy = self.phy_rate();
        let mac_eff = 0.58 + rng.gen::<f64>() * 0.10; // 0.58–0.68
        let contention = self.sample_contention(rng);
        phy * mac_eff * (1.0 - contention)
    }

    /// Airtime fraction lost to co-channel neighbours.
    fn sample_contention<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Dense-housing airtime loss, occasionally severe (a neighbour's
        // bulk transfer or a microwave on 2.4 GHz).
        let heavy = rng.gen::<f64>() < 0.25;
        match self.band {
            // 2.4 GHz: typically 20–60% of airtime lost, up to 85% heavy.
            Band::G2_4 => {
                let base = 0.20 + rng.gen::<f64>() * 0.40;
                if heavy {
                    (base + 0.25).min(0.85)
                } else {
                    base
                }
            }
            // 5 GHz: typically 3–35%, up to 60% heavy.
            Band::G5 => {
                let base = 0.03 + rng.gen::<f64>() * 0.32;
                if heavy {
                    (base + 0.25).min(0.60)
                } else {
                    base
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn phy_rate_monotone_in_rssi() {
        for band in [Band::G2_4, Band::G5] {
            let mut prev = Mbps::ZERO;
            for rssi in (-95..=-20).step_by(5) {
                let rate = WifiLink::new(band, rssi as f64).phy_rate();
                assert!(rate.0 >= prev.0, "{band:?} at {rssi}: {rate} < {prev}");
                prev = rate;
            }
        }
    }

    #[test]
    fn five_ghz_outruns_two_four_at_same_rssi() {
        for rssi in [-40.0, -55.0, -65.0] {
            let g5 = WifiLink::new(Band::G5, rssi).phy_rate();
            let g24 = WifiLink::new(Band::G2_4, rssi).phy_rate();
            assert!(g5.0 > g24.0, "at {rssi}: 5 GHz {g5} <= 2.4 GHz {g24}");
        }
    }

    #[test]
    fn max_phy_rates_match_standards() {
        assert_eq!(WifiLink::new(Band::G2_4, -30.0).phy_rate(), Mbps(144.4));
        assert_eq!(WifiLink::new(Band::G5, -30.0).phy_rate(), Mbps(866.7));
    }

    #[test]
    fn loss_grows_toward_sensitivity_floor() {
        let near = WifiLink::new(Band::G5, -40.0).loss_rate();
        let mid = WifiLink::new(Band::G5, -70.0).loss_rate();
        let far = WifiLink::new(Band::G5, -88.0).loss_rate();
        assert!(near <= mid && mid <= far, "{near} {mid} {far}");
        assert!(far <= 0.05);
    }

    #[test]
    fn capacity_below_phy_rate() {
        let mut r = rng();
        for band in [Band::G2_4, Band::G5] {
            for rssi in [-40.0, -60.0, -80.0] {
                let link = WifiLink::new(band, rssi);
                for _ in 0..100 {
                    let cap = link.sample_capacity(&mut r);
                    assert!(cap.is_valid());
                    assert!(cap.0 < link.phy_rate().0, "{cap} >= phy {}", link.phy_rate());
                    assert!(cap.0 > 0.0);
                }
            }
        }
    }

    #[test]
    fn two_four_ghz_contention_is_heavier() {
        let mut r = rng();
        let mut mean = |band| {
            let link = WifiLink::new(band, -50.0);
            let s: f64 = (0..2000).map(|_| link.sample_contention(&mut r)).sum();
            s / 2000.0
        };
        let g24 = mean(Band::G2_4);
        let g5 = mean(Band::G5);
        assert!(g24 > g5 + 0.1, "2.4 GHz contention {g24} not clearly above 5 GHz {g5}");
    }

    #[test]
    fn rssi_is_clamped() {
        assert_eq!(WifiLink::new(Band::G5, -200.0).rssi_dbm, -95.0);
        assert_eq!(WifiLink::new(Band::G5, 0.0).rssi_dbm, -20.0);
    }

    #[test]
    #[should_panic(expected = "RSSI must be finite")]
    fn nan_rssi_rejected() {
        let _ = WifiLink::new(Band::G5, f64::NAN);
    }

    #[test]
    fn band_labels() {
        assert_eq!(Band::G2_4.label(), "2.4 GHz");
        assert_eq!(Band::G5.label(), "5 GHz");
    }
}
