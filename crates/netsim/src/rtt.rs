//! Round-trip-time model.
//!
//! Speed-test vendors pick a nearby server (Ookla: >16k servers, M-Lab:
//! >500), so base RTTs are short; WiFi hops and upstream queueing add to
//! > them. RTT matters twice in this workspace: it sets the bandwidth-delay
//! > product that single-flow NDT struggles to fill, and it converts device
//! > TCP-buffer limits into throughput caps.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// Samples per-test round-trip times.
#[derive(Debug, Clone, PartialEq)]
pub struct RttModel {
    /// Median wired RTT to the test server, seconds.
    base_median_s: f64,
    /// Log-space sigma of the base RTT (captures server-distance spread).
    base_sigma: f64,
    /// Extra per-hop latency added by a WiFi first hop, seconds (median).
    wifi_extra_median_s: f64,
}

impl RttModel {
    /// A model with an explicit wired median RTT (seconds).
    pub fn new(base_median_s: f64, base_sigma: f64, wifi_extra_median_s: f64) -> Self {
        assert!(base_median_s > 0.0, "RTT must be positive");
        assert!(base_sigma >= 0.0, "sigma must be non-negative");
        assert!(wifi_extra_median_s >= 0.0, "wifi extra must be non-negative");
        RttModel { base_median_s, base_sigma, wifi_extra_median_s }
    }

    /// Defaults matching a metro user and a same-metro test server:
    /// ~12 ms wired median, ~4 ms extra median on WiFi.
    pub fn metro() -> Self {
        RttModel::new(0.012, 0.35, 0.004)
    }

    /// Sample a wired RTT (seconds).
    pub fn sample_wired<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let dist =
            LogNormal::new(self.base_median_s.ln(), self.base_sigma).expect("validated sigma");
        dist.sample(rng).clamp(0.002, 0.5)
    }

    /// Sample a WiFi RTT (seconds): wired RTT plus the wireless first hop.
    /// Poor signal inflates the extra term (retransmissions at the MAC
    /// layer), following the latency findings of Sui et al. (MobiSys '16).
    pub fn sample_wifi<R: Rng + ?Sized>(&self, rng: &mut R, rssi_dbm: f64) -> f64 {
        let wired = self.sample_wired(rng);
        // −30 dBm → ×1, −90 dBm → ×4 inflation of the WiFi extra term.
        let inflation = 1.0 + ((-rssi_dbm - 30.0).max(0.0) / 20.0);
        let extra_dist =
            LogNormal::new(self.wifi_extra_median_s.ln(), 0.5).expect("fixed sigma is valid");
        let extra = extra_dist.sample(rng) * inflation;
        (wired + extra).clamp(0.002, 0.8)
    }
}

impl Default for RttModel {
    fn default() -> Self {
        RttModel::metro()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    fn median(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }

    #[test]
    fn wired_median_near_configured() {
        let m = RttModel::metro();
        let mut r = rng();
        let samples: Vec<f64> = (0..4000).map(|_| m.sample_wired(&mut r)).collect();
        let med = median(samples);
        assert!((med - 0.012).abs() < 0.004, "median {med}");
    }

    #[test]
    fn wifi_adds_latency() {
        let m = RttModel::metro();
        let mut r = rng();
        let wired = median((0..2000).map(|_| m.sample_wired(&mut r)).collect());
        let wifi = median((0..2000).map(|_| m.sample_wifi(&mut r, -50.0)).collect());
        assert!(wifi > wired, "wifi {wifi} <= wired {wired}");
    }

    #[test]
    fn poor_rssi_inflates_wifi_latency() {
        let m = RttModel::metro();
        let mut r = rng();
        let good = median((0..2000).map(|_| m.sample_wifi(&mut r, -40.0)).collect());
        let bad = median((0..2000).map(|_| m.sample_wifi(&mut r, -85.0)).collect());
        assert!(bad > good, "bad {bad} <= good {good}");
    }

    #[test]
    fn samples_stay_in_sane_bounds() {
        let m = RttModel::metro();
        let mut r = rng();
        for _ in 0..2000 {
            let w = m.sample_wired(&mut r);
            assert!((0.002..=0.5).contains(&w));
            let wf = m.sample_wifi(&mut r, -70.0);
            assert!((0.002..=0.8).contains(&wf));
        }
    }

    #[test]
    #[should_panic(expected = "RTT must be positive")]
    fn zero_rtt_rejected() {
        let _ = RttModel::new(0.0, 0.1, 0.001);
    }
}
