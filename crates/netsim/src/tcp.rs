//! Round-based TCP throughput simulation.
//!
//! The decisive methodological difference between the paper's two vendors
//! (§6.3) is transport behaviour: M-Lab's NDT drives **one** TCP connection
//! and reports the whole-transfer average, while Ookla drives **several**
//! connections and discards the ramp-up. On a high bandwidth-delay-product
//! path with non-zero random loss, a single Reno-style flow cannot hold the
//! pipe full (the Mathis ceiling `MSS/RTT · sqrt(3/2p)`), while the sum of
//! several flows can — so NDT under-reports by up to ~2× exactly where the
//! paper sees it.
//!
//! [`TcpSimulator`] evolves per-flow congestion windows one RTT at a time:
//! slow start with doubling, congestion avoidance with +1 MSS/RTT, halving
//! on loss; loss events come from random (link) loss plus congestion loss
//! when aggregate demand overruns the bottleneck. Receive windows cap the
//! aggregate at the device's buffer limit.

use crate::units::Mbps;
use rand::Rng;

/// The congestion-control algorithm a flow runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestionControl {
    /// Classic Reno: +1 MSS/RTT additive increase, halve on loss.
    #[default]
    Reno,
    /// CUBIC (RFC 8312): cubic window growth around the last loss point
    /// with a 0.7 multiplicative decrease — the Linux default, and what
    /// 2021-era speed-test servers actually ran. Recovers from loss much
    /// faster on high-BDP paths, which *narrows* (but does not close) the
    /// single-flow NDT gap; the `ablations` bench quantifies this.
    Cubic,
}

/// Configuration for one simulated transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Number of concurrent TCP connections (NDT: 1, Ookla: 4–8).
    pub n_flows: usize,
    /// Transfer duration, seconds.
    pub duration_s: f64,
    /// Path round-trip time, seconds.
    pub rtt_s: f64,
    /// Random per-packet loss probability (link-layer residual loss).
    pub loss_rate: f64,
    /// Available path rate (min of access/WiFi bottlenecks).
    pub bottleneck: Mbps,
    /// Total receive-window budget across all flows, bytes
    /// (device TCP-buffer limit).
    pub rwnd_total_bytes: f64,
    /// Maximum segment size, bytes.
    pub mss_bytes: usize,
    /// Initial congestion window, packets (RFC 6928 default: 10).
    pub initial_cwnd_pkts: f64,
    /// Bottleneck buffer size in bandwidth-delay products. A buffer of one
    /// BDP lets a halved Reno window keep the pipe full (the classic
    /// buffer-sizing rule); congestion loss only starts once the offered
    /// load exceeds capacity *plus* this buffer.
    pub buffer_bdp: f64,
    /// Congestion-control algorithm for all flows in the transfer.
    pub congestion_control: CongestionControl,
}

impl FlowConfig {
    /// A config with protocol defaults; callers set path parameters.
    pub fn new(n_flows: usize, duration_s: f64, rtt_s: f64, bottleneck: Mbps) -> Self {
        assert!(n_flows >= 1, "need at least one flow");
        assert!(duration_s > 0.0 && rtt_s > 0.0, "times must be positive");
        assert!(bottleneck.is_valid() && bottleneck.0 > 0.0, "bottleneck must be positive");
        FlowConfig {
            n_flows,
            duration_s,
            rtt_s,
            loss_rate: 0.0,
            bottleneck,
            rwnd_total_bytes: 64.0 * 1024.0 * 1024.0,
            mss_bytes: 1500,
            initial_cwnd_pkts: 10.0,
            buffer_bdp: 1.0,
            congestion_control: CongestionControl::default(),
        }
    }

    /// Select the congestion-control algorithm.
    pub fn with_congestion_control(mut self, cc: CongestionControl) -> Self {
        self.congestion_control = cc;
        self
    }

    /// Set the random per-packet loss rate.
    pub fn with_loss(mut self, loss_rate: f64) -> Self {
        assert!((0.0..1.0).contains(&loss_rate), "loss must be in [0,1)");
        self.loss_rate = loss_rate;
        self
    }

    /// Set the total receive-window budget in bytes.
    pub fn with_rwnd_total(mut self, bytes: f64) -> Self {
        assert!(bytes > 0.0, "rwnd must be positive");
        self.rwnd_total_bytes = bytes;
        self
    }
}

/// The outcome of a simulated transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSample {
    /// Whole-duration average goodput (what NDT reports).
    pub mean_all: Mbps,
    /// Average excluding the first `ramp_discard` seconds (what a
    /// ramp-discarding methodology reports).
    pub mean_steady: Mbps,
    /// Seconds discarded for `mean_steady`.
    pub ramp_discard_s: f64,
    /// Total loss events across flows.
    pub loss_events: u64,
    /// Number of RTT rounds simulated.
    pub rounds: usize,
    /// Mean RTT experienced *during* the transfer: the base RTT plus the
    /// time-averaged queueing delay at the bottleneck buffer
    /// (bufferbloat). What a "latency under load" responsiveness metric
    /// reports.
    pub loaded_rtt_s: f64,
}

/// One per-round observation from a traced run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Time since transfer start, seconds.
    pub t_s: f64,
    /// Aggregate congestion window across flows, packets.
    pub cwnd_pkts: f64,
    /// Delivered rate this round.
    pub rate: Mbps,
}

/// Round-based multi-flow TCP simulator.
#[derive(Debug, Clone)]
pub struct TcpSimulator {
    cfg: FlowConfig,
}

struct FlowState {
    cwnd: f64,
    ssthresh: f64,
    slow_start: bool,
    /// CUBIC state: window size at the last loss event, packets.
    w_max: f64,
    /// CUBIC state: seconds since the last loss event.
    t_since_loss: f64,
}

/// CUBIC constants per RFC 8312.
const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;

/// CUBIC target window at `t` seconds after a loss that occurred at
/// window `w_max` (packets).
fn cubic_window(w_max: f64, t: f64) -> f64 {
    let k = (w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
    CUBIC_C * (t - k).powi(3) + w_max
}

/// The RFC 8312 TCP-friendly window estimate: what a well-behaved AIMD
/// flow with CUBIC's beta would have reached `t` seconds after the loss.
/// CUBIC never runs below this, which keeps it competitive on
/// short-RTT paths where the cubic term is slow near its plateau.
fn cubic_tcp_friendly(w_max: f64, t: f64, rtt_s: f64) -> f64 {
    w_max * CUBIC_BETA + 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) * (t / rtt_s)
}

impl TcpSimulator {
    /// Create a simulator for the given configuration.
    pub fn new(cfg: FlowConfig) -> Self {
        TcpSimulator { cfg }
    }

    /// Run the transfer; returns aggregate goodput measures.
    ///
    /// `ramp_discard_s` seconds at the start are excluded from
    /// `mean_steady` (Ookla-style); `mean_all` always covers the full
    /// duration (NDT-style).
    pub fn run<R: Rng + ?Sized>(&self, ramp_discard_s: f64, rng: &mut R) -> ThroughputSample {
        self.run_inner(ramp_discard_s, rng, None).0
    }

    /// Like [`TcpSimulator::run`], additionally returning the per-round
    /// window/rate trace (for dynamics visualization and debugging).
    pub fn run_traced<R: Rng + ?Sized>(
        &self,
        ramp_discard_s: f64,
        rng: &mut R,
    ) -> (ThroughputSample, Vec<TracePoint>) {
        let mut trace = Vec::new();
        let sample = self.run_inner(ramp_discard_s, rng, Some(&mut trace)).0;
        (sample, trace)
    }

    fn run_inner<R: Rng + ?Sized>(
        &self,
        ramp_discard_s: f64,
        rng: &mut R,
        mut trace: Option<&mut Vec<TracePoint>>,
    ) -> (ThroughputSample, ()) {
        let cfg = &self.cfg;
        let mss = cfg.mss_bytes as f64;
        let rounds = (cfg.duration_s / cfg.rtt_s).ceil() as usize;
        let ramp_discard_s = ramp_discard_s.clamp(0.0, cfg.duration_s * 0.8);
        let discard_rounds = (ramp_discard_s / cfg.rtt_s).floor() as usize;

        // Bottleneck capacity per round, in packets.
        let cap_pkts_round = cfg.bottleneck.packets_per_sec(cfg.mss_bytes) * cfg.rtt_s;
        // Per-flow receive-window cap, packets.
        let rwnd_pkts = (cfg.rwnd_total_bytes / cfg.n_flows as f64 / mss).max(1.0);

        let mut flows: Vec<FlowState> = (0..cfg.n_flows)
            .map(|_| FlowState {
                cwnd: cfg.initial_cwnd_pkts.min(rwnd_pkts),
                ssthresh: rwnd_pkts,
                slow_start: true,
                w_max: rwnd_pkts,
                t_since_loss: 0.0,
            })
            .collect();

        let mut total_pkts = 0.0f64;
        let mut steady_pkts = 0.0f64;
        let mut loss_events = 0u64;
        let mut queue_delay_acc = 0.0f64;

        for round in 0..rounds {
            let demand: f64 = flows.iter().map(|f| f.cwnd).sum();
            let delivered = demand.min(cap_pkts_round);
            total_pkts += delivered;
            if round >= discard_rounds {
                steady_pkts += delivered;
            }
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TracePoint {
                    t_s: round as f64 * cfg.rtt_s,
                    cwnd_pkts: demand,
                    rate: Mbps::from_bytes_per_sec(delivered * mss / cfg.rtt_s),
                });
            }

            // Standing queue this round: packets beyond the pipe, capped by
            // the buffer. Draining them takes queue/cap_rate seconds — the
            // queueing delay every packet in the round experiences.
            let queue_pkts = (demand - cap_pkts_round).clamp(0.0, cap_pkts_round * cfg.buffer_bdp);
            queue_delay_acc += queue_pkts / cap_pkts_round * cfg.rtt_s;

            // Congestion loss pressure: load beyond what capacity plus the
            // bottleneck buffer can absorb this round.
            let buffered_cap = cap_pkts_round * (1.0 + cfg.buffer_bdp);
            let overshoot =
                if demand > buffered_cap { (demand - buffered_cap) / demand } else { 0.0 };

            for f in flows.iter_mut() {
                // Probability at least one of this flow's packets was lost:
                // random loss over its delivered share, plus congestion loss
                // proportional to the round's overshoot.
                let sent = f.cwnd * delivered / demand.max(1e-12);
                let p_rand = 1.0 - (1.0 - cfg.loss_rate).powf(sent.max(0.0));
                let p_cong = (overshoot * 1.5).min(1.0);
                let p_loss = (p_rand + p_cong - p_rand * p_cong).clamp(0.0, 1.0);

                if rng.gen::<f64>() < p_loss {
                    loss_events += 1;
                    match cfg.congestion_control {
                        CongestionControl::Reno => {
                            f.ssthresh = (f.cwnd / 2.0).max(2.0);
                            f.cwnd = f.ssthresh;
                        }
                        CongestionControl::Cubic => {
                            f.w_max = f.cwnd;
                            f.t_since_loss = 0.0;
                            f.cwnd = (f.cwnd * CUBIC_BETA).max(2.0);
                            f.ssthresh = f.cwnd;
                        }
                    }
                    f.slow_start = false;
                } else if f.slow_start {
                    f.cwnd = (f.cwnd * 2.0).min(rwnd_pkts);
                    if f.cwnd >= f.ssthresh {
                        f.slow_start = false;
                    }
                } else {
                    f.t_since_loss += cfg.rtt_s;
                    f.cwnd = match cfg.congestion_control {
                        CongestionControl::Reno => (f.cwnd + 1.0).min(rwnd_pkts),
                        CongestionControl::Cubic => cubic_window(f.w_max, f.t_since_loss)
                            .max(cubic_tcp_friendly(f.w_max, f.t_since_loss, cfg.rtt_s))
                            .max(f.cwnd) // never shrink without loss
                            .min(rwnd_pkts),
                    };
                }
            }
        }

        let total_time = rounds as f64 * cfg.rtt_s;
        let steady_time = (rounds - discard_rounds) as f64 * cfg.rtt_s;
        let to_mbps = |pkts: f64, secs: f64| {
            if secs <= 0.0 {
                Mbps::ZERO
            } else {
                Mbps::from_bytes_per_sec(pkts * mss / secs)
            }
        };

        (
            ThroughputSample {
                mean_all: to_mbps(total_pkts, total_time),
                mean_steady: to_mbps(steady_pkts, steady_time),
                ramp_discard_s,
                loss_events,
                rounds,
                loaded_rtt_s: cfg.rtt_s + queue_delay_acc / rounds.max(1) as f64,
            },
            (),
        )
    }
}

/// The Mathis et al. steady-state ceiling for a single Reno flow:
/// `MSS/RTT * sqrt(3 / (2p))`, in Mbps. Exposed for tests and docs.
pub fn mathis_ceiling(mss_bytes: usize, rtt_s: f64, loss_rate: f64) -> Mbps {
    assert!(loss_rate > 0.0, "Mathis ceiling undefined at zero loss");
    let pkts_per_rtt = (3.0 / (2.0 * loss_rate)).sqrt();
    Mbps::from_bytes_per_sec(pkts_per_rtt * mss_bytes as f64 / rtt_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn mean_of_runs(cfg: FlowConfig, discard: f64, runs: usize, all: bool) -> f64 {
        let sim = TcpSimulator::new(cfg);
        let mut r = rng(11);
        let total: f64 = (0..runs)
            .map(|_| {
                let s = sim.run(discard, &mut r);
                if all {
                    s.mean_all.0
                } else {
                    s.mean_steady.0
                }
            })
            .sum();
        total / runs as f64
    }

    #[test]
    fn lossless_single_flow_fills_small_pipe() {
        let cfg = FlowConfig::new(1, 10.0, 0.02, Mbps(100.0));
        let v = mean_of_runs(cfg, 2.0, 10, false);
        assert!(v > 85.0 && v <= 100.0, "steady {v}");
    }

    #[test]
    fn throughput_never_exceeds_bottleneck() {
        let mut r = rng(3);
        for &(flows, rate) in &[(1usize, 50.0), (4, 200.0), (8, 1000.0)] {
            let cfg = FlowConfig::new(flows, 8.0, 0.015, Mbps(rate)).with_loss(1e-4);
            let s = TcpSimulator::new(cfg).run(1.0, &mut r);
            assert!(s.mean_all.0 <= rate + 1e-9, "{} > {rate}", s.mean_all);
            assert!(s.mean_steady.0 <= rate + 1e-9);
        }
    }

    #[test]
    fn single_flow_hits_mathis_ceiling_on_fat_pipe() {
        // 1 Gbps pipe, 15 ms RTT, p = 1e-4 → ceiling ≈ 98 Mbps; the single
        // flow must land well below the pipe and near the ceiling.
        let loss = 1e-4;
        let ceiling = mathis_ceiling(1500, 0.015, loss).0;
        let cfg = FlowConfig::new(1, 15.0, 0.015, Mbps(1000.0)).with_loss(loss);
        let v = mean_of_runs(cfg, 2.0, 30, false);
        assert!(v < 0.35 * 1000.0, "single flow {v} should not fill the pipe");
        assert!(
            (0.4 * ceiling..2.0 * ceiling).contains(&v),
            "single flow {v} should be near the Mathis ceiling {ceiling}"
        );
    }

    #[test]
    fn multiple_flows_beat_one_on_lossy_fat_pipe() {
        let loss = 1e-4;
        let one = mean_of_runs(
            FlowConfig::new(1, 15.0, 0.015, Mbps(800.0)).with_loss(loss),
            2.0,
            20,
            false,
        );
        let eight = mean_of_runs(
            FlowConfig::new(8, 15.0, 0.015, Mbps(800.0)).with_loss(loss),
            2.0,
            20,
            false,
        );
        assert!(eight > one * 1.5, "8 flows ({eight}) should clearly beat 1 flow ({one})");
    }

    #[test]
    fn whole_transfer_average_lags_steady_state() {
        // Slow start eats into the front of the transfer; on a pipe the
        // flow can sustain (below its Mathis ceiling) the NDT-style
        // whole-duration mean must not exceed the ramp-discarded mean.
        let cfg = FlowConfig::new(1, 10.0, 0.02, Mbps(100.0)).with_loss(2e-5);
        let sim = TcpSimulator::new(cfg);
        let mut r = rng(7);
        let (mut all_sum, mut steady_sum) = (0.0, 0.0);
        for _ in 0..40 {
            let s = sim.run(2.0, &mut r);
            all_sum += s.mean_all.0;
            steady_sum += s.mean_steady.0;
        }
        assert!(
            all_sum <= steady_sum * 1.02,
            "mean all {} vs mean steady {}",
            all_sum / 40.0,
            steady_sum / 40.0
        );
    }

    #[test]
    fn rwnd_caps_throughput() {
        // 64 KB total window at 20 ms RTT → ~26 Mbps cap on a 1 Gbps pipe.
        let cfg = FlowConfig::new(1, 10.0, 0.02, Mbps(1000.0)).with_rwnd_total(64.0 * 1024.0);
        let v = mean_of_runs(cfg, 1.0, 10, false);
        let cap = 64.0 * 1024.0 * 8.0 / 0.02 / 1e6;
        assert!(v <= cap * 1.05, "throughput {v} exceeds window cap {cap}");
        assert!(v > cap * 0.5, "throughput {v} far below window cap {cap}");
    }

    #[test]
    fn loss_events_increase_with_loss_rate() {
        let mut r = rng(13);
        let mut run = |loss| {
            let cfg = FlowConfig::new(4, 10.0, 0.02, Mbps(500.0)).with_loss(loss);
            TcpSimulator::new(cfg).run(0.0, &mut r).loss_events
        };
        let lo: u64 = (0..10).map(|_| run(1e-6)).sum();
        let hi: u64 = (0..10).map(|_| run(1e-3)).sum();
        assert!(hi > lo, "loss events lo={lo} hi={hi}");
    }

    #[test]
    fn higher_rtt_slows_single_flow() {
        let loss = 5e-5;
        let near = mean_of_runs(
            FlowConfig::new(1, 15.0, 0.010, Mbps(900.0)).with_loss(loss),
            2.0,
            20,
            false,
        );
        let far = mean_of_runs(
            FlowConfig::new(1, 15.0, 0.060, Mbps(900.0)).with_loss(loss),
            2.0,
            20,
            false,
        );
        assert!(far < near, "far-RTT {far} should be below near-RTT {near}");
    }

    #[test]
    fn mathis_formula_spot_check() {
        // MSS 1500 B, RTT 15 ms, p 2e-5: sqrt(3/4e-5) ≈ 273.9 pkts/RTT
        // → 273.9 * 1500 * 8 / 0.015 ≈ 219 Mbps.
        let m = mathis_ceiling(1500, 0.015, 2e-5);
        assert!((m.0 - 219.0).abs() < 5.0, "ceiling {m}");
    }

    #[test]
    fn result_fields_are_consistent() {
        let cfg = FlowConfig::new(2, 5.0, 0.025, Mbps(100.0));
        let s = TcpSimulator::new(cfg).run(1.0, &mut rng(1));
        assert_eq!(s.rounds, (5.0f64 / 0.025).ceil() as usize);
        assert!(s.ramp_discard_s <= 5.0 * 0.8);
        assert!(s.mean_all.is_valid() && s.mean_steady.is_valid());
        assert!(s.loaded_rtt_s >= 0.025, "loaded RTT below base: {}", s.loaded_rtt_s);
    }

    #[test]
    fn loaded_rtt_grows_with_offered_load() {
        // A transfer that saturates the pipe keeps the buffer occupied;
        // an rwnd-limited one never queues.
        let mut r = rng(31);
        let saturating = FlowConfig::new(8, 10.0, 0.02, Mbps(100.0));
        let s1 = TcpSimulator::new(saturating).run(1.0, &mut r);
        let limited = FlowConfig::new(1, 10.0, 0.02, Mbps(100.0)).with_rwnd_total(32.0 * 1024.0); // ~13 Mbps cap, pipe never fills
        let s2 = TcpSimulator::new(limited).run(1.0, &mut r);
        assert!(
            s1.loaded_rtt_s > s2.loaded_rtt_s + 0.002,
            "saturating {} vs limited {}",
            s1.loaded_rtt_s,
            s2.loaded_rtt_s
        );
        // Queueing delay is bounded by one buffer's worth (1 BDP = 1 RTT).
        assert!(s1.loaded_rtt_s <= 0.02 * 2.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "need at least one flow")]
    fn zero_flows_rejected() {
        let _ = FlowConfig::new(0, 1.0, 0.01, Mbps(10.0));
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1)")]
    fn bad_loss_rejected() {
        let _ = FlowConfig::new(1, 1.0, 0.01, Mbps(10.0)).with_loss(1.0);
    }

    #[test]
    fn traced_run_matches_untraced_and_covers_every_round() {
        let cfg = FlowConfig::new(2, 5.0, 0.02, Mbps(200.0)).with_loss(1e-5);
        let sim = TcpSimulator::new(cfg);
        let a = TcpSimulator::new(sim.cfg.clone()).run(1.0, &mut rng(5));
        let (b, trace) = sim.run_traced(1.0, &mut rng(5));
        assert_eq!(a, b, "tracing must not change the simulation");
        assert_eq!(trace.len(), b.rounds);
        // Trace invariants: time strictly increasing, rates bounded.
        for w in trace.windows(2) {
            assert!(w[0].t_s < w[1].t_s);
        }
        for p in &trace {
            assert!(p.rate.is_valid());
            assert!(p.rate.0 <= 200.0 + 1e-9);
            assert!(p.cwnd_pkts > 0.0);
        }
    }

    #[test]
    fn cubic_window_function_shape() {
        // At t = 0 the window is the post-loss floor (beta * w_max);
        // it regrows to w_max at t = K and overshoots afterwards.
        let w_max = 100.0;
        let k = (w_max * 0.3 / 0.4_f64).cbrt();
        assert!((cubic_window(w_max, 0.0) - 70.0).abs() < 1e-9);
        assert!((cubic_window(w_max, k) - w_max).abs() < 1e-9);
        assert!(cubic_window(w_max, k + 1.0) > w_max);
    }

    #[test]
    fn cubic_beats_reno_single_flow_at_high_bdp() {
        // CUBIC's real-time (RTT-independent) growth wins at larger RTTs;
        // 40 ms x 900 Mbps is a 3000-packet BDP.
        let loss = 5e-5;
        let run_cc = |cc: CongestionControl| {
            let cfg = FlowConfig::new(1, 15.0, 0.04, Mbps(900.0))
                .with_loss(loss)
                .with_congestion_control(cc);
            mean_of_runs(cfg, 2.0, 25, false)
        };
        let reno = run_cc(CongestionControl::Reno);
        let cubic = run_cc(CongestionControl::Cubic);
        assert!(cubic > reno * 1.3, "CUBIC {cubic} should out-recover Reno {reno} at high BDP");
    }

    #[test]
    fn cubic_is_tcp_friendly_at_short_rtt() {
        // On a 15 ms path CUBIC must stay within a modest factor of Reno
        // (the RFC 8312 friendly region), not collapse below it.
        let loss = 1e-4;
        let run_cc = |cc: CongestionControl| {
            let cfg = FlowConfig::new(1, 15.0, 0.015, Mbps(900.0))
                .with_loss(loss)
                .with_congestion_control(cc);
            mean_of_runs(cfg, 2.0, 25, false)
        };
        let reno = run_cc(CongestionControl::Reno);
        let cubic = run_cc(CongestionControl::Cubic);
        assert!(cubic > reno * 0.8, "CUBIC {cubic} should stay near Reno {reno} at short RTT");
    }

    #[test]
    fn cubic_single_flow_still_lags_multi_flow() {
        // CUBIC narrows the NDT gap but does not close it.
        let loss = 1e-4;
        let one = mean_of_runs(
            FlowConfig::new(1, 15.0, 0.015, Mbps(900.0))
                .with_loss(loss)
                .with_congestion_control(CongestionControl::Cubic),
            2.0,
            25,
            false,
        );
        let eight = mean_of_runs(
            FlowConfig::new(8, 15.0, 0.015, Mbps(900.0))
                .with_loss(loss)
                .with_congestion_control(CongestionControl::Cubic),
            2.0,
            25,
            false,
        );
        assert!(eight > one * 1.1, "8 CUBIC flows {eight} vs 1 {one}");
    }

    #[test]
    fn cubic_respects_the_bottleneck_and_window() {
        let mut r = rng(77);
        let cfg = FlowConfig::new(2, 8.0, 0.02, Mbps(300.0))
            .with_loss(1e-4)
            .with_rwnd_total(256.0 * 1024.0)
            .with_congestion_control(CongestionControl::Cubic);
        for _ in 0..10 {
            let s = TcpSimulator::new(cfg.clone()).run(1.0, &mut r);
            assert!(s.mean_all.0 <= 300.0 + 1e-9);
            let window_cap = 256.0 * 1024.0 * 8.0 / 0.02 / 1e6;
            assert!(s.mean_steady.0 <= window_cap * 1.05 + 0.5);
        }
    }
}
