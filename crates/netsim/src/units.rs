//! Rate units.
//!
//! Throughput values flow through every crate in the workspace; a newtype
//! keeps Mbps from being confused with bytes/sec or packets/RTT at crate
//! boundaries while still being cheap to compute with.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Megabits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Mbps(pub f64);

impl Mbps {
    /// Zero rate.
    pub const ZERO: Mbps = Mbps(0.0);

    /// Construct from a bytes-per-second figure.
    pub fn from_bytes_per_sec(bps: f64) -> Mbps {
        Mbps(bps * 8.0 / 1e6)
    }

    /// Construct from bits per second.
    pub fn from_bits_per_sec(bits: f64) -> Mbps {
        Mbps(bits / 1e6)
    }

    /// The rate in bits per second.
    pub fn bits_per_sec(self) -> f64 {
        self.0 * 1e6
    }

    /// The rate in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 * 1e6 / 8.0
    }

    /// How many `mss`-byte packets per second this rate carries.
    pub fn packets_per_sec(self, mss_bytes: usize) -> f64 {
        self.bytes_per_sec() / mss_bytes as f64
    }

    /// Pointwise minimum.
    pub fn min(self, other: Mbps) -> Mbps {
        Mbps(self.0.min(other.0))
    }

    /// Pointwise maximum.
    pub fn max(self, other: Mbps) -> Mbps {
        Mbps(self.0.max(other.0))
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: Mbps, hi: Mbps) -> Mbps {
        Mbps(self.0.clamp(lo.0, hi.0))
    }

    /// True if the value is finite and non-negative — the invariant every
    /// model in this crate maintains.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl fmt::Display for Mbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Mbps", self.0)
    }
}

impl Add for Mbps {
    type Output = Mbps;
    fn add(self, rhs: Mbps) -> Mbps {
        Mbps(self.0 + rhs.0)
    }
}

impl AddAssign for Mbps {
    fn add_assign(&mut self, rhs: Mbps) {
        self.0 += rhs.0;
    }
}

impl Sub for Mbps {
    type Output = Mbps;
    fn sub(self, rhs: Mbps) -> Mbps {
        Mbps(self.0 - rhs.0)
    }
}

impl Mul<f64> for Mbps {
    type Output = Mbps;
    fn mul(self, rhs: f64) -> Mbps {
        Mbps(self.0 * rhs)
    }
}

impl Div<f64> for Mbps {
    type Output = Mbps;
    fn div(self, rhs: f64) -> Mbps {
        Mbps(self.0 / rhs)
    }
}

impl Div<Mbps> for Mbps {
    /// Ratio of two rates (dimensionless) — the paper's
    /// "normalized download speed".
    type Output = f64;
    fn div(self, rhs: Mbps) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let r = Mbps(100.0);
        assert_eq!(Mbps::from_bits_per_sec(r.bits_per_sec()), r);
        assert_eq!(Mbps::from_bytes_per_sec(r.bytes_per_sec()), r);
    }

    #[test]
    fn packets_per_sec_at_1500_mss() {
        // 12 Mbps = 1.5 MB/s = 1000 pkts/s at 1500 B.
        let pps = Mbps(12.0).packets_per_sec(1500);
        assert!((pps - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Mbps(3.0) + Mbps(4.0), Mbps(7.0));
        assert_eq!(Mbps(10.0) - Mbps(4.0), Mbps(6.0));
        assert_eq!(Mbps(10.0) * 0.5, Mbps(5.0));
        assert_eq!(Mbps(10.0) / 2.0, Mbps(5.0));
        assert_eq!(Mbps(50.0) / Mbps(100.0), 0.5);
    }

    #[test]
    fn min_max_clamp() {
        assert_eq!(Mbps(3.0).min(Mbps(5.0)), Mbps(3.0));
        assert_eq!(Mbps(3.0).max(Mbps(5.0)), Mbps(5.0));
        assert_eq!(Mbps(7.0).clamp(Mbps(0.0), Mbps(5.0)), Mbps(5.0));
    }

    #[test]
    fn validity() {
        assert!(Mbps(0.0).is_valid());
        assert!(!Mbps(-1.0).is_valid());
        assert!(!Mbps(f64::NAN).is_valid());
        assert!(!Mbps(f64::INFINITY).is_valid());
    }

    #[test]
    fn display_formats_with_unit() {
        assert_eq!(Mbps(12.345).to_string(), "12.35 Mbps");
    }
}
