#![warn(missing_docs)]
//! Flow-level network simulator for residential broadband paths.
//!
//! The paper's datasets are gated, so this crate rebuilds the *physics* that
//! produced them: everything between a speed-test server and a user device.
//! A measurement in this workspace is the output of composing four models:
//!
//! ```text
//!  server ── access link ── home router ── (WiFi | Ethernet) ── device
//!              [`link`]                      [`wifi`]           [`device`]
//!              plan cap ×                    band + RSSI →      kernel memory →
//!              over-provisioning,            PHY rate, MAC      TCP buffer cap
//!              cross-traffic                 efficiency,
//!                                            contention
//! ```
//!
//! driven end-to-end by the TCP throughput model in [`tcp`], which simulates
//! per-RTT congestion-window evolution for one or many concurrent flows.
//! The vendor gap the paper measures in §6.3 (single-flow NDT under-reports
//! vs. multi-flow Ookla) and every local-factor effect in §6.1 emerge from
//! these models rather than being painted onto the data.
//!
//! [`path::NetworkPath`] composes the pieces and is what the `st-speedtest`
//! methodologies measure.

pub mod device;
pub mod link;
pub mod path;
pub mod rtt;
pub mod tcp;
pub mod units;
pub mod wifi;

pub use device::{DeviceProfile, MemoryClass};
pub use link::{AccessLink, Technology};
pub use path::{AccessMedium, NetworkPath};
pub use rtt::RttModel;
pub use tcp::{CongestionControl, FlowConfig, TcpSimulator, ThroughputSample};
pub use units::Mbps;
pub use wifi::{Band, WifiLink};
