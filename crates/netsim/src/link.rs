//! The access link: the provisioned last-mile connection.
//!
//! Models what the MBA whiteboxes see directly (paper §3.3): a plan with a
//! download/upload cap, ISP over-provisioning above the advertised rate
//! (the paper's Tier 1–3 clusters sit *above* the plan speeds, §4.3), a
//! saturation shortfall at gigabit rates (the Tier 6 cluster mean of
//! 892 Mbps against a 1200 Mbps plan), cross-traffic from the household,
//! and a mild diurnal congestion factor (§6.2 finds it small).

use crate::units::Mbps;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// Last-mile access technology. The plant determines over-provisioning
/// behaviour and residual loss: DOCSIS cable plants over-provision mid
/// tiers but fall short of gigabit caps; PON fiber delivers the plan with
/// minimal noise at every rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Technology {
    /// Hybrid fiber-coax cable (the paper's dominant ISPs).
    #[default]
    Docsis,
    /// Passive optical network fiber.
    Fiber,
}

/// A provisioned access link for one subscriber.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessLink {
    /// Advertised download cap.
    pub down_plan: Mbps,
    /// Advertised upload cap.
    pub up_plan: Mbps,
    /// This subscriber's over-provisioning factor (sampled once per home;
    /// ISPs provision the *modem*, not the test).
    pub overprovision: f64,
    /// Mean fraction of capacity consumed by other household traffic.
    pub cross_traffic_mean: f64,
    /// Per-packet loss rate intrinsic to the access network.
    pub base_loss: f64,
    /// The last-mile technology.
    pub technology: Technology,
}

impl AccessLink {
    /// Build a link for a plan, sampling the per-home over-provisioning.
    ///
    /// Over-provisioning is drawn once per home: ~8% median uplift,
    /// diminishing at gigabit rates where DOCSIS plant and test servers
    /// both struggle to saturate (paper §4.3, Tier 6).
    pub fn provision<R: Rng + ?Sized>(down_plan: Mbps, up_plan: Mbps, rng: &mut R) -> Self {
        Self::provision_with(down_plan, up_plan, Technology::Docsis, rng)
    }

    /// Build a link for a plan on a specific last-mile technology.
    pub fn provision_with<R: Rng + ?Sized>(
        down_plan: Mbps,
        up_plan: Mbps,
        technology: Technology,
        rng: &mut R,
    ) -> Self {
        assert!(down_plan.0 > 0.0 && up_plan.0 > 0.0, "plan rates must be positive");
        let (overprovision, base_loss) = match technology {
            Technology::Docsis => {
                let op_dist = LogNormal::new(0.08_f64.ln_1p(), 0.05).expect("valid sigma");
                let mut op = op_dist.sample(rng);
                // Saturation shortfall: ≥800 Mbps plans deliver below cap.
                if down_plan.0 >= 800.0 {
                    let shortfall = 0.78 + rng.gen::<f64>() * 0.12; // 0.78–0.90
                    op = op.min(shortfall);
                }
                (op, 2e-5)
            }
            Technology::Fiber => {
                // PON delivers at/just above plan at every rate, with an
                // order of magnitude less residual loss.
                let op_dist = LogNormal::new(0.03_f64.ln_1p(), 0.02).expect("valid sigma");
                (op_dist.sample(rng), 2e-6)
            }
        };
        AccessLink {
            down_plan,
            up_plan,
            overprovision,
            cross_traffic_mean: 0.05,
            base_loss,
            technology,
        }
    }

    /// Provisioned (deliverable) downstream capacity for this home.
    pub fn down_capacity(&self) -> Mbps {
        self.down_plan * self.overprovision.max(0.01)
    }

    /// Provisioned upstream capacity. Upload over-provisioning mirrors the
    /// downstream factor but never the gigabit shortfall (upload caps are
    /// tiny, §4.1), so upstream clusters sit tightly at/above plan rates.
    pub fn up_capacity(&self) -> Mbps {
        let op = if self.overprovision < 1.0 { 1.04 } else { self.overprovision };
        self.up_plan * op
    }

    /// Sample the downstream rate *available to a test right now*:
    /// capacity minus cross-traffic, scaled by the diurnal factor for
    /// `hour` (0–23, local).
    pub fn sample_down_available<R: Rng + ?Sized>(&self, hour: u8, rng: &mut R) -> Mbps {
        let cross = sample_cross_traffic(self.cross_traffic_mean, rng);
        self.down_capacity() * (1.0 - cross) * diurnal_factor(hour)
    }

    /// Sample the upstream rate available to a test right now.
    pub fn sample_up_available<R: Rng + ?Sized>(&self, hour: u8, rng: &mut R) -> Mbps {
        // Upstream cross-traffic is rarer (few home uploads compete).
        let cross = sample_cross_traffic(self.cross_traffic_mean * 0.5, rng);
        self.up_capacity() * (1.0 - cross) * diurnal_factor(hour).max(0.97)
    }
}

/// Fraction of capacity lost to other flows in the household: usually near
/// zero, occasionally substantial (someone is streaming 4K during the test).
/// A `mean` below 1% models a measurement host that defers to cross-traffic
/// (the MBA whitebox design) and never sees the heavy branch.
fn sample_cross_traffic<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    // Mixture: 85% of tests see almost nothing, 15% see an Exp-ish chunk.
    if mean < 0.01 || rng.gen::<f64>() < 0.85 {
        rng.gen::<f64>() * mean
    } else {
        (mean + rng.gen::<f64>() * 0.35).min(0.6)
    }
}

/// Diurnal access-network congestion factor. The paper (§6.2) finds time of
/// day "does not play a meaningful role" — normalized medians move from
/// ~0.53 at 00-06 to ~0.45 in the afternoon for one tier, i.e. a few
/// percent of plan at the shared plant. We model a mild dip in the evening
/// busy hours and flat otherwise.
pub fn diurnal_factor(hour: u8) -> f64 {
    match hour % 24 {
        0..=5 => 1.0,
        6..=11 => 0.985,
        12..=17 => 0.975,
        _ => 0.96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn overprovision_uplifts_mid_tiers() {
        let mut r = rng();
        let mut ops = Vec::new();
        for _ in 0..2000 {
            let l = AccessLink::provision(Mbps(200.0), Mbps(5.0), &mut r);
            ops.push(l.overprovision);
        }
        let mean: f64 = ops.iter().sum::<f64>() / ops.len() as f64;
        assert!((1.04..1.14).contains(&mean), "mean op {mean}");
        // Delivered capacity ends up above plan, like MBA Tier 2/3 (§4.3).
        let l = AccessLink::provision(Mbps(200.0), Mbps(5.0), &mut r);
        assert!(l.down_capacity().0 > 190.0);
    }

    #[test]
    fn gigabit_plans_fall_short_of_cap() {
        let mut r = rng();
        let mut caps = Vec::new();
        for _ in 0..500 {
            let l = AccessLink::provision(Mbps(1200.0), Mbps(35.0), &mut r);
            caps.push(l.down_capacity().0);
        }
        let mean: f64 = caps.iter().sum::<f64>() / caps.len() as f64;
        assert!(mean < 1150.0, "gigabit mean capacity {mean} should undershoot plan");
        assert!(mean > 850.0, "but not collapse: {mean}");
    }

    #[test]
    fn upload_capacity_at_or_above_plan() {
        let mut r = rng();
        for _ in 0..500 {
            let l = AccessLink::provision(Mbps(1200.0), Mbps(35.0), &mut r);
            assert!(l.up_capacity().0 >= 35.0, "upload {}", l.up_capacity());
            assert!(l.up_capacity().0 <= 35.0 * 1.25);
        }
    }

    #[test]
    fn available_rate_never_exceeds_capacity() {
        let mut r = rng();
        let l = AccessLink::provision(Mbps(400.0), Mbps(10.0), &mut r);
        for hour in 0..24u8 {
            for _ in 0..50 {
                let d = l.sample_down_available(hour, &mut r);
                assert!(d.is_valid());
                assert!(d.0 <= l.down_capacity().0 + 1e-9);
                let u = l.sample_up_available(hour, &mut r);
                assert!(u.is_valid());
                assert!(u.0 <= l.up_capacity().0 + 1e-9);
            }
        }
    }

    #[test]
    fn diurnal_effect_is_mild() {
        let lo = diurnal_factor(20);
        let hi = diurnal_factor(3);
        assert!(hi > lo);
        assert!(hi - lo < 0.06, "diurnal swing should be small: {} vs {}", hi, lo);
    }

    #[test]
    fn cross_traffic_mostly_negligible() {
        let mut r = rng();
        let samples: Vec<f64> = (0..5000).map(|_| sample_cross_traffic(0.05, &mut r)).collect();
        let negligible = samples.iter().filter(|&&c| c < 0.05).count();
        assert!(negligible as f64 / samples.len() as f64 > 0.8);
        assert!(samples.iter().all(|&c| (0.0..=0.6).contains(&c)));
    }

    #[test]
    fn fiber_delivers_gigabit_plans_without_shortfall() {
        let mut r = rng();
        let mut caps = Vec::new();
        for _ in 0..500 {
            let l = AccessLink::provision_with(Mbps(940.0), Mbps(30.0), Technology::Fiber, &mut r);
            assert_eq!(l.technology, Technology::Fiber);
            assert!(l.base_loss < 1e-5);
            caps.push(l.down_capacity().0);
        }
        let mean: f64 = caps.iter().sum::<f64>() / caps.len() as f64;
        assert!(
            (940.0..=1000.0).contains(&mean),
            "fiber gigabit mean capacity {mean} should sit at/above plan"
        );
    }

    #[test]
    fn docsis_is_the_default_technology() {
        let mut r = rng();
        let l = AccessLink::provision(Mbps(100.0), Mbps(5.0), &mut r);
        assert_eq!(l.technology, Technology::Docsis);
    }

    #[test]
    #[should_panic(expected = "plan rates must be positive")]
    fn zero_plan_rejected() {
        let _ = AccessLink::provision(Mbps(0.0), Mbps(5.0), &mut rng());
    }
}
