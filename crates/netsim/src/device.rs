//! Device-side constraints on measured throughput.
//!
//! The paper (§6.1, "Kernel Memory") shows that the memory available to the
//! device kernel during a test moves the median normalized download speed
//! from 0.16 (<2 GB) to 0.53 (>6 GB). The mechanism is TCP receive-buffer
//! autotuning: a memory-pressured kernel caps socket buffers, and a capped
//! receive window caps throughput at `rwnd / RTT` regardless of how fast
//! the path is. Low-memory devices additionally hit packet-processing
//! limits (cf. Li et al., CoNEXT '16 on smartphone measurement inflation).

use crate::units::Mbps;
use rand::Rng;
use serde::Serialize;

/// Kernel-memory bins used throughout the paper's Fig. 9d analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum MemoryClass {
    /// Less than 2 GB available to the kernel.
    Under2G,
    /// 2–4 GB.
    G2To4,
    /// 4–6 GB.
    G4To6,
    /// More than 6 GB.
    Over6G,
}

impl MemoryClass {
    /// Bin a memory amount in gigabytes.
    pub fn from_gb(gb: f64) -> Self {
        match () {
            _ if gb < 2.0 => MemoryClass::Under2G,
            _ if gb < 4.0 => MemoryClass::G2To4,
            _ if gb < 6.0 => MemoryClass::G4To6,
            _ => MemoryClass::Over6G,
        }
    }

    /// Label used in analysis output.
    pub fn label(&self) -> &'static str {
        match self {
            MemoryClass::Under2G => "< 2 GB",
            MemoryClass::G2To4 => "2 GB - 4 GB",
            MemoryClass::G4To6 => "4 GB - 6 GB",
            MemoryClass::Over6G => "> 6 GB",
        }
    }

    /// All bins, ascending.
    pub fn all() -> [MemoryClass; 4] {
        [MemoryClass::Under2G, MemoryClass::G2To4, MemoryClass::G4To6, MemoryClass::Over6G]
    }
}

/// A measuring device's resource profile during one test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Memory available to the kernel, GB.
    pub kernel_memory_gb: f64,
    /// Maximum TCP receive/send buffer the kernel will autotune to, bytes.
    pub max_tcp_buffer_bytes: f64,
    /// Raw packet-processing ceiling of the device, independent of windows.
    pub processing_cap: Mbps,
}

impl DeviceProfile {
    /// Build a profile from available kernel memory, sampling the
    /// within-bin variation (different OEM kernel configs).
    pub fn from_memory<R: Rng + ?Sized>(kernel_memory_gb: f64, rng: &mut R) -> Self {
        assert!(kernel_memory_gb.is_finite() && kernel_memory_gb > 0.0, "memory must be positive");
        let jitter = 0.75 + rng.gen::<f64>() * 0.5; // ×0.75–1.25
        let (buffer, cap) = match MemoryClass::from_gb(kernel_memory_gb) {
            // A memory-pressured kernel clamps tcp_rmem hard, and the
            // budget SoCs that ship with <2 GB cannot push much beyond
            // ~60 Mbps of TCP payload through their network stack (cf.
            // Li et al., CoNEXT '16 on smartphone measurement limits).
            MemoryClass::Under2G => (128.0 * 1024.0, 60.0),
            MemoryClass::G2To4 => (1.5 * 1024.0 * 1024.0, 900.0),
            MemoryClass::G4To6 => (3.0 * 1024.0 * 1024.0, 1400.0),
            MemoryClass::Over6G => (6.0 * 1024.0 * 1024.0, 2500.0),
        };
        DeviceProfile {
            kernel_memory_gb,
            max_tcp_buffer_bytes: buffer * jitter,
            processing_cap: Mbps(cap * jitter),
        }
    }

    /// An unconstrained profile (wired desktop, ample memory) for paths
    /// where the device should never be the bottleneck (e.g. MBA boxes).
    pub fn unconstrained() -> Self {
        DeviceProfile {
            kernel_memory_gb: 16.0,
            max_tcp_buffer_bytes: 16.0 * 1024.0 * 1024.0,
            processing_cap: Mbps(10_000.0),
        }
    }

    /// The memory bin this profile falls into.
    pub fn memory_class(&self) -> MemoryClass {
        MemoryClass::from_gb(self.kernel_memory_gb)
    }

    /// Receive-window throughput ceiling at a given RTT: `rwnd / RTT`.
    pub fn window_cap(&self, rtt_s: f64) -> Mbps {
        assert!(rtt_s > 0.0, "RTT must be positive");
        Mbps::from_bytes_per_sec(self.max_tcp_buffer_bytes / rtt_s)
    }

    /// The binding device-side ceiling for a test at `rtt_s`.
    pub fn throughput_cap(&self, rtt_s: f64) -> Mbps {
        self.window_cap(rtt_s).min(self.processing_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn memory_bins() {
        assert_eq!(MemoryClass::from_gb(1.0), MemoryClass::Under2G);
        assert_eq!(MemoryClass::from_gb(2.0), MemoryClass::G2To4);
        assert_eq!(MemoryClass::from_gb(5.9), MemoryClass::G4To6);
        assert_eq!(MemoryClass::from_gb(12.0), MemoryClass::Over6G);
        assert_eq!(MemoryClass::all().len(), 4);
    }

    #[test]
    fn caps_increase_with_memory() {
        let mut r = rng();
        let caps: Vec<f64> = [1.0, 3.0, 5.0, 8.0]
            .iter()
            .map(|&gb| {
                // Average over jitter.
                let s: f64 = (0..200)
                    .map(|_| DeviceProfile::from_memory(gb, &mut r).throughput_cap(0.02).0)
                    .sum();
                s / 200.0
            })
            .collect();
        for w in caps.windows(2) {
            assert!(w[0] < w[1], "caps not increasing: {caps:?}");
        }
    }

    #[test]
    fn low_memory_device_throttles_gigabit() {
        let mut r = rng();
        for _ in 0..200 {
            let d = DeviceProfile::from_memory(1.5, &mut r);
            let cap = d.throughput_cap(0.015);
            assert!(cap.0 < 300.0, "low-memory cap {cap} too generous");
        }
    }

    #[test]
    fn window_cap_scales_inversely_with_rtt() {
        let d = DeviceProfile::unconstrained();
        let near = d.window_cap(0.010);
        let far = d.window_cap(0.100);
        assert!((near.0 / far.0 - 10.0).abs() < 1e-6);
    }

    #[test]
    fn unconstrained_profile_never_binds_residential_rates() {
        let d = DeviceProfile::unconstrained();
        assert!(d.throughput_cap(0.03).0 > 1200.0);
    }

    #[test]
    #[should_panic(expected = "memory must be positive")]
    fn zero_memory_rejected() {
        let _ = DeviceProfile::from_memory(0.0, &mut rng());
    }

    #[test]
    #[should_panic(expected = "RTT must be positive")]
    fn zero_rtt_rejected() {
        let _ = DeviceProfile::unconstrained().window_cap(0.0);
    }
}
