//! Property-based tests for the network simulator's invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use st_netsim::tcp::{mathis_ceiling, FlowConfig, TcpSimulator};
use st_netsim::{
    AccessLink, AccessMedium, Band, DeviceProfile, Mbps, NetworkPath, RttModel, WifiLink,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tcp_throughput_never_exceeds_bottleneck(
        flows in 1usize..10,
        rate in 5.0f64..1500.0,
        rtt_ms in 4.0f64..80.0,
        loss_exp in 3.0f64..6.0,
        seed in 0u64..500,
    ) {
        let loss = 10f64.powf(-loss_exp);
        let cfg = FlowConfig::new(flows, 8.0, rtt_ms / 1000.0, Mbps(rate)).with_loss(loss);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = TcpSimulator::new(cfg).run(1.0, &mut rng);
        prop_assert!(s.mean_all.is_valid());
        prop_assert!(s.mean_steady.is_valid());
        prop_assert!(s.mean_all.0 <= rate + 1e-6, "{} > {rate}", s.mean_all);
        prop_assert!(s.mean_steady.0 <= rate + 1e-6);
    }

    #[test]
    fn tcp_respects_receive_window(
        rate in 100.0f64..1500.0,
        rwnd_kb in 32.0f64..512.0,
        seed in 0u64..200,
    ) {
        let rtt = 0.02;
        let cfg = FlowConfig::new(1, 8.0, rtt, Mbps(rate))
            .with_rwnd_total(rwnd_kb * 1024.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = TcpSimulator::new(cfg).run(1.0, &mut rng);
        let window_cap = rwnd_kb * 1024.0 * 8.0 / rtt / 1e6;
        prop_assert!(
            s.mean_steady.0 <= window_cap * 1.05 + 0.5,
            "steady {} vs window cap {window_cap}",
            s.mean_steady
        );
    }

    #[test]
    fn more_flows_never_hurt_much_on_lossy_paths(
        rate in 100.0f64..1000.0,
        seed in 0u64..100,
    ) {
        // Aggregate multi-flow throughput should be at least the single
        // flow's (averaged over a few runs to tame variance).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut avg = |flows: usize| {
            let cfg = FlowConfig::new(flows, 10.0, 0.02, Mbps(rate)).with_loss(1e-4);
            let sim = TcpSimulator::new(cfg);
            (0..5).map(|_| sim.run(2.0, &mut rng).mean_steady.0).sum::<f64>() / 5.0
        };
        let one = avg(1);
        let six = avg(6);
        prop_assert!(six >= one * 0.8, "6 flows {six} vs 1 flow {one}");
    }

    #[test]
    fn mathis_ceiling_decreases_with_loss_and_rtt(
        rtt_a in 5.0f64..50.0,
        extra_rtt in 1.0f64..50.0,
        loss_a in 1e-6f64..1e-3,
        loss_mult in 1.5f64..20.0,
    ) {
        let base = mathis_ceiling(1500, rtt_a / 1000.0, loss_a);
        let more_rtt = mathis_ceiling(1500, (rtt_a + extra_rtt) / 1000.0, loss_a);
        let more_loss = mathis_ceiling(1500, rtt_a / 1000.0, loss_a * loss_mult);
        prop_assert!(more_rtt.0 < base.0);
        prop_assert!(more_loss.0 < base.0);
    }

    #[test]
    fn wifi_capacity_and_loss_are_physical(
        rssi in -95.0f64..-20.0,
        seed in 0u64..200,
        band_is_5 in any::<bool>(),
    ) {
        let band = if band_is_5 { Band::G5 } else { Band::G2_4 };
        let link = WifiLink::new(band, rssi);
        let mut rng = StdRng::seed_from_u64(seed);
        let cap = link.sample_capacity(&mut rng);
        prop_assert!(cap.is_valid());
        prop_assert!(cap.0 > 0.0);
        prop_assert!(cap.0 < link.phy_rate().0);
        let loss = link.loss_rate();
        prop_assert!((0.0..=0.05).contains(&loss));
    }

    #[test]
    fn access_link_availability_is_bounded(
        down in 10.0f64..1500.0,
        up in 1.0f64..40.0,
        hour in 0u8..24,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let link = AccessLink::provision(Mbps(down), Mbps(up), &mut rng);
        let d = link.sample_down_available(hour, &mut rng);
        let u = link.sample_up_available(hour, &mut rng);
        prop_assert!(d.is_valid() && u.is_valid());
        prop_assert!(d.0 <= link.down_capacity().0 + 1e-9);
        prop_assert!(u.0 <= link.up_capacity().0 + 1e-9);
        prop_assert!(d.0 >= 0.0 && u.0 >= 0.0);
    }

    #[test]
    fn path_snapshot_is_internally_consistent(
        down in 25.0f64..1500.0,
        memory in 1.0f64..16.0,
        rssi in -90.0f64..-30.0,
        hour in 0u8..24,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let access = AccessLink::provision(Mbps(down), Mbps(10.0), &mut rng);
        let device = DeviceProfile::from_memory(memory, &mut rng);
        let path = NetworkPath::new(
            access,
            AccessMedium::Wifi(WifiLink::new(Band::G5, rssi)),
            device,
            RttModel::metro(),
        );
        let s = path.snapshot(hour, &mut rng);
        prop_assert!(s.down_available.is_valid());
        prop_assert!(s.up_available.is_valid());
        prop_assert!(s.rtt_s > 0.0 && s.rtt_s < 1.0);
        prop_assert!((0.0..=0.05).contains(&s.loss_rate));
        prop_assert!(s.rwnd_total_bytes > 0.0);
        // The device processing cap is honoured.
        prop_assert!(s.down_available.0 <= s.device_cap.0 + 1e-9);
    }
}
