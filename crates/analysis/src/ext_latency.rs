//! Extension experiment — latency under load ("working latency").
//!
//! Not a paper figure: the paper's recommendations (§8) call for richer
//! context on every measurement, and since its publication the FCC and
//! the IETF (RPM / "responsiveness") have pushed latency-under-load as
//! the next headline metric. The simulator tracks bufferbloat at the
//! bottleneck, so this module reports what the paper's pipeline *would*
//! have shown: working latency by tier group, access medium, and vendor.

use crate::context::{ecdf_series, CityAnalysis};
use crate::results::CdfResult;
use serde::Serialize;

/// Summary rows for the latency extension.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Median idle RTT across the Ookla campaign, ms.
    pub idle_median_ms: f64,
    /// Median loaded RTT, ms.
    pub loaded_median_ms: f64,
    /// Per tier group: `(label, median bufferbloat in ms)` — the added
    /// delay while the download saturates the path.
    pub bloat_by_group: Vec<(String, f64)>,
}

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

/// Compute loaded-latency CDFs (idle vs loaded) and per-group bufferbloat.
pub fn run(a: &CityAnalysis) -> (CdfResult, LatencySummary) {
    let store = &a.ookla;
    let (idle, loaded) = (store.rtt(), store.loaded_rtt());

    let mut series = Vec::new();
    let mut medians = Vec::new();
    for (label, vals) in [("Idle RTT", &idle), ("Loaded RTT", &loaded)] {
        if let Some((s, m)) = ecdf_series(label, &vals.contiguous()) {
            series.push(s);
            medians.push(m);
        }
    }

    let groups = a.catalog().tier_groups();
    let bloat_by_group = groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let bloat: Vec<f64> = store
                .group_sel(gi)
                .iter()
                .map(|i| (loaded.get(i) - idle.get(i)).max(0.0))
                .collect();
            (g.label(), median(bloat))
        })
        .collect();

    (
        CdfResult {
            id: "ext_latency".into(),
            title: format!("{}: idle vs loaded RTT (extension)", a.config.city.label()),
            x_label: "RTT (ms)".into(),
            series,
            medians: medians.clone(),
        },
        LatencySummary {
            idle_median_ms: medians.first().copied().unwrap_or(f64::NAN),
            loaded_median_ms: medians.get(1).copied().unwrap_or(f64::NAN),
            bloat_by_group,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.015, 97), 71)
    }

    #[test]
    fn loaded_rtt_exceeds_idle_rtt() {
        let (r, s) = run(&analysis());
        assert_eq!(r.series.len(), 2);
        assert!(
            s.loaded_median_ms > s.idle_median_ms,
            "loaded {} vs idle {}",
            s.loaded_median_ms,
            s.idle_median_ms
        );
        // The model's bottleneck buffer is one BDP, so working latency is
        // bounded by ~2x the idle RTT.
        assert!(s.loaded_median_ms < s.idle_median_ms * 2.5);
    }

    #[test]
    fn every_tier_group_reports_bloat() {
        let (_, s) = run(&analysis());
        assert_eq!(s.bloat_by_group.len(), 4);
        for (label, bloat) in &s.bloat_by_group {
            assert!(
                bloat.is_nan() || (0.0..=100.0).contains(bloat),
                "{label}: bufferbloat {bloat} ms"
            );
        }
        // At least one group has measurable bloat.
        assert!(s.bloat_by_group.iter().any(|(_, b)| *b > 0.5), "{:?}", s.bloat_by_group);
    }

    #[test]
    fn bloat_is_nonnegative_per_measurement() {
        let a = analysis();
        for (loaded, idle) in a.ookla.loaded_rtt().iter().zip(a.ookla.rtt().iter()) {
            assert!(*loaded >= idle - 1e-9, "loaded {loaded} < idle {idle}");
        }
    }
}
