//! Figure 11 — test volume per six-hour bin, per tier group (§6.2).
//!
//! The percentage of each tier group's Ookla tests that start in each
//! quarter of the day. The paper's finding: the profile is similar across
//! tiers — night is the quietest, afternoon/evening the busiest.

use crate::context::CityAnalysis;
use crate::results::SeriesData;
use crate::TableResult;
use serde::Serialize;
use st_speedtest::Measurement;

/// The per-group time-of-day volume profile.
#[derive(Debug, Clone, Serialize)]
pub struct TimeOfDayVolume {
    /// Bin labels ("00-06" ...).
    pub bins: Vec<String>,
    /// Per tier group: label plus percentage per bin.
    pub groups: Vec<SeriesData>,
}

/// Compute the Figure 11 volumes for a city.
pub fn run(a: &CityAnalysis) -> (TimeOfDayVolume, TableResult) {
    let tier_groups = a.catalog().tier_groups();
    let group_idx = a.ookla.group_idx();
    let time_bin = a.ookla.time_bin();
    let mut counts = vec![[0usize; 4]; tier_groups.len()];
    for (g, tb) in group_idx.iter().zip(time_bin.iter()) {
        if *g >= 0 {
            counts[*g as usize][*tb as usize] += 1;
        }
    }

    let bins: Vec<String> = (0..4).map(|b| Measurement::time_bin_label(b).to_string()).collect();
    let groups: Vec<SeriesData> = tier_groups
        .iter()
        .zip(&counts)
        .map(|(g, c)| {
            let total: usize = c.iter().sum();
            let pct: Vec<(f64, f64)> = c
                .iter()
                .enumerate()
                .map(|(b, &n)| {
                    (b as f64, if total == 0 { 0.0 } else { 100.0 * n as f64 / total as f64 })
                })
                .collect();
            SeriesData::new(g.label(), pct)
        })
        .collect();

    let rows = groups
        .iter()
        .map(|g| {
            let mut row = vec![g.label.clone()];
            row.extend(g.points.iter().map(|(_, p)| format!("{p:.1}%")));
            row
        })
        .collect();
    let mut headers = vec!["Tier group".to_string()];
    headers.extend(bins.clone());

    (
        TimeOfDayVolume { bins, groups },
        TableResult {
            id: "fig11".into(),
            title: format!("{}: share of tests per six-hour bin", a.config.city.label()),
            headers,
            rows,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.03, 79), 53)
    }

    #[test]
    fn percentages_sum_to_100_per_group() {
        let (vol, _) = run(&analysis());
        for g in &vol.groups {
            let total: f64 = g.points.iter().map(|(_, p)| p).sum();
            if total > 0.0 {
                assert!((total - 100.0).abs() < 1e-9, "{}: {total}", g.label);
            }
        }
    }

    #[test]
    fn night_is_quietest_afternoon_evening_busiest() {
        let (vol, _) = run(&analysis());
        for g in &vol.groups {
            let p: Vec<f64> = g.points.iter().map(|(_, v)| *v).collect();
            if p.iter().sum::<f64>() == 0.0 {
                continue;
            }
            assert!(p[0] < p[2] && p[0] < p[3], "{}: night not quietest {p:?}", g.label);
        }
    }

    #[test]
    fn profile_is_similar_across_tiers() {
        // §6.2: "not a significant difference in the percentage of speed
        // tests in each time bin by subscription tier".
        let (vol, _) = run(&analysis());
        let populous: Vec<&SeriesData> = vol
            .groups
            .iter()
            .filter(|g| g.points.iter().map(|(_, p)| p).sum::<f64>() > 0.0)
            .collect();
        assert!(populous.len() >= 3);
        for b in 0..4 {
            let shares: Vec<f64> = populous.iter().map(|g| g.points[b].1).collect();
            let lo = shares.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = shares.iter().cloned().fold(0.0f64, f64::max);
            assert!(hi - lo < 15.0, "bin {b} spread too wide: {shares:?}");
        }
    }

    #[test]
    fn table_rows_match_groups() {
        let (vol, table) = run(&analysis());
        assert_eq!(table.rows.len(), vol.groups.len());
        assert_eq!(table.headers.len(), 5);
    }
}
