#![warn(missing_docs)]
//! The paper's experiments, one module per table/figure.
//!
//! Each module consumes a generated [`st_datagen::CityDataset`] (wrapped in
//! a [`CityAnalysis`] that carries the fitted BST assignments) and returns
//! a serializable result struct holding exactly the rows/series the paper
//! reports, plus a text rendering. The `st-bench` crate's `repro` binary
//! drives every module and writes SVG/JSON/markdown artifacts.
//!
//! Experiment index (see DESIGN.md §4 for the full mapping):
//!
//! | Module      | Paper artifact                                        |
//! |-------------|-------------------------------------------------------|
//! | [`fig01`]   | Fig. 1 — motivating contextualized CDFs               |
//! | [`fig02`]   | Fig. 2 — consistency factor CDF                       |
//! | [`table1`]  | Table 1 — dataset sizes                               |
//! | [`table2`]  | Table 2 — BST upload accuracy on MBA                  |
//! | [`fig04`]   | Fig. 4 (+14) — MBA upload KDE                         |
//! | [`fig05`]   | Fig. 5 (+16–18) — MBA download KDE per upload cluster |
//! | [`fig06`]   | Fig. 6 (+15) — crowdsourced upload KDE                |
//! | [`table3`]  | Tables 3, 5–7 — upload clusters per platform          |
//! | [`fig07`]   | Fig. 7 — Android download KDE per upload cluster      |
//! | [`table4`]  | Table 4 — download cluster means per platform         |
//! | [`fig08`]   | Fig. 8 — per-user-month α CDF                         |
//! | [`fig09`]   | Fig. 9 — access type / band / RSSI / memory CDFs      |
//! | [`fig10`]   | Fig. 10 — Best vs Local-bottleneck                    |
//! | [`fig11`]   | Fig. 11 — test volume per 6-hour bin                  |
//! | [`fig12`]   | Fig. 12 — normalized download by time of day          |
//! | [`fig13`]   | Fig. 13 — Ookla vs M-Lab per tier                     |
//! | [`ext_latency`] | extension: latency under load (not in the paper)  |
//! | [`cities`]  | §2 cross-city comparison (aggregate vs structure)     |

pub mod cities;
pub mod context;
pub mod ext_latency;
pub mod fig01;
pub mod fig02;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod results;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod warm;

pub use context::CityAnalysis;
pub use results::{CdfResult, SeriesData, TableResult};
