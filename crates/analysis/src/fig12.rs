//! Figure 12 — normalized download speed by time of day (§6.2).
//!
//! For the two mid tier groups, CDFs of normalized download per six-hour
//! bin. The paper's finding: curves nearly coincide — time of day has
//! only a marginal effect (medians 0.53/0.46/0.45/0.46 for one tier).

use crate::context::{ecdf_series, CityAnalysis};
use crate::results::CdfResult;
use serde::Serialize;
use st_speedtest::Measurement;
use st_stats::ks_test;

/// Normalized downloads of one tier group, split by six-hour bin (one
/// pass over the group's memoized selection).
fn group_by_bin(a: &CityAnalysis, gi: usize) -> [Vec<f64>; 4] {
    let nd = a.ookla.normalized_down();
    let time_bin = a.ookla.time_bin();
    let mut by_bin: [Vec<f64>; 4] = Default::default();
    for i in a.ookla.group_sel(gi).iter() {
        by_bin[time_bin.get(i) as usize].push(nd.get(i));
    }
    by_bin
}

/// One CDF panel per requested tier group index.
pub fn run(a: &CityAnalysis, group_indices: &[usize]) -> Vec<CdfResult> {
    let tier_groups = a.catalog().tier_groups();
    group_indices
        .iter()
        .filter_map(|&gi| {
            let group = tier_groups.get(gi)?;
            let by_bin = group_by_bin(a, gi);
            let mut series = Vec::new();
            let mut medians = Vec::new();
            for (b, vals) in by_bin.iter().enumerate() {
                if let Some((s, m)) = ecdf_series(Measurement::time_bin_label(b), vals) {
                    series.push(s);
                    medians.push(m);
                }
            }
            Some(CdfResult {
                id: format!("fig12_{}", group.label().replace(' ', "").to_lowercase()),
                title: format!(
                    "{}: normalized download by time of day, {}",
                    a.config.city.label(),
                    group.label()
                ),
                x_label: "Normalized Download Speed".into(),
                series,
                medians,
            })
        })
        .collect()
}

/// The default panels: the paper shows Tier 4 and Tier 5 (group indices
/// 1 and 2 for ISP-A).
pub fn run_default(a: &CityAnalysis) -> Vec<CdfResult> {
    run(a, &[1, 2])
}

/// Distribution-level check of the "time of day does not matter" claim:
/// the largest pairwise KS distance between any two time bins' normalized
/// download distributions, per tier group.
#[derive(Debug, Clone, Serialize)]
pub struct TimeOfDayKs {
    /// Tier-group label.
    pub group: String,
    /// The largest pairwise KS statistic across the four time bins.
    pub max_ks: f64,
    /// The bin pair achieving it.
    pub worst_pair: (String, String),
}

/// Compute the max pairwise KS distance per tier group.
pub fn ks_summary(a: &CityAnalysis, group_indices: &[usize]) -> Vec<TimeOfDayKs> {
    let tier_groups = a.catalog().tier_groups();
    group_indices
        .iter()
        .filter_map(|&gi| {
            let group = tier_groups.get(gi)?;
            let by_bin = group_by_bin(a, gi);
            let mut best: Option<TimeOfDayKs> = None;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    if by_bin[i].len() < 10 || by_bin[j].len() < 10 {
                        continue;
                    }
                    if let Ok(ks) = ks_test(&by_bin[i], &by_bin[j]) {
                        if best.as_ref().is_none_or(|b| ks.statistic > b.max_ks) {
                            best = Some(TimeOfDayKs {
                                group: group.label(),
                                max_ks: ks.statistic,
                                worst_pair: (
                                    Measurement::time_bin_label(i).to_string(),
                                    Measurement::time_bin_label(j).to_string(),
                                ),
                            });
                        }
                    }
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.04, 83), 59)
    }

    #[test]
    fn produces_panels_with_four_bins() {
        let rs = run_default(&analysis());
        assert_eq!(rs.len(), 2);
        for r in &rs {
            assert_eq!(
                r.series.len(),
                4,
                "{}: {:?}",
                r.id,
                r.series.iter().map(|s| &s.label).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn time_of_day_effect_is_marginal() {
        // The paper's core negative result: medians differ by < ~0.1
        // across bins within a tier.
        let rs = run_default(&analysis());
        for r in &rs {
            let lo = r.medians.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = r.medians.iter().cloned().fold(0.0f64, f64::max);
            assert!(hi - lo < 0.15, "{}: time-of-day median spread {lo}..{hi} too large", r.id);
        }
    }

    #[test]
    fn off_peak_is_never_worse() {
        let rs = run_default(&analysis());
        for r in &rs {
            // series[0] is 00-06 (off-peak); compare against the evening.
            // The night bin holds only ~10% of tests, so allow sampling
            // noise — the claim is "no systematic evening advantage".
            let night = r.medians[0];
            let evening = *r.medians.last().unwrap();
            assert!(
                night >= evening - 0.1,
                "{}: night {night} markedly below evening {evening}",
                r.id
            );
        }
    }

    #[test]
    fn ks_confirms_time_of_day_is_marginal() {
        // The paper's negative result as a distribution-level statement:
        // no pair of time bins differs by a *large* KS distance. (With a
        // mild diurnal factor in the model, small-but-nonzero distances
        // are expected — what matters is that no bin pair separates the
        // way e.g. the WiFi-band CDFs of Fig. 9b do, where KS is > 0.4.)
        let ks = ks_summary(&analysis(), &[1, 2]);
        assert!(!ks.is_empty());
        for k in &ks {
            assert!(
                k.max_ks < 0.2,
                "{}: bins {:?} differ by KS {}",
                k.group,
                k.worst_pair,
                k.max_ks
            );
        }
    }

    #[test]
    fn unknown_group_index_is_skipped() {
        let rs = run(&analysis(), &[99]);
        assert!(rs.is_empty());
    }
}
