//! Figure 7 — download density within each upload cluster, Ookla Android.
//!
//! Same construction as Fig. 5 but over crowdsourced Android tests: the
//! WiFi hop multiplies the download modes, so each group shows several
//! degradation clusters below the plan speeds.

use crate::context::CityAnalysis;
use crate::results::{DensityResult, SeriesData};
use st_speedtest::Platform;
use st_stats::{Bandwidth, KernelDensity};

/// One density figure per tier group, over Android tests.
pub fn run(a: &CityAnalysis) -> Vec<DensityResult> {
    let Some(model) = a.ookla_model(Platform::AndroidApp) else {
        return Vec::new();
    };
    let android = a.ookla.platform_sel(Platform::AndroidApp);

    let mut out = Vec::new();
    for (gi, group) in a.catalog().tier_groups().iter().enumerate() {
        // Android rows whose stage-1 upload cluster matched this group's
        // cap: the memoized per-cap selection narrowed to the platform.
        let members = a.ookla.cap_sel(gi).and(&android);
        if members.len() < 10 {
            continue;
        }
        let values = members.gather(&a.ookla.down());
        let mut series = Vec::new();
        if let Ok(kde) = KernelDensity::fit(&values, Bandwidth::Silverman) {
            if let Ok(grid) = kde.auto_grid(400) {
                series.push(SeriesData::new(group.label(), grid));
            }
        }
        out.push(DensityResult {
            id: format!("fig07_{}", group.label().replace(' ', "").to_lowercase()),
            title: format!(
                "{}: Android download density, {}",
                a.config.city.label(),
                group.label()
            ),
            x_label: "Download Speed (Mbps)".into(),
            series,
            plan_lines: a.catalog().plans_with_upload(group.up).iter().map(|p| p.down.0).collect(),
            cluster_means: model
                .downloads_for(group.up)
                .map(|d| d.component_means())
                .unwrap_or_default(),
            notes: Vec::new(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.02, 59), 31)
    }

    #[test]
    fn produces_group_figures_with_multiple_clusters() {
        let figs = run(&analysis());
        assert!(figs.len() >= 3, "got {}", figs.len());
        // Crowdsourced downloads are multi-modal: the single-plan groups
        // should recover more components than plans (§5.1).
        let multi =
            figs.iter().filter(|f| f.plan_lines.len() == 1 && f.cluster_means.len() > 1).count();
        assert!(multi >= 1, "no single-plan group showed degradation modes");
    }

    #[test]
    fn degraded_clusters_sit_below_plan() {
        let figs = run(&analysis());
        for f in &figs {
            let top_plan = f.plan_lines.iter().cloned().fold(0.0f64, f64::max);
            let below = f.cluster_means.iter().filter(|m| **m < top_plan * 0.8).count();
            if f.plan_lines.len() == 1 && f.cluster_means.len() >= 3 {
                assert!(below >= 1, "{}: no degradation cluster below plan {top_plan}", f.id);
            }
        }
    }
}
