//! Tables 3, 5, 6, 7 — upload-cluster counts and means per platform.
//!
//! For each platform's fitted BST model: the number of measurements whose
//! stage-1 component matched each upload cap, and the (weight-averaged)
//! component mean — the per-cell values of the paper's Table 3. Counts
//! come straight from the store's memoized cap assignments (one pass per
//! platform) instead of re-scanning the model's member lists per group.

use crate::context::CityAnalysis;
use crate::results::TableResult;
use serde::Serialize;
use st_speedtest::Platform;

/// One platform row of the table.
#[derive(Debug, Clone, Serialize)]
pub struct PlatformClusters {
    /// Platform label.
    pub platform: String,
    /// Per tier group: `(label, count, mean_mbps)`.
    pub groups: Vec<(String, usize, f64)>,
}

/// Compute the upload-cluster table for a city.
pub fn run(a: &CityAnalysis) -> (TableResult, Vec<PlatformClusters>) {
    let groups = a.catalog().tier_groups();
    let mut stats: Vec<PlatformClusters> = Vec::new();

    // Per-platform models in the paper's platform order. Counts use the
    // store's cap-index column restricted to the platform's memoized
    // selection; tier groups and upload caps share ascending order, so
    // group index == cap index.
    for platform in Platform::all() {
        let (model, counts) = if platform == Platform::NdtWeb {
            (a.mlab_model.as_ref(), a.mlab.cap_counts(&a.mlab.platform_sel(platform)))
        } else {
            (a.ookla_model(platform), a.ookla.cap_counts(&a.ookla.platform_sel(platform)))
        };
        let Some(model) = model else { continue };
        let row = PlatformClusters {
            platform: platform.label().to_string(),
            groups: groups
                .iter()
                .enumerate()
                .map(|(gi, g)| {
                    let mean = model.uploads.matched_mean(g.up).unwrap_or(f64::NAN);
                    (g.label(), counts[gi], mean)
                })
                .collect(),
        };
        stats.push(row);
    }

    let mut headers = vec!["Platform".to_string()];
    for g in &groups {
        headers.push(format!("{} #", g.label()));
        headers.push(format!("{} mean", g.label()));
    }
    let rows = stats
        .iter()
        .map(|s| {
            let mut row = vec![s.platform.clone()];
            for (_, count, mean) in &s.groups {
                row.push(count.to_string());
                row.push(if mean.is_nan() { "-".to_string() } else { format!("{mean:.2}") });
            }
            row
        })
        .collect();

    (
        TableResult {
            id: "table3".into(),
            title: format!(
                "{}: upload clusters per platform (counts and means, Mbps)",
                a.config.city.label()
            ),
            headers,
            rows,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis(city: City) -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(city, 0.012, 53), 29)
    }

    #[test]
    fn covers_major_platforms_and_groups() {
        let a = analysis(City::A);
        let (table, stats) = run(&a);
        assert!(
            stats.len() >= 3,
            "platforms: {:?}",
            stats.iter().map(|s| &s.platform).collect::<Vec<_>>()
        );
        // 4 tier groups for ISP-A → 1 + 8 columns.
        assert_eq!(table.headers.len(), 9);
        let labels: Vec<&str> = stats.iter().map(|s| s.platform.as_str()).collect();
        assert!(labels.contains(&"iOS-App"));
        assert!(labels.contains(&"Net-Web"));
        assert!(labels.contains(&"NDT-Web"));
    }

    #[test]
    fn counts_match_the_models_member_lists() {
        // The memoized cap counts must agree with what the fitted model
        // reports per matched cap — the two views of the same assignment.
        let a = analysis(City::A);
        let (_, stats) = run(&a);
        for platform in Platform::all() {
            let model = if platform == Platform::NdtWeb {
                a.mlab_model.as_ref()
            } else {
                a.ookla_model(platform)
            };
            let Some(model) = model else { continue };
            let row = stats.iter().find(|s| s.platform == platform.label()).unwrap();
            for ((_, count, _), g) in row.groups.iter().zip(a.catalog().tier_groups()) {
                assert_eq!(
                    *count,
                    model.uploads.members_of(g.up).len(),
                    "{}: group {}",
                    platform.label(),
                    g.label()
                );
            }
        }
    }

    #[test]
    fn means_sit_near_their_caps() {
        let a = analysis(City::A);
        let (_, stats) = run(&a);
        let caps = [5.0, 10.0, 15.0, 35.0];
        for s in &stats {
            for ((_, count, mean), cap) in s.groups.iter().zip(caps) {
                if *count >= 30 && !mean.is_nan() {
                    assert!(
                        (mean - cap).abs() < cap * 0.35 + 1.0,
                        "{}: group mean {mean} vs cap {cap}",
                        s.platform
                    );
                }
            }
        }
    }

    #[test]
    fn lower_tiers_dominate_test_volume() {
        // §5.1: "roughly half of these tests originate from the lowest
        // subscription tier" — the lowest group must hold the plurality.
        let a = analysis(City::A);
        let (_, stats) = run(&a);
        let ios = stats.iter().find(|s| s.platform == "iOS-App").unwrap();
        let counts: Vec<usize> = ios.groups.iter().map(|g| g.1).collect();
        let total: usize = counts.iter().sum();
        assert!(counts[0] as f64 / total as f64 > 0.3, "lowest group share {counts:?}");
    }

    #[test]
    fn works_for_other_cities_catalogs() {
        let a = analysis(City::D);
        let (table, stats) = run(&a);
        // ISP-D has 3 tier groups → 1 + 6 columns.
        assert_eq!(table.headers.len(), 7);
        assert!(!stats.is_empty());
    }
}
