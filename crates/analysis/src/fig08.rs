//! Figure 8 — per-user-month assignment consistency (α, §5.2).
//!
//! For every Ookla user with ≥5 assigned tests in a month, α is the
//! largest share of that month's tests assigned to one tier. The paper's
//! distribution skews hard toward 1 (median 1).

use crate::context::{ecdf_series, CityAnalysis};
use crate::results::CdfResult;
use st_bst::{alpha_values, AlphaConfig};

/// Compute the α CDF for a city's Ookla campaign.
pub fn run(a: &CityAnalysis) -> CdfResult {
    let months: Vec<usize> = a.ookla.month().iter().map(|&m| m as usize).collect();
    let alphas = alpha_values(
        &a.ookla.user_id().contiguous(),
        &months,
        &a.ookla.assigned_tier().contiguous(),
        &AlphaConfig::default(),
    );

    let mut series = Vec::new();
    let mut medians = Vec::new();
    if let Some((s, m)) = ecdf_series("alpha", &alphas) {
        series.push(s);
        medians.push(m);
    }

    CdfResult {
        id: "fig08".into(),
        title: format!("{}: per-user-month BST assignment consistency", a.config.city.label()),
        x_label: "alpha".into(),
        series,
        medians,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    #[test]
    fn alpha_skews_toward_one() {
        let a = CityAnalysis::new(CityDataset::generate(City::A, 0.03, 67), 41);
        let r = run(&a);
        assert_eq!(r.series.len(), 1, "some user-months must qualify");
        let median = r.medians[0];
        assert!(median >= 0.75, "alpha median {median} (paper: 1.0)");
        // All α values are valid shares.
        for (x, _) in &r.series[0].points {
            assert!((0.0..=1.0).contains(x));
        }
    }
}
