//! Table 2 — BST upload-tier accuracy on the MBA panels.
//!
//! For each state, fit BST to the MBA measurements and score the assigned
//! upload caps against the panel's ground-truth plans. The paper reports
//! >96% for all four states.

use crate::context::CityAnalysis;
use crate::results::TableResult;
use serde::Serialize;
use st_bst::evaluate;

/// One state's evaluation, serializable for EXPERIMENTS.md tooling.
#[derive(Debug, Clone, Serialize)]
pub struct StateAccuracy {
    /// State label ("State-A").
    pub state: String,
    /// Whitebox units in the panel.
    pub units: usize,
    /// Measurements evaluated.
    pub n: usize,
    /// Upload-cap accuracy (the Table 2 metric).
    pub upload_accuracy: f64,
    /// Exact plan accuracy.
    pub plan_accuracy: f64,
}

/// Evaluate BST on each city's MBA panel.
pub fn run(analyses: &[&CityAnalysis]) -> (TableResult, Vec<StateAccuracy>) {
    let mut stats = Vec::new();
    for a in analyses {
        let Some(model) = &a.mba_model else { continue };
        let ev = evaluate(model, &a.mba.truth_tier().contiguous(), a.catalog());
        stats.push(StateAccuracy {
            state: a.config.city.state_label().to_string(),
            units: a.config.mba_units,
            n: ev.n,
            upload_accuracy: ev.upload_accuracy,
            plan_accuracy: ev.plan_accuracy,
        });
    }

    let rows = stats
        .iter()
        .map(|s| {
            vec![
                s.state.clone(),
                format!("{}", s.units),
                format!("{}", s.n),
                format!("{:.2}%", s.upload_accuracy * 100.0),
                format!("{:.2}%", s.plan_accuracy * 100.0),
            ]
        })
        .collect();
    (
        TableResult {
            id: "table2".into(),
            title: "BST upload-tier accuracy on the MBA panels".into(),
            headers: vec![
                "State".into(),
                "#Units".into(),
                "#Tests".into(),
                "Upload Accuracy".into(),
                "Plan Accuracy".into(),
            ],
            rows,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    #[test]
    fn state_a_exceeds_96_percent() {
        let a = CityAnalysis::new(CityDataset::generate(City::A, 0.02, 31), 9);
        let (table, stats) = run(&[&a]);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].state, "State-A");
        assert_eq!(stats[0].units, 20);
        assert!(
            stats[0].upload_accuracy > 0.96,
            "upload accuracy {} (paper: >96%)",
            stats[0].upload_accuracy
        );
        assert!(table.rows[0][3].ends_with('%'));
    }

    #[test]
    fn all_four_states_score_high() {
        let analyses: Vec<CityAnalysis> = [City::A, City::B, City::C, City::D]
            .iter()
            .map(|&c| CityAnalysis::new(CityDataset::generate(c, 0.012, 37), 13))
            .collect();
        let refs: Vec<&CityAnalysis> = analyses.iter().collect();
        let (_, stats) = run(&refs);
        assert_eq!(stats.len(), 4);
        for s in &stats {
            assert!(s.upload_accuracy > 0.90, "{}: upload accuracy {}", s.state, s.upload_accuracy);
        }
    }
}
