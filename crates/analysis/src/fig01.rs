//! Figure 1 — the motivating example (§2).
//!
//! Raw download-speed CDFs for City-A's Ookla campaign, disaggregated by
//! context: the uncontextualized distribution, the lowest tier, the top
//! tier, the top tier on Android without local bottlenecks, and the top
//! tier on Ethernet. The paper's point: the same dataset supports medians
//! from ~19 Mbps to ~800 Mbps depending on context.

use crate::context::{ecdf_series, CityAnalysis};
use crate::results::CdfResult;
use st_speedtest::store::{BAND_5, MEMORY_NONE};
use st_speedtest::Platform;

/// Compute the Figure 1 series for a city.
pub fn run(a: &CityAnalysis) -> CdfResult {
    let top = a.catalog().len();
    let store = &a.ookla;
    let tier = store.assigned_tier();
    let down = store.down();
    let mut series = Vec::new();
    let mut medians = Vec::new();

    let mut push = |label: &str, values: &[f64]| {
        if let Some((s, m)) = ecdf_series(label, values) {
            series.push(s);
            medians.push(m);
        }
    };

    // Uncontextualized: every Ookla test.
    push("Uncontextualized", &down.contiguous());

    // Lowest tier (Tier 1).
    push(
        &format!("Tier 1: {:.0} Mbps", a.plan_down(1).map(|p| p.0).unwrap_or(0.0)),
        &store.from_pred(|i| tier.get(i) == Some(1)).gather(&down),
    );

    // Top tier.
    push(
        &format!("Tier {top}: {:.0} Mbps", a.plan_down(top).map(|p| p.0).unwrap_or(0.0)),
        &store.from_pred(|i| tier.get(i) == Some(top)).gather(&down),
    );

    // Top tier, Android, no local bottleneck (5 GHz, ≥ -50 dBm, > 2 GB).
    let (band, rssi, memory) = (store.wifi_band(), store.rssi_dbm(), store.memory_class());
    push(
        &format!("Tier {top}-Android"),
        &store
            .platform_sel(Platform::AndroidApp)
            .refine(|i| {
                tier.get(i) == Some(top)
                    && band.get(i) == BAND_5
                    && rssi.get(i) >= -50.0
                    && memory.get(i) > MEMORY_NONE + 1 // reported and above "< 2 GB"
            })
            .gather(&down),
    );

    // Top tier on Ethernet.
    push(
        &format!("Tier {top}-Ethernet"),
        &store
            .platform_sel(Platform::DesktopEthernetApp)
            .refine(|i| tier.get(i) == Some(top))
            .gather(&down),
    );

    CdfResult {
        id: "fig01".into(),
        title: format!("{}: download CDFs by context", a.config.city.label()),
        x_label: "Download Speed (Mbps)".into(),
        series,
        medians,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.01, 11), 3)
    }

    #[test]
    fn produces_the_five_contexts() {
        let r = run(&analysis());
        assert!(
            r.series.len() >= 4,
            "labels: {:?}",
            r.series.iter().map(|s| &s.label).collect::<Vec<_>>()
        );
        assert_eq!(r.series[0].label, "Uncontextualized");
    }

    #[test]
    fn tier1_median_is_far_below_uncontextualized() {
        let r = run(&analysis());
        let overall = r.medians[0];
        let tier1 = r.medians[1];
        // The paper's six-fold gap; require a clear factor of 2.
        assert!(tier1 * 2.0 < overall, "tier1 {tier1} vs overall {overall}");
    }

    #[test]
    fn top_tier_median_exceeds_uncontextualized() {
        let r = run(&analysis());
        let overall = r.medians[0];
        let top = r.medians[2];
        assert!(top > overall * 1.5, "top {top} vs overall {overall}");
    }

    #[test]
    fn ethernet_is_the_fastest_context() {
        let r = run(&analysis());
        let eth = r.medians.last().unwrap();
        for m in &r.medians[..r.medians.len() - 1] {
            assert!(eth >= m, "ethernet {eth} vs other {m}");
        }
    }
}
