//! Figure 10 — "Best" vs "Local-bottleneck" tests (§6.1).
//!
//! Android tests on 5 GHz with RSSI better than −50 dBm and more than 2 GB
//! of kernel memory form the "Best" group; everything else is
//! "Local-bottleneck". The paper: 61% of tests are Local-bottleneck and
//! their median normalized download (0.22) is less than half of Best's
//! (0.52).

use crate::context::{ecdf_series, CityAnalysis};
use crate::results::CdfResult;
use serde::Serialize;
use st_netsim::{Band, MemoryClass};
use st_speedtest::{Access, Measurement, Platform};

/// Group shares alongside the CDFs.
#[derive(Debug, Clone, Serialize)]
pub struct BottleneckShares {
    /// Fraction of Android tests in the Local-bottleneck group.
    pub local_bottleneck_share: f64,
    /// Android tests considered.
    pub n: usize,
}

/// Whether a measurement qualifies for the "Best" group.
pub fn is_best(m: &Measurement) -> bool {
    matches!(
        m.access,
        Access::Wifi { band: Band::G5, rssi_dbm } if rssi_dbm >= -50.0
    ) && m.memory_class().is_some_and(|c| c != MemoryClass::Under2G)
}

/// Compute the Best vs Local-bottleneck comparison.
pub fn run(a: &CityAnalysis) -> (CdfResult, BottleneckShares) {
    let android: Vec<(&Measurement, Option<usize>)> = a.ookla_platform(Platform::AndroidApp);
    let mut best = Vec::new();
    let mut bottleneck = Vec::new();
    let mut n_bottleneck = 0usize;
    for (m, t) in &android {
        let nd = a.normalized_down(m, *t);
        if is_best(m) {
            best.extend(nd);
        } else {
            n_bottleneck += 1;
            bottleneck.extend(nd);
        }
    }

    let mut series = Vec::new();
    let mut medians = Vec::new();
    for (label, vals) in [("Best", best), ("Local-bottleneck", bottleneck)] {
        if let Some((s, m)) = ecdf_series(label, &vals) {
            series.push(s);
            medians.push(m);
        }
    }

    (
        CdfResult {
            id: "fig10".into(),
            title: format!("{}: Best vs Local-bottleneck (Android)", a.dataset.config.city.label()),
            x_label: "Normalized Download Speed".into(),
            series,
            medians,
        },
        BottleneckShares {
            local_bottleneck_share: if android.is_empty() {
                0.0
            } else {
                n_bottleneck as f64 / android.len() as f64
            },
            n: android.len(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.05, 73), 47)
    }

    #[test]
    fn best_group_clearly_outperforms() {
        let (r, _) = run(&analysis());
        assert_eq!(r.series.len(), 2);
        let (best, bottleneck) = (r.medians[0], r.medians[1]);
        assert!(
            best > bottleneck * 1.6,
            "Best {best} vs Local-bottleneck {bottleneck} (paper: 0.52 vs 0.22)"
        );
    }

    #[test]
    fn majority_of_tests_are_bottlenecked() {
        let (_, shares) = run(&analysis());
        assert!(shares.n > 100);
        assert!(
            (0.4..0.9).contains(&shares.local_bottleneck_share),
            "local-bottleneck share {} (paper: 0.61)",
            shares.local_bottleneck_share
        );
    }
}
