//! Figure 10 — "Best" vs "Local-bottleneck" tests (§6.1).
//!
//! Android tests on 5 GHz with RSSI better than −50 dBm and more than 2 GB
//! of kernel memory form the "Best" group; everything else is
//! "Local-bottleneck". The paper: 61% of tests are Local-bottleneck and
//! their median normalized download (0.22) is less than half of Best's
//! (0.52).

use crate::context::{ecdf_series, CityAnalysis};
use crate::results::CdfResult;
use serde::Serialize;
use st_netsim::{Band, MemoryClass};
use st_speedtest::store::{BAND_5, MEMORY_NONE};
use st_speedtest::{Access, Measurement, Platform};

/// Group shares alongside the CDFs.
#[derive(Debug, Clone, Serialize)]
pub struct BottleneckShares {
    /// Fraction of Android tests in the Local-bottleneck group.
    pub local_bottleneck_share: f64,
    /// Android tests considered.
    pub n: usize,
}

/// Whether a measurement qualifies for the "Best" group.
pub fn is_best(m: &Measurement) -> bool {
    matches!(
        m.access,
        Access::Wifi { band: Band::G5, rssi_dbm } if rssi_dbm >= -50.0
    ) && m.memory_class().is_some_and(|c| c != MemoryClass::Under2G)
}

/// Compute the Best vs Local-bottleneck comparison.
pub fn run(a: &CityAnalysis) -> (CdfResult, BottleneckShares) {
    let store = &a.ookla;
    let android = store.platform_sel(Platform::AndroidApp);
    let (band, rssi, memory) = (store.wifi_band(), store.rssi_dbm(), store.memory_class());
    let (tier, nd) = (store.assigned_tier(), store.normalized_down());
    let mut best = Vec::new();
    let mut bottleneck = Vec::new();
    let mut n_bottleneck = 0usize;
    for i in android.iter() {
        // Column form of [`is_best`]: 5 GHz, strong signal, > 2 GB memory.
        let row_is_best =
            band.get(i) == BAND_5 && rssi.get(i) >= -50.0 && memory.get(i) > MEMORY_NONE + 1;
        let assigned = tier.get(i).is_some();
        if row_is_best {
            if assigned {
                best.push(nd.get(i));
            }
        } else {
            n_bottleneck += 1;
            if assigned {
                bottleneck.push(nd.get(i));
            }
        }
    }

    let mut series = Vec::new();
    let mut medians = Vec::new();
    for (label, vals) in [("Best", best), ("Local-bottleneck", bottleneck)] {
        if let Some((s, m)) = ecdf_series(label, &vals) {
            series.push(s);
            medians.push(m);
        }
    }

    (
        CdfResult {
            id: "fig10".into(),
            title: format!("{}: Best vs Local-bottleneck (Android)", a.config.city.label()),
            x_label: "Normalized Download Speed".into(),
            series,
            medians,
        },
        BottleneckShares {
            local_bottleneck_share: if android.is_empty() {
                0.0
            } else {
                n_bottleneck as f64 / android.len() as f64
            },
            n: android.len(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.05, 73), 47)
    }

    #[test]
    fn best_group_clearly_outperforms() {
        let (r, _) = run(&analysis());
        assert_eq!(r.series.len(), 2);
        let (best, bottleneck) = (r.medians[0], r.medians[1]);
        assert!(
            best > bottleneck * 1.6,
            "Best {best} vs Local-bottleneck {bottleneck} (paper: 0.52 vs 0.22)"
        );
    }

    #[test]
    fn majority_of_tests_are_bottlenecked() {
        let (_, shares) = run(&analysis());
        assert!(shares.n > 100);
        assert!(
            (0.4..0.9).contains(&shares.local_bottleneck_share),
            "local-bottleneck share {} (paper: 0.61)",
            shares.local_bottleneck_share
        );
    }
}
