//! Table 4 — download cluster means per platform and tier group.
//!
//! For each platform model and each upload group: the stage-2 component
//! means, comma-separated, exactly like the paper's appendix table. The
//! structural claim reproduced here: wired platforms need *fewer*
//! components than wireless ones ("The number of components detected for
//! wired measurements in each of these tiers is less than in wireless
//! ones", §5.1).

use crate::context::CityAnalysis;
use crate::results::TableResult;
use serde::Serialize;
use st_speedtest::Platform;

/// One platform's download-cluster means per group.
#[derive(Debug, Clone, Serialize)]
pub struct PlatformDownloadClusters {
    /// Platform label.
    pub platform: String,
    /// Per tier group: `(label, component_means)`.
    pub groups: Vec<(String, Vec<f64>)>,
}

/// Compute the download-cluster table for a city.
pub fn run(a: &CityAnalysis) -> (TableResult, Vec<PlatformDownloadClusters>) {
    let groups = a.catalog().tier_groups();
    let mut stats = Vec::new();

    for platform in Platform::all() {
        let model = if platform == Platform::NdtWeb {
            a.mlab_model.as_ref()
        } else {
            a.ookla_model(platform)
        };
        let Some(model) = model else { continue };
        stats.push(PlatformDownloadClusters {
            platform: platform.label().to_string(),
            groups: groups
                .iter()
                .map(|g| {
                    let means =
                        model.downloads_for(g.up).map(|d| d.component_means()).unwrap_or_default();
                    (g.label(), means)
                })
                .collect(),
        });
    }

    let mut headers = vec!["Platform".to_string()];
    headers.extend(groups.iter().map(|g| g.label()));
    let rows = stats
        .iter()
        .map(|s| {
            let mut row = vec![s.platform.clone()];
            for (_, means) in &s.groups {
                row.push(means.iter().map(|m| format!("{m:.0}")).collect::<Vec<_>>().join(", "));
            }
            row
        })
        .collect();

    (
        TableResult {
            id: "table4".into(),
            title: format!(
                "{}: download cluster means (Mbps) per platform and tier group",
                a.config.city.label()
            ),
            headers,
            rows,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.02, 61), 37)
    }

    #[test]
    fn table_has_platform_rows_and_group_columns() {
        let (table, stats) = run(&analysis());
        assert_eq!(table.headers.len(), 5); // Platform + 4 groups
        assert!(stats.len() >= 3);
        for row in &table.rows {
            assert_eq!(row.len(), 5);
        }
    }

    #[test]
    fn wired_platforms_need_fewer_components_than_wifi() {
        let (_, stats) = run(&analysis());
        let count = |name: &str| -> Option<usize> {
            stats
                .iter()
                .find(|s| s.platform == name)
                .map(|s| s.groups.iter().map(|(_, m)| m.len()).sum())
        };
        if let (Some(eth), Some(ios)) = (count("Desktop Ethernet-App"), count("iOS-App")) {
            assert!(eth <= ios, "Ethernet should need <= components than WiFi: {eth} vs {ios}");
        }
    }

    #[test]
    fn wifi_groups_show_degradation_spread() {
        // For WiFi platforms the component means in a single-plan group
        // span a wide range (Table 4 shows 40..763 for Tier 6 Android).
        let (_, stats) = run(&analysis());
        let ios = stats.iter().find(|s| s.platform == "iOS-App").unwrap();
        let top_group = ios.groups.last().unwrap();
        if top_group.1.len() >= 3 {
            let lo = top_group.1.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = top_group.1.iter().cloned().fold(0.0f64, f64::max);
            assert!(hi > lo * 2.0, "spread {lo}..{hi} too tight for WiFi");
        }
    }
}
