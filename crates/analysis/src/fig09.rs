//! Figure 9 — the local-factor panels (§6.1).
//!
//! Four CDFs of *normalized* download speed (measured / subscribed):
//!
//! * **(a)** WiFi vs Ethernet, all native-app tests;
//! * **(b)** 2.4 GHz vs 5 GHz, Android tests;
//! * **(c)** four RSSI bins, 5 GHz Android tests;
//! * **(d)** four kernel-memory bins, 5 GHz / ≥ −50 dBm Android tests.

use crate::context::{ecdf_series, CityAnalysis};
use crate::results::CdfResult;
use st_netsim::MemoryClass;
use st_speedtest::store::{memory_code, ACCESS_ETHERNET, ACCESS_WIFI, BAND_2_4, BAND_5};
use st_speedtest::Platform;

/// The four panels in order (a, b, c, d).
pub fn run(a: &CityAnalysis) -> Vec<CdfResult> {
    vec![panel_a(a), panel_b(a), panel_c(a), panel_d(a)]
}

fn build(a: &CityAnalysis, id: &str, title: &str, groups: Vec<(String, Vec<f64>)>) -> CdfResult {
    let mut series = Vec::new();
    let mut medians = Vec::new();
    for (label, values) in groups {
        if let Some((s, m)) = ecdf_series(&label, &values) {
            series.push(s);
            medians.push(m);
        }
    }
    CdfResult {
        id: id.into(),
        title: format!("{}: {title}", a.config.city.label()),
        x_label: "Normalized Download Speed".into(),
        series,
        medians,
    }
}

/// Normalized downloads of tier-assigned native tests matching `pred`
/// (one predicate pass over the native selection).
fn normalized(a: &CityAnalysis, pred: impl Fn(usize) -> bool) -> Vec<f64> {
    let tier = a.ookla.assigned_tier();
    let nd = a.ookla.normalized_down();
    a.ookla.native_sel().refine(|i| pred(i) && tier.get(i).is_some()).gather(&nd)
}

/// Panel (a): access type.
pub fn panel_a(a: &CityAnalysis) -> CdfResult {
    let access = a.ookla.access_class();
    let wifi = normalized(a, |i| access.get(i) == ACCESS_WIFI);
    let eth = normalized(a, |i| access.get(i) == ACCESS_ETHERNET);
    build(
        a,
        "fig09a",
        "normalized download by access type",
        vec![("WiFi".into(), wifi), ("Ethernet".into(), eth)],
    )
}

/// Panel (b): WiFi band (Android only — the platform that reports it).
pub fn panel_b(a: &CityAnalysis) -> CdfResult {
    let (platform, band) = (a.ookla.platform(), a.ookla.wifi_band());
    let android = |i: usize| platform.get(i) == Platform::AndroidApp;
    let g24 = normalized(a, |i| android(i) && band.get(i) == BAND_2_4);
    let g5 = normalized(a, |i| android(i) && band.get(i) == BAND_5);
    build(
        a,
        "fig09b",
        "normalized download by WiFi band (Android)",
        vec![("2.4 GHz".into(), g24), ("5 GHz".into(), g5)],
    )
}

/// The paper's RSSI bins, best first.
pub const RSSI_BINS: [(&str, f64, f64); 4] = [
    (">= -30 dBm", -30.0, 0.0),
    ("-50 dBm - -30 dBm", -50.0, -30.0),
    ("-70 dBm - -50 dBm", -70.0, -50.0),
    ("< -70 dBm", -95.0, -70.0),
];

/// Panel (c): RSSI bins over 5 GHz Android tests.
pub fn panel_c(a: &CityAnalysis) -> CdfResult {
    let (platform, band, rssi) = (a.ookla.platform(), a.ookla.wifi_band(), a.ookla.rssi_dbm());
    let groups = RSSI_BINS
        .iter()
        .map(|&(label, lo, hi)| {
            let vals = normalized(a, |i| {
                platform.get(i) == Platform::AndroidApp
                    && band.get(i) == BAND_5
                    && rssi.get(i) >= lo
                    && rssi.get(i) < hi
            });
            (label.to_string(), vals)
        })
        .collect();
    build(a, "fig09c", "normalized download by RSSI (5 GHz Android)", groups)
}

/// Panel (d): memory bins over 5 GHz, ≥ −50 dBm Android tests.
pub fn panel_d(a: &CityAnalysis) -> CdfResult {
    let (platform, band, rssi, memory) =
        (a.ookla.platform(), a.ookla.wifi_band(), a.ookla.rssi_dbm(), a.ookla.memory_class());
    let groups = MemoryClass::all()
        .iter()
        .map(|&class| {
            let vals = normalized(a, |i| {
                platform.get(i) == Platform::AndroidApp
                    && band.get(i) == BAND_5
                    && rssi.get(i) >= -50.0
                    && memory.get(i) == memory_code(class)
            });
            (class.label().to_string(), vals)
        })
        .collect();
    build(a, "fig09d", "normalized download by kernel memory (5 GHz, >= -50 dBm Android)", groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.05, 71), 43)
    }

    #[test]
    fn ethernet_clearly_beats_wifi() {
        let r = panel_a(&analysis());
        assert_eq!(r.series.len(), 2);
        let (wifi, eth) = (r.medians[0], r.medians[1]);
        assert!(
            eth > wifi * 1.5,
            "Ethernet median {eth} should dwarf WiFi {wifi} (paper: 0.71 vs 0.28)"
        );
    }

    #[test]
    fn five_ghz_beats_two_four() {
        let r = panel_b(&analysis());
        assert_eq!(r.series.len(), 2);
        let (g24, g5) = (r.medians[0], r.medians[1]);
        assert!(
            g5 > g24 * 1.5,
            "5 GHz median {g5} should dwarf 2.4 GHz {g24} (paper: 0.4 vs 0.11)"
        );
    }

    #[test]
    fn rssi_effect_is_monotone() {
        let r = panel_c(&analysis());
        // Bins are ordered best-signal first; medians must not increase
        // as signal degrades (allow slack on the sparse best bin).
        assert!(r.medians.len() >= 3, "bins: {}", r.medians.len());
        let worst = *r.medians.last().unwrap();
        let best_two = r.medians[..r.medians.len() - 1].iter().cloned().fold(0.0f64, f64::max);
        assert!(best_two > worst, "best bins {best_two} should beat worst bin {worst}");
    }

    #[test]
    fn memory_effect_is_large_for_low_memory() {
        let r = panel_d(&analysis());
        assert!(r.series.len() >= 3);
        // First series is "< 2 GB"; last is "> 6 GB".
        let low = r.medians[0];
        let high = *r.medians.last().unwrap();
        assert!(
            high > low * 1.5,
            "high-memory median {high} vs low-memory {low} (paper: 0.53 vs 0.16)"
        );
    }

    #[test]
    fn run_returns_all_four_panels() {
        let rs = run(&analysis());
        let ids: Vec<&str> = rs.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["fig09a", "fig09b", "fig09c", "fig09d"]);
    }
}
