//! The §2 premise across all four cities.
//!
//! "The median download speed of each of these four cities is roughly
//! 115 Mbps" — the uncontextualized view makes four different markets
//! look interchangeable. This module produces the cross-city table: the
//! raw median per city next to the per-tier-group medians that reveal
//! the structure the aggregate hides.

use crate::context::CityAnalysis;
use crate::results::TableResult;
use serde::Serialize;
use st_stats::{gini, Ecdf};

/// One city's summary row.
#[derive(Debug, Clone, Serialize)]
pub struct CitySummary {
    /// City label.
    pub city: String,
    /// Uncontextualized median download over the whole Ookla campaign.
    pub raw_median: f64,
    /// Per tier group: `(label, median download of the group's tests)`.
    pub group_medians: Vec<(String, f64)>,
    /// Gini coefficient of the city's download-speed distribution — the
    /// inequality the aggregate median hides.
    pub gini: f64,
}

/// Compute the cross-city comparison.
pub fn run(analyses: &[&CityAnalysis]) -> (TableResult, Vec<CitySummary>) {
    let mut summaries = Vec::new();
    for a in analyses {
        let downs = a.ookla.down();
        let downs_flat = downs.contiguous();
        let raw_median = Ecdf::new(&downs_flat).map(|e| e.median()).unwrap_or(f64::NAN);
        let group_medians = a
            .catalog()
            .tier_groups()
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                // Raw (not normalized) download speeds of the group's rows.
                let vals = a.ookla.group_sel(gi).gather(&downs);
                let med = Ecdf::new(&vals).map(|e| e.median()).unwrap_or(f64::NAN);
                (g.label(), med)
            })
            .collect();
        summaries.push(CitySummary {
            city: a.config.city.label().to_string(),
            raw_median,
            group_medians,
            gini: gini(&downs_flat).unwrap_or(f64::NAN),
        });
    }

    // The table uses up to four group columns (cities differ in group
    // count; short rows pad with "-").
    let max_groups = summaries.iter().map(|s| s.group_medians.len()).max().unwrap_or(0);
    let mut headers = vec!["City".to_string(), "Raw median".to_string(), "Gini".to_string()];
    for i in 0..max_groups {
        headers.push(format!("Group {} median", i + 1));
    }
    let rows = summaries
        .iter()
        .map(|s| {
            let mut row =
                vec![s.city.clone(), format!("{:.1}", s.raw_median), format!("{:.2}", s.gini)];
            for i in 0..max_groups {
                row.push(match s.group_medians.get(i) {
                    Some((label, med)) if med.is_finite() => {
                        format!("{label}: {med:.0}")
                    }
                    _ => "-".to_string(),
                });
            }
            row
        })
        .collect();

    (
        TableResult {
            id: "cities".into(),
            title: "Cross-city: the aggregate median vs the structure it hides (§2)".into(),
            headers,
            rows,
        },
        summaries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analyses() -> Vec<CityAnalysis> {
        City::all()
            .into_iter()
            .map(|c| CityAnalysis::new(CityDataset::generate(c, 0.008, 2026), 19))
            .collect()
    }

    #[test]
    fn four_cities_have_similar_raw_medians() {
        // The §2 setup: aggregates hide the differences.
        let all = analyses();
        let refs: Vec<&CityAnalysis> = all.iter().collect();
        let (_, summaries) = run(&refs);
        assert_eq!(summaries.len(), 4);
        let medians: Vec<f64> = summaries.iter().map(|s| s.raw_median).collect();
        let lo = medians.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = medians.iter().cloned().fold(0.0f64, f64::max);
        // City-B's Table-5 tier mix (39% in its 500/800 group) keeps its
        // raw median above the others in our reconstruction; the premise
        // that survives is "same order of magnitude", which the within-
        // city structure (next test) dwarfs.
        assert!(hi / lo < 3.0, "raw medians should look comparable across cities: {medians:?}");
    }

    #[test]
    fn group_medians_reveal_the_spread() {
        let all = analyses();
        let refs: Vec<&CityAnalysis> = all.iter().collect();
        let (_, summaries) = run(&refs);
        for s in &summaries {
            let finite: Vec<f64> =
                s.group_medians.iter().map(|(_, m)| *m).filter(|m| m.is_finite()).collect();
            assert!(finite.len() >= 3, "{}: groups {:?}", s.city, s.group_medians);
            let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = finite.iter().cloned().fold(0.0f64, f64::max);
            assert!(
                hi / lo > 2.5,
                "{}: within-city structure should dwarf cross-city spread: {finite:?}",
                s.city
            );
        }
    }

    #[test]
    fn download_inequality_is_substantial_everywhere() {
        // Speed distributions are heavily unequal (the digital-divide
        // framing of §1): Gini well above an equal-access baseline.
        let all = analyses();
        let refs: Vec<&CityAnalysis> = all.iter().collect();
        let (_, summaries) = run(&refs);
        for s in &summaries {
            assert!((0.3..0.8).contains(&s.gini), "{}: download Gini {}", s.city, s.gini);
        }
    }

    #[test]
    fn table_pads_cities_with_fewer_groups() {
        let all = analyses();
        let refs: Vec<&CityAnalysis> = all.iter().collect();
        let (table, _) = run(&refs);
        // ISP-D has 3 groups, others 4 → padded rows.
        let widths: Vec<usize> = table.rows.iter().map(|r| r.len()).collect();
        assert!(widths.iter().all(|&w| w == table.headers.len()), "{widths:?}");
        assert!(table.rows.iter().any(|r| r.contains(&"-".to_string())));
    }
}
