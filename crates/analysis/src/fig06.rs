//! Figure 6 (and appendix Fig. 15) — crowdsourced upload densities.
//!
//! Upload-speed KDEs for Ookla Android, Ookla web, and M-Lab web tests in
//! one city. Despite the WiFi hop, densities must still peak near the
//! offered upload caps; the M-Lab curve additionally shows the ~1 Mbps
//! browser-limited cluster.

use crate::context::CityAnalysis;
use crate::results::{DensityResult, SeriesData};
use st_speedtest::Platform;
use st_stats::{Bandwidth, KernelDensity};

/// Compute the crowdsourced upload-density figure for a city.
pub fn run(a: &CityAnalysis) -> DensityResult {
    let caps: Vec<f64> = a.catalog().upload_caps().iter().map(|c| c.0).collect();
    let max_cap = caps.iter().cloned().fold(0.0f64, f64::max);

    let mut series = Vec::new();
    let mut add = |label: &str, values: &[f64]| {
        // Clip to the plot range of the paper's figure (0..~1.4x top cap).
        let clipped: Vec<f64> = values.iter().copied().filter(|v| *v <= max_cap * 1.4).collect();
        if clipped.len() < 20 {
            return;
        }
        if let Ok(kde) = KernelDensity::fit(&clipped, Bandwidth::Silverman) {
            if let Ok(grid) = kde.grid(0.0, max_cap * 1.4, 400) {
                series.push(SeriesData::new(label, grid));
            }
        }
    };

    let ookla_up = a.ookla.up();
    add("Ookla-Android", &a.ookla.platform_sel(Platform::AndroidApp).gather_view(&ookla_up));
    add("Ookla-Web", &a.ookla.platform_sel(Platform::Web).gather_view(&ookla_up));
    add("MLab-Web", &a.mlab.up().view());

    DensityResult {
        id: "fig06".into(),
        title: format!("{}: crowdsourced upload speed density", a.config.city.label()),
        x_label: "Upload Speed (Mbps)".into(),
        series,
        plan_lines: caps,
        cluster_means: Vec::new(),
        notes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};
    use st_stats::kde::find_peaks_on_grid;

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.012, 47), 23)
    }

    #[test]
    fn three_vendor_series() {
        let r = run(&analysis());
        let labels: Vec<&str> = r.series.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"Ookla-Android"), "{labels:?}");
        assert!(labels.contains(&"Ookla-Web"));
        assert!(labels.contains(&"MLab-Web"));
    }

    #[test]
    fn crowd_uploads_still_peak_near_caps() {
        let r = run(&analysis());
        for s in &r.series {
            let peaks = find_peaks_on_grid(&s.points, 0.05);
            assert!(!peaks.is_empty(), "{} has no peaks", s.label);
            let biggest =
                peaks.iter().max_by(|a, b| a.density.partial_cmp(&b.density).unwrap()).unwrap();
            let near_cap_or_low =
                r.plan_lines.iter().any(|c| (biggest.x - c).abs() < c * 0.5 + 1.0)
                    || biggest.x < 2.5; // the M-Lab browser-limited cluster
            assert!(
                near_cap_or_low,
                "{}: dominant peak at {} vs caps {:?}",
                s.label, biggest.x, r.plan_lines
            );
        }
    }
}
