//! Figure 4 (and appendix Fig. 14) — upload-speed density of an MBA panel.
//!
//! KDE over the state's MBA upload speeds; the density must peak at the
//! ISP's offered upload speeds (the vertical lines of the paper's figure).

use crate::context::CityAnalysis;
use crate::results::{DensityResult, SeriesData};
use st_stats::KernelDensity;

/// Compute the MBA upload-density figure for a state.
pub fn run(a: &CityAnalysis) -> DensityResult {
    let uploads = a.mba.up().view();
    let caps: Vec<f64> = a.catalog().upload_caps().iter().map(|c| c.0).collect();

    let mut series = Vec::new();
    let mut notes = Vec::new();
    // Halved Silverman bandwidth, as in BST's peak counting: the upload
    // distribution is multi-scale and the global rule over-smooths.
    match KernelDensity::fit(&uploads, st_stats::kde::scaled_silverman(0.5)) {
        Ok(kde) => match kde.auto_grid(400) {
            Ok(grid) => series.push(SeriesData::new("MBA uploads", grid)),
            Err(e) => notes.push(format!("KDE grid failed for MBA uploads: {e}")),
        },
        Err(e) => notes.push(format!("KDE fit failed for MBA uploads: {e}")),
    }
    let cluster_means = a
        .mba_model
        .as_ref()
        .map(|m| {
            m.uploads
                .gmm
                .components()
                .iter()
                .enumerate()
                .filter(|(i, _)| m.uploads.component_caps[*i].is_some())
                .map(|(_, c)| c.mean)
                .collect()
        })
        .unwrap_or_default();

    DensityResult {
        id: "fig04".into(),
        title: format!("{}: MBA upload speed density", a.config.city.state_label()),
        x_label: "Upload Speed (Mbps)".into(),
        series,
        plan_lines: caps,
        cluster_means,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};
    use st_stats::kde::find_peaks_on_grid;

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.015, 41), 17)
    }

    #[test]
    fn density_peaks_near_offered_caps() {
        let r = run(&analysis());
        assert_eq!(r.series.len(), 1);
        assert!(r.notes.is_empty(), "healthy fit carries no notes: {:?}", r.notes);
        let peaks = find_peaks_on_grid(&r.series[0].points, 0.03);
        // Every prominent peak is near some cap.
        for p in &peaks {
            let near = r.plan_lines.iter().any(|c| (p.x - c).abs() < c * 0.4 + 1.0);
            assert!(near, "peak at {} not near any cap {:?}", p.x, r.plan_lines);
        }
        assert!(peaks.len() >= 3, "expected several peaks, got {}", peaks.len());
    }

    #[test]
    fn cluster_means_sit_near_caps() {
        let r = run(&analysis());
        assert!(!r.cluster_means.is_empty());
        for m in &r.cluster_means {
            let near = r.plan_lines.iter().any(|c| (m - c).abs() <= c * 0.4 + 1.0);
            assert!(near, "cluster mean {m} far from caps {:?}", r.plan_lines);
        }
    }

    #[test]
    fn renders() {
        let r = run(&analysis());
        assert!(r.to_svg().contains("<svg"));
        assert!(r.render().contains("fig04"));
    }
}
