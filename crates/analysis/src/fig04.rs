//! Figure 4 (and appendix Fig. 14) — upload-speed density of an MBA panel.
//!
//! KDE over the state's MBA upload speeds; the density must peak at the
//! ISP's offered upload speeds (the vertical lines of the paper's figure).

use crate::context::CityAnalysis;
use crate::results::{DensityResult, SeriesData};
use st_stats::{Bandwidth, KernelDensity};

/// Compute the MBA upload-density figure for a state.
pub fn run(a: &CityAnalysis) -> DensityResult {
    let uploads: Vec<f64> = a.dataset.mba.iter().map(|m| m.up_mbps).collect();
    let caps: Vec<f64> = a.catalog().upload_caps().iter().map(|c| c.0).collect();

    let mut series = Vec::new();
    // Halved Silverman bandwidth, as in BST's peak counting: the upload
    // distribution is multi-scale and the global rule over-smooths.
    let bw = st_stats::kde::silverman_bandwidth(&uploads) * 0.5;
    let rule = if bw > 0.0 { Bandwidth::Fixed(bw) } else { Bandwidth::Silverman };
    if let Ok(kde) = KernelDensity::fit(&uploads, rule) {
        if let Ok(grid) = kde.auto_grid(400) {
            series.push(SeriesData::new("MBA uploads", grid));
        }
    }
    let cluster_means = a
        .mba_model
        .as_ref()
        .map(|m| {
            m.uploads
                .gmm
                .components()
                .iter()
                .enumerate()
                .filter(|(i, _)| m.uploads.component_caps[*i].is_some())
                .map(|(_, c)| c.mean)
                .collect()
        })
        .unwrap_or_default();

    DensityResult {
        id: "fig04".into(),
        title: format!("{}: MBA upload speed density", a.dataset.config.city.state_label()),
        x_label: "Upload Speed (Mbps)".into(),
        series,
        plan_lines: caps,
        cluster_means,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};
    use st_stats::kde::find_peaks_on_grid;

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.015, 41), 17)
    }

    #[test]
    fn density_peaks_near_offered_caps() {
        let r = run(&analysis());
        assert_eq!(r.series.len(), 1);
        let peaks = find_peaks_on_grid(&r.series[0].points, 0.03);
        // Every prominent peak is near some cap.
        for p in &peaks {
            let near = r.plan_lines.iter().any(|c| (p.x - c).abs() < c * 0.4 + 1.0);
            assert!(near, "peak at {} not near any cap {:?}", p.x, r.plan_lines);
        }
        assert!(peaks.len() >= 3, "expected several peaks, got {}", peaks.len());
    }

    #[test]
    fn cluster_means_sit_near_caps() {
        let r = run(&analysis());
        assert!(!r.cluster_means.is_empty());
        for m in &r.cluster_means {
            let near = r.plan_lines.iter().any(|c| (m - c).abs() <= c * 0.4 + 1.0);
            assert!(near, "cluster mean {m} far from caps {:?}", r.plan_lines);
        }
    }

    #[test]
    fn renders() {
        let r = run(&analysis());
        assert!(r.to_svg().contains("<svg"));
        assert!(r.render().contains("fig04"));
    }
}
