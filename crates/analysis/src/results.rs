//! Serializable result containers shared by the experiment modules.

use serde::Serialize;
use st_viz::Series;

/// A labelled series of points, serializable for the repro binary's JSON
/// output and convertible to a `st_viz::Series` for rendering.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeriesData {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl SeriesData {
    /// Create a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        SeriesData { label: label.into(), points }
    }

    /// Convert for rendering.
    pub fn to_series(&self) -> Series {
        Series::new(self.label.clone(), self.points.clone())
    }
}

/// A CDF-style figure: several series plus their medians.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CdfResult {
    /// Figure identifier ("fig09a" etc.).
    pub id: String,
    /// Title for rendering.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// The CDF series.
    pub series: Vec<SeriesData>,
    /// Median of each series, parallel to `series`.
    pub medians: Vec<f64>,
}

impl CdfResult {
    /// Render all series as an ASCII plot plus a median list.
    pub fn render(&self) -> String {
        let series: Vec<Series> = self.series.iter().map(|s| s.to_series()).collect();
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        out.push_str(&st_viz::ascii_cdf(&series, 64, 16));
        for (s, m) in self.series.iter().zip(&self.medians) {
            out.push_str(&format!("  median[{}] = {:.3}\n", s.label, m));
        }
        out
    }

    /// Render as an SVG document.
    pub fn to_svg(&self) -> String {
        let series: Vec<Series> = self.series.iter().map(|s| s.to_series()).collect();
        let cfg = st_viz::SvgConfig::titled(&self.title, &self.x_label, "Cum. Fraction of Tests");
        st_viz::svg_lines(&series, &cfg)
    }
}

/// A density-style figure: KDE curves plus reference verticals (plan
/// speeds) and recovered cluster means.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityResult {
    /// Figure identifier ("fig04" etc.).
    pub id: String,
    /// Title for rendering.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// The density series.
    pub series: Vec<SeriesData>,
    /// Reference x positions (offered plan speeds).
    pub plan_lines: Vec<f64>,
    /// Cluster means recovered by BST.
    pub cluster_means: Vec<f64>,
    /// Diagnostics explaining omitted series (e.g. a KDE fit that failed
    /// for lack of data). Empty on a healthy figure — and skipped during
    /// serialization so healthy artifacts are unchanged.
    pub notes: Vec<String>,
}

// Hand-written so the `notes` key appears only when there is something to
// report (the vendored serde derive has no `skip_serializing_if`): healthy
// figures keep their exact pre-`notes` JSON bytes.
impl Serialize for DensityResult {
    fn write_json(&self, w: &mut serde::json::Writer) {
        w.begin_object();
        w.key("id");
        self.id.write_json(w);
        w.key("title");
        self.title.write_json(w);
        w.key("x_label");
        self.x_label.write_json(w);
        w.key("series");
        self.series.write_json(w);
        w.key("plan_lines");
        self.plan_lines.write_json(w);
        w.key("cluster_means");
        self.cluster_means.write_json(w);
        if !self.notes.is_empty() {
            w.key("notes");
            self.notes.write_json(w);
        }
        w.end_object();
    }
}

impl DensityResult {
    /// Render the densities as SVG (plan lines become thin vertical
    /// series so they ride through the same pipeline).
    pub fn to_svg(&self) -> String {
        let mut series: Vec<Series> = self.series.iter().map(|s| s.to_series()).collect();
        let max_y =
            series.iter().filter_map(|s| s.bounds().map(|b| b.3)).fold(0.0f64, f64::max).max(1e-9);
        for &x in &self.plan_lines {
            series.push(Series::new("plan", vec![(x, 0.0), (x, max_y)]));
        }
        let cfg = st_viz::SvgConfig::titled(&self.title, &self.x_label, "Density");
        st_viz::svg_lines(&series, &cfg)
    }

    /// Text rendering: an ASCII density plot plus the plan lines and the
    /// recovered cluster means.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let series: Vec<Series> = self.series.iter().map(|s| s.to_series()).collect();
        out.push_str(&st_viz::ascii_lines(&series, 64, 12));
        out.push_str(&format!("  plan speeds: {:?}\n", self.plan_lines));
        out.push_str(&format!(
            "  recovered cluster means: {:?}\n",
            self.cluster_means.iter().map(|m| (m * 100.0).round() / 100.0).collect::<Vec<_>>()
        ));
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

/// A table-style result: headers plus string rows.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TableResult {
    /// Table identifier ("table2" etc.).
    pub id: String,
    /// Title for rendering.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each as wide as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl TableResult {
    /// Render as an ASCII table.
    pub fn render(&self) -> String {
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        format!("== {} — {} ==\n{}", self.id, self.title, st_viz::ascii_table(&headers, &self.rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_round_trip() {
        let d = SeriesData::new("x", vec![(0.0, 0.5)]);
        let s = d.to_series();
        assert_eq!(s.label, "x");
        assert_eq!(s.points, vec![(0.0, 0.5)]);
    }

    #[test]
    fn cdf_result_renders_medians() {
        let r = CdfResult {
            id: "figX".into(),
            title: "demo".into(),
            x_label: "Mbps".into(),
            series: vec![SeriesData::new("a", vec![(0.0, 0.0), (1.0, 1.0)])],
            medians: vec![0.5],
        };
        let text = r.render();
        assert!(text.contains("figX") && text.contains("median[a] = 0.500"));
        let svg = r.to_svg();
        assert!(svg.contains("<svg") && svg.contains("demo"));
    }

    #[test]
    fn table_result_renders() {
        let t = TableResult {
            id: "tableX".into(),
            title: "demo".into(),
            headers: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "2".into()]],
        };
        let text = t.render();
        assert!(text.contains("tableX") && text.contains("| 1 | 2 |"));
    }

    #[test]
    fn density_notes_render_and_serialize_only_when_present() {
        let healthy = DensityResult {
            id: "figY".into(),
            title: "demo".into(),
            x_label: "Mbps".into(),
            series: vec![SeriesData::new("d", vec![(0.0, 0.1), (1.0, 0.2)])],
            plan_lines: vec![5.0],
            cluster_means: vec![4.9],
            notes: Vec::new(),
        };
        let text = healthy.render();
        assert!(!text.contains("note:"));
        // Empty notes are skipped entirely: healthy JSON is byte-stable
        // across the introduction of the field.
        let json = serde_json::to_string(&healthy).unwrap();
        assert!(!json.contains("notes"));

        let mut degraded = healthy.clone();
        degraded.notes.push("KDE fit failed for MBA uploads: too few samples".into());
        let text = degraded.render();
        assert!(text.contains("note: KDE fit failed for MBA uploads"));
        let json = serde_json::to_string(&degraded).unwrap();
        assert!(json.contains("\"notes\""));
    }

    #[test]
    fn results_serialize_to_json() {
        let r = CdfResult {
            id: "f".into(),
            title: "t".into(),
            x_label: "x".into(),
            series: vec![],
            medians: vec![],
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"id\":\"f\""));
    }
}
