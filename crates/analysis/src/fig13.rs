//! Figure 13 — Ookla vs M-Lab per subscription tier (§6.3).
//!
//! Normalized download CDFs for both vendors within the same tier group,
//! city, and ISP. M-Lab's single-connection NDT must lag Ookla in every
//! group, by up to ~2× at the median.

use crate::context::{ecdf_series, CityAnalysis};
use crate::results::CdfResult;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use st_stats::median_ratio_ci;

/// Median comparison per tier group.
#[derive(Debug, Clone, Serialize)]
pub struct VendorGap {
    /// Tier-group label.
    pub group: String,
    /// Ookla median normalized download.
    pub ookla_median: f64,
    /// M-Lab median normalized download.
    pub mlab_median: f64,
    /// `ookla_median / mlab_median` — the paper reports 1.2–2.0.
    pub ratio: f64,
    /// 95% bootstrap CI for the ratio, when both samples are big enough.
    pub ratio_ci: Option<(f64, f64)>,
}

/// One CDF panel per tier group, plus the per-group median gaps.
pub fn run(a: &CityAnalysis) -> (Vec<CdfResult>, Vec<VendorGap>) {
    let tier_groups = a.catalog().tier_groups();
    let ookla_nd = a.ookla.normalized_down();
    let mlab_nd = a.mlab.normalized_down();
    let mut panels = Vec::new();
    let mut gaps = Vec::new();

    for (gi, group) in tier_groups.iter().enumerate() {
        let ookla = a.ookla.group_sel(gi).gather(&ookla_nd);
        let mlab = a.mlab.group_sel(gi).gather(&mlab_nd);

        let mut series = Vec::new();
        let mut medians = Vec::new();
        for (label, vals) in [("Ookla", &ookla), ("M-Lab", &mlab)] {
            if let Some((s, m)) = ecdf_series(label, vals) {
                series.push(s);
                medians.push(m);
            }
        }
        if medians.len() == 2 {
            // Percentile-bootstrap CI on the median ratio; deterministic
            // seed so repro runs are reproducible.
            let ratio_ci = if ookla.len() >= 30 && mlab.len() >= 30 {
                let mut rng = StdRng::seed_from_u64(0xf13 + gi as u64);
                median_ratio_ci(&ookla, &mlab, 300, 0.95, &mut rng).ok().map(|ci| (ci.lo, ci.hi))
            } else {
                None
            };
            gaps.push(VendorGap {
                group: group.label(),
                ookla_median: medians[0],
                mlab_median: medians[1],
                ratio: if medians[1] > 0.0 { medians[0] / medians[1] } else { f64::NAN },
                ratio_ci,
            });
        }
        panels.push(CdfResult {
            id: format!("fig13_{}", group.label().replace(' ', "").to_lowercase()),
            title: format!("{}: Ookla vs M-Lab, {}", a.config.city.label(), group.label()),
            x_label: "Normalized Download Speed".into(),
            series,
            medians,
        });
    }
    (panels, gaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.03, 89), 61)
    }

    #[test]
    fn one_panel_per_tier_group() {
        let (panels, _) = run(&analysis());
        assert_eq!(panels.len(), 4);
    }

    #[test]
    fn mlab_lags_ookla_in_every_group() {
        let (_, gaps) = run(&analysis());
        assert!(gaps.len() >= 3, "groups compared: {}", gaps.len());
        for g in &gaps {
            assert!(
                g.ookla_median >= g.mlab_median * 0.95,
                "{}: Ookla {} vs M-Lab {}",
                g.group,
                g.ookla_median,
                g.mlab_median
            );
        }
        // Somewhere the gap approaches the paper's 2x.
        let max_ratio = gaps.iter().map(|g| g.ratio).fold(0.0f64, f64::max);
        assert!(max_ratio > 1.2, "max vendor gap ratio {max_ratio} (paper: up to 2)");
    }

    #[test]
    fn ratio_confidence_intervals_bracket_the_point_estimate() {
        let (_, gaps) = run(&analysis());
        let with_ci = gaps.iter().filter(|g| g.ratio_ci.is_some()).count();
        assert!(with_ci >= 3, "CIs computed for {with_ci} groups");
        for g in &gaps {
            if let Some((lo, hi)) = g.ratio_ci {
                assert!(lo <= g.ratio && g.ratio <= hi, "{g:?}");
                assert!(hi - lo < g.ratio, "CI implausibly wide: {g:?}");
            }
        }
    }

    #[test]
    fn gap_widens_on_faster_tiers() {
        // The Mathis ceiling binds harder at higher plan rates, so the
        // top groups should show a larger ratio than the lowest group.
        let (_, gaps) = run(&analysis());
        if gaps.len() >= 2 {
            let first = gaps.first().unwrap().ratio;
            let later_max = gaps[1..].iter().map(|g| g.ratio).fold(0.0f64, f64::max);
            assert!(
                later_max >= first * 0.9,
                "higher tiers should not close the gap: first {first}, later {later_max}"
            );
        }
    }
}
