//! Warm-analysis entry points for the `st-serve` epoch renderer
//! (DESIGN.md §18).
//!
//! The serve layer republishes headline analyses at every epoch
//! crossing, fitting against whatever rows have *sealed* so far. Two
//! contracts keep that honest:
//!
//! * **Sealed rows only.** The input is the sealed prefix of each
//!   stream — a pure function of the accepted-row sequence and the
//!   seal threshold — so a warm fit is reproducible from the epoch's
//!   own description, even though *which* epoch a given prefix lands
//!   in depends on wall-clock interleaving.
//! * **No deterministic metrics.** Warm fits run against a disabled
//!   registry: the prefix they see is scheduling-dependent, so letting
//!   them tick `bst.*` counters would break the parallelism-invariance
//!   the `serve-smoke` obs-diff gate enforces. The final post-drain
//!   fit (which sees the complete stream) records normally.
//!
//! These entry points are deliberately thin wrappers over the batch
//! fit path ([`CityAnalysis::from_stores`]): a warm analysis at the
//! final epoch *is* the batch analysis, which is what the
//! serve-identity suite pins byte for byte.

use crate::context::CityAnalysis;
use crate::{fig01, table1};
use st_datagen::CityConfig;
use st_obs::Registry;
use st_speedtest::{Measurement, SegmentedStore};

/// Fit one city's BST models against sealed row prefixes. Platforms
/// with fewer than 30 samples are skipped exactly as in the batch
/// path, so thin early epochs simply publish fewer models.
pub fn warm_fit(
    config: CityConfig,
    ookla: &[Measurement],
    mlab: &[Measurement],
    mba: &[Measurement],
    seed: u64,
) -> CityAnalysis {
    CityAnalysis::from_stores(
        config,
        SegmentedStore::from_measurements(ookla),
        SegmentedStore::from_measurements(mlab),
        SegmentedStore::from_measurements(mba),
        seed,
        // Warm fits see a scheduling-dependent prefix: keep them out
        // of the deterministic metric class (DESIGN.md §18).
        &Registry::disabled(),
    )
}

/// Median of a sealed column (NaN when empty) — tiny local helper so
/// headlines do not depend on any fig module's preconditions.
fn median(mut values: Vec<f64>) -> f64 {
    values.retain(|v| v.is_finite());
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

/// Headline `(label, value)` pairs for one set of warm analyses: per
/// city the sealed row counts, the uncontextualized Ookla download
/// median (the paper's fig 1 headline number), fitted model counts,
/// and BST tier-assignment coverage.
pub fn warm_headlines(analyses: &[CityAnalysis]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for a in analyses {
        let city = a.config.city.label();
        let rows = a.ookla.len() + a.mlab.len() + a.mba.len();
        out.push((format!("{city} sealed rows"), rows.to_string()));
        if !a.ookla.is_empty() {
            out.push((
                format!("{city} ookla median down (Mbps)"),
                format!("{:.1}", median(a.ookla.down().to_vec())),
            ));
            let tiers = a.ookla.assigned_tier().to_vec();
            let assigned = tiers.iter().filter(|t| t.is_some()).count();
            out.push((
                format!("{city} BST tier coverage"),
                format!("{:.1}%", 100.0 * assigned as f64 / tiers.len().max(1) as f64),
            ));
        }
        out.push((
            format!("{city} fitted models"),
            (a.ookla_models.len()
                + usize::from(a.mlab_model.is_some())
                + usize::from(a.mba_model.is_some()))
            .to_string(),
        ));
    }
    // The paper's first figure, when the first city has data to draw.
    if let Some(first) = analyses.first() {
        if first.ookla.len() >= 30 {
            let f1 = fig01::run(first);
            if let Some(m) = f1.medians.first() {
                out.push(("fig01 uncontextualized median (Mbps)".into(), format!("{m:.1}")));
            }
        }
    }
    out
}

/// Warm rendered tables as `(id, text)` pairs — currently Table 1
/// (dataset sizes), which is robust at any prefix size.
pub fn warm_tables(analyses: &[CityAnalysis]) -> Vec<(String, String)> {
    let refs: Vec<&CityAnalysis> = analyses.iter().collect();
    let t = table1::run(&refs);
    vec![(t.id.clone(), t.render())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    #[test]
    fn warm_fit_on_the_full_stream_matches_the_batch_fit() {
        let ds = CityDataset::generate(City::A, 0.002, 7);
        let config = ds.config.clone();
        let (ookla, mlab, mba) = (ds.ookla.clone(), ds.mlab.clone(), ds.mba.clone());
        let batch = CityAnalysis::new(ds, 42);
        let warm = warm_fit(config, &ookla, &mlab, &mba, 42);
        assert_eq!(batch.ookla_models.len(), warm.ookla_models.len());
        for ((p1, m1), (p2, m2)) in batch.ookla_models.iter().zip(&warm.ookla_models) {
            assert_eq!(p1, p2);
            assert_eq!(m1.assignments, m2.assignments, "warm fit must be the batch fit");
        }
    }

    #[test]
    fn headlines_and_tables_survive_empty_prefixes() {
        let empty = warm_fit(CityConfig::at_scale(City::B, 0.001), &[], &[], &[], 1);
        let heads = warm_headlines(std::slice::from_ref(&empty));
        assert!(heads.iter().any(|(k, v)| k.contains("sealed rows") && v == "0"));
        assert!(!heads.iter().any(|(k, _)| k.contains("median")), "no median without data");
        let tables = warm_tables(std::slice::from_ref(&empty));
        assert_eq!(tables.len(), 1);
        assert!(tables[0].1.contains("City-B"));
    }

    #[test]
    fn headlines_carry_the_fig01_median_when_data_suffices() {
        let ds = CityDataset::generate(City::A, 0.002, 3);
        let config = ds.config.clone();
        let warm = warm_fit(config, &ds.ookla, &ds.mlab, &ds.mba, 9);
        let heads = warm_headlines(std::slice::from_ref(&warm));
        assert!(heads.iter().any(|(k, _)| k.starts_with("fig01")));
        assert!(heads.iter().any(|(k, _)| k.contains("BST tier coverage")));
    }
}
