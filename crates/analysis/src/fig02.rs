//! Figure 2 — per-user consistency factor CDFs (§4.1).
//!
//! For every iOS native-app user with at least five tests, the consistency
//! factor (mean / p95) of their download speeds and of their upload
//! speeds. Uploads must come out far more consistent (paper medians: 0.87
//! upload vs 0.58 download) — the observation that justifies clustering on
//! upload speed first.

use crate::context::{ecdf_series, CityAnalysis};
use crate::results::CdfResult;
use st_speedtest::Platform;
use st_stats::consistency_factor;
use std::collections::HashMap;

/// Minimum tests per user, per the paper.
pub const MIN_TESTS: usize = 5;

/// Compute the Figure 2 series for a city.
pub fn run(a: &CityAnalysis) -> CdfResult {
    let store = &a.ookla;
    let (user, down, up) = (store.user_id(), store.down(), store.up());
    let mut per_user: HashMap<u64, (Vec<f64>, Vec<f64>)> = HashMap::new();
    for i in store.platform_sel(Platform::IosApp).iter() {
        let entry = per_user.entry(user.get(i)).or_default();
        entry.0.push(down.get(i));
        entry.1.push(up.get(i));
    }

    let mut down_factors = Vec::new();
    let mut up_factors = Vec::new();
    for (downs, ups) in per_user.into_values() {
        if downs.len() < MIN_TESTS {
            continue;
        }
        if let Ok(f) = consistency_factor(&downs) {
            down_factors.push(f);
        }
        if let Ok(f) = consistency_factor(&ups) {
            up_factors.push(f);
        }
    }

    let mut series = Vec::new();
    let mut medians = Vec::new();
    for (label, vals) in [("Download", down_factors), ("Upload", up_factors)] {
        if let Some((s, m)) = ecdf_series(label, &vals) {
            series.push(s);
            medians.push(m);
        }
    }

    CdfResult {
        id: "fig02".into(),
        title: format!(
            "{}: consistency factor, iOS users with >= {MIN_TESTS} tests",
            a.config.city.label()
        ),
        x_label: "Consistency Factor".into(),
        series,
        medians,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.012, 23), 5)
    }

    #[test]
    fn produces_download_and_upload_series() {
        let r = run(&analysis());
        assert_eq!(r.series.len(), 2);
        assert_eq!(r.series[0].label, "Download");
        assert_eq!(r.series[1].label, "Upload");
        assert!(!r.series[0].points.is_empty());
    }

    #[test]
    fn upload_is_more_consistent_than_download() {
        let r = run(&analysis());
        let (down_med, up_med) = (r.medians[0], r.medians[1]);
        assert!(
            up_med > down_med + 0.05,
            "upload median {up_med} should clearly exceed download {down_med}"
        );
        assert!(up_med > 0.7, "upload factor should be near 1: {up_med}");
    }
}
