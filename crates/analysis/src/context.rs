//! Shared analysis context: a generated city dataset plus fitted BST
//! assignments for every measurement.
//!
//! The paper fits BST separately per platform dataset (Table 3 reports
//! per-platform cluster means), so [`CityAnalysis`] fits one model per
//! Ookla platform, one for the M-Lab campaign, and one for the MBA panel,
//! then scatters tier assignments back onto the measurement vectors.

use rand::rngs::StdRng;
use rand::SeedableRng;
use st_bst::{BstConfig, BstModel};
use st_datagen::CityDataset;
use st_netsim::Mbps;
use st_speedtest::{Measurement, PlanCatalog, Platform};
use st_stats::Ecdf;

use crate::results::SeriesData;

/// A city dataset with BST fitted to each sub-campaign.
pub struct CityAnalysis {
    /// The underlying dataset.
    pub dataset: CityDataset,
    /// Fitted per-platform Ookla models with the measurement indices
    /// (into `dataset.ookla`) each model was fitted on.
    pub ookla_models: Vec<(Platform, BstModel, Vec<usize>)>,
    /// BST tier per Ookla measurement (parallel to `dataset.ookla`).
    pub ookla_tiers: Vec<Option<usize>>,
    /// The M-Lab model.
    pub mlab_model: Option<BstModel>,
    /// BST tier per M-Lab measurement (parallel to `dataset.mlab`).
    pub mlab_tiers: Vec<Option<usize>>,
    /// The MBA model.
    pub mba_model: Option<BstModel>,
    /// BST tier per MBA measurement (parallel to `dataset.mba`).
    pub mba_tiers: Vec<Option<usize>>,
}

impl CityAnalysis {
    /// Fit BST to every sub-campaign of `dataset`.
    pub fn new(dataset: CityDataset, seed: u64) -> Self {
        let cfg = BstConfig::default();
        let catalog = dataset.config.catalog.clone();
        let mut rng = StdRng::seed_from_u64(seed);

        let mut ookla_models = Vec::new();
        let mut ookla_tiers = vec![None; dataset.ookla.len()];
        for platform in Platform::all() {
            if platform == Platform::NdtWeb {
                continue;
            }
            let indices: Vec<usize> = dataset
                .ookla
                .iter()
                .enumerate()
                .filter(|(_, m)| m.platform == platform)
                .map(|(i, _)| i)
                .collect();
            if indices.len() < 30 {
                continue; // too thin to cluster meaningfully
            }
            let down: Vec<f64> = indices.iter().map(|&i| dataset.ookla[i].down_mbps).collect();
            let up: Vec<f64> = indices.iter().map(|&i| dataset.ookla[i].up_mbps).collect();
            if let Ok(model) = BstModel::fit(&down, &up, &catalog, &cfg, &mut rng) {
                for (j, &i) in indices.iter().enumerate() {
                    ookla_tiers[i] = model.assignments[j].tier;
                }
                ookla_models.push((platform, model, indices));
            }
        }

        let (mlab_model, mlab_tiers) = fit_campaign(&dataset.mlab, &catalog, &cfg, &mut rng);
        let (mba_model, mba_tiers) = fit_campaign(&dataset.mba, &catalog, &cfg, &mut rng);

        CityAnalysis {
            dataset,
            ookla_models,
            ookla_tiers,
            mlab_model,
            mlab_tiers,
            mba_model,
            mba_tiers,
        }
    }

    /// The city's plan catalog.
    pub fn catalog(&self) -> &PlanCatalog {
        &self.dataset.config.catalog
    }

    /// Advertised download speed of a tier.
    pub fn plan_down(&self, tier: usize) -> Option<Mbps> {
        self.catalog().plan(tier).map(|p| p.down)
    }

    /// Download speed normalized by the assigned tier's plan speed,
    /// clamped to `[0, 1]` as in the paper's figures.
    pub fn normalized_down(&self, m: &Measurement, tier: Option<usize>) -> Option<f64> {
        let tier = tier?;
        let plan = self.plan_down(tier)?;
        Some((m.down_mbps / plan.0).clamp(0.0, 1.0))
    }

    /// Tier-group index (0-based, ascending upload cap) containing `tier`.
    pub fn group_index(&self, tier: usize) -> Option<usize> {
        self.catalog().tier_groups().iter().position(|g| g.tiers.contains(&tier))
    }

    /// The Ookla model fitted for `platform`.
    pub fn ookla_model(&self, platform: Platform) -> Option<&BstModel> {
        self.ookla_models.iter().find(|(p, ..)| *p == platform).map(|(_, m, _)| m)
    }

    /// Ookla measurements of one platform with their assigned tiers.
    pub fn ookla_platform(&self, platform: Platform) -> Vec<(&Measurement, Option<usize>)> {
        self.dataset
            .ookla
            .iter()
            .zip(&self.ookla_tiers)
            .filter(|(m, _)| m.platform == platform)
            .map(|(m, t)| (m, *t))
            .collect()
    }

    /// Ookla native-app measurements (everything but the web portal).
    pub fn ookla_native(&self) -> Vec<(&Measurement, Option<usize>)> {
        self.dataset
            .ookla
            .iter()
            .zip(&self.ookla_tiers)
            .filter(|(m, _)| m.platform.has_device_metadata())
            .map(|(m, t)| (m, *t))
            .collect()
    }
}

fn fit_campaign(
    ms: &[Measurement],
    catalog: &PlanCatalog,
    cfg: &BstConfig,
    rng: &mut StdRng,
) -> (Option<BstModel>, Vec<Option<usize>>) {
    if ms.len() < 30 {
        return (None, vec![None; ms.len()]);
    }
    let down: Vec<f64> = ms.iter().map(|m| m.down_mbps).collect();
    let up: Vec<f64> = ms.iter().map(|m| m.up_mbps).collect();
    match BstModel::fit(&down, &up, catalog, cfg, rng) {
        Ok(model) => {
            let tiers = model.tiers();
            (Some(model), tiers)
        }
        Err(_) => (None, vec![None; ms.len()]),
    }
}

/// Build a CDF series (capped at 200 plot points) from raw values.
/// Returns `None` for an empty sample.
pub fn ecdf_series(label: &str, values: &[f64]) -> Option<(SeriesData, f64)> {
    let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let e = Ecdf::new(&clean).ok()?;
    Some((SeriesData::new(label, e.plot_points(200)), e.median()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::City;

    fn analysis() -> CityAnalysis {
        let ds = CityDataset::generate(City::A, 0.004, 99);
        CityAnalysis::new(ds, 7)
    }

    #[test]
    fn fits_models_for_major_platforms() {
        let a = analysis();
        // Web and iOS are the two biggest platforms; both must fit.
        assert!(a.ookla_model(Platform::Web).is_some());
        assert!(a.ookla_model(Platform::IosApp).is_some());
        assert!(a.mlab_model.is_some());
        assert!(a.mba_model.is_some());
    }

    #[test]
    fn assignments_cover_most_measurements() {
        let a = analysis();
        let assigned = a.ookla_tiers.iter().filter(|t| t.is_some()).count();
        assert!(
            assigned as f64 / a.ookla_tiers.len() as f64 > 0.7,
            "only {assigned}/{} Ookla tests assigned",
            a.ookla_tiers.len()
        );
        let mba_assigned = a.mba_tiers.iter().filter(|t| t.is_some()).count();
        assert!(mba_assigned as f64 / a.mba_tiers.len() as f64 > 0.9);
    }

    #[test]
    fn assigned_tiers_mostly_match_truth_on_mba() {
        let a = analysis();
        let (mut ok, mut n) = (0usize, 0usize);
        for (m, t) in a.dataset.mba.iter().zip(&a.mba_tiers) {
            if let (Some(truth), Some(got)) = (m.truth_tier, t) {
                n += 1;
                // Score the upload *group*, the Table 2 criterion.
                let truth_group = a.group_index(truth);
                let got_group = a.group_index(*got);
                if truth_group == got_group {
                    ok += 1;
                }
            }
        }
        assert!(n > 0);
        assert!(ok as f64 / n as f64 > 0.9, "MBA group accuracy {}", ok as f64 / n as f64);
    }

    #[test]
    fn normalized_download_is_in_unit_interval() {
        let a = analysis();
        for (m, t) in a.dataset.ookla.iter().zip(&a.ookla_tiers) {
            if let Some(nd) = a.normalized_down(m, *t) {
                assert!((0.0..=1.0).contains(&nd));
            }
        }
    }

    #[test]
    fn group_index_follows_catalog() {
        let a = analysis();
        assert_eq!(a.group_index(1), Some(0));
        assert_eq!(a.group_index(6), Some(3));
        assert_eq!(a.group_index(99), None);
    }

    #[test]
    fn ecdf_series_helper() {
        let (s, median) = ecdf_series("x", &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.label, "x");
        assert_eq!(median, 2.0);
        assert!(ecdf_series("e", &[]).is_none());
        assert!(ecdf_series("nan", &[f64::NAN]).is_none());
    }

    #[test]
    fn platform_filters() {
        let a = analysis();
        let native = a.ookla_native();
        let web = a.ookla_platform(Platform::Web);
        assert_eq!(native.len() + web.len(), a.dataset.ookla.len());
    }
}
