//! Shared analysis context: segmented campaign stores plus fitted BST
//! models for one city.
//!
//! The paper fits BST separately per platform dataset (Table 3 reports
//! per-platform cluster means), so [`CityAnalysis`] fits one model per
//! Ookla platform, one for the M-Lab campaign, and one for the MBA panel,
//! then scatters tier and plan-cap assignments onto the stores as
//! derived columns ([`st_speedtest::AssignedColumns`] per segment).
//! Figure and table modules read the stores through
//! [`st_speedtest::FragSelection`]s and segmented column getters;
//! nothing downstream clones `Vec<Measurement>` rows or assumes one
//! contiguous slice.
//!
//! The stores arrive either from the batch pipeline (one sealed segment
//! wrapping a sanitized campaign — [`CityAnalysis::new`]) or from the
//! incremental ingest front-end (chunk-built multi-segment stores —
//! [`CityAnalysis::from_stores`]). The fit path is shared: BST consumes
//! each selection's gathered values, which are chunking-invariant, so
//! both roads produce bit-identical models and assignments.

use rand::rngs::StdRng;
use rand::SeedableRng;
use st_bst::{BstConfig, BstModel};
use st_datagen::{CityConfig, CityDataset};
use st_netsim::Mbps;
use st_speedtest::{PlanCatalog, Platform, SegmentedStore};
use st_stats::Ecdf;

use crate::results::SeriesData;

/// A city's campaigns, stored columnar and segmented, with BST fitted
/// to each.
pub struct CityAnalysis {
    /// The city's generation config (catalog, city id, scale).
    pub config: CityConfig,
    /// Ookla campaign as segments (tier/cap assignments scattered on).
    pub ookla: SegmentedStore,
    /// M-Lab campaign as segments.
    pub mlab: SegmentedStore,
    /// MBA panel as segments.
    pub mba: SegmentedStore,
    /// Fitted per-platform Ookla models.
    pub ookla_models: Vec<(Platform, BstModel)>,
    /// The M-Lab model.
    pub mlab_model: Option<BstModel>,
    /// The MBA model.
    pub mba_model: Option<BstModel>,
}

impl CityAnalysis {
    /// Fit BST to every sub-campaign of `dataset`.
    ///
    /// Determinism contract: one RNG seeded from `seed` is threaded
    /// sequentially through the fits in a fixed order — Ookla platforms
    /// in `Platform::all()` order (platforms with < 30 samples are
    /// skipped *without* consuming randomness), then M-Lab, then MBA —
    /// so fits are bit-identical to the row-oriented pipeline this
    /// store-backed version replaced.
    pub fn new(dataset: CityDataset, seed: u64) -> Self {
        Self::new_observed(dataset, seed, &st_obs::Registry::disabled())
    }

    /// [`CityAnalysis::new`] recording fit diagnostics into `reg`
    /// (DESIGN.md §13). Observation happens strictly *after* each fit —
    /// the registry never feeds back into the RNG stream or the models,
    /// so the fitted analysis is bit-identical to [`CityAnalysis::new`].
    pub fn new_observed(dataset: CityDataset, seed: u64, reg: &st_obs::Registry) -> Self {
        let CityDataset { config, ookla, mlab, mba, .. } = dataset;
        Self::from_stores(
            config,
            SegmentedStore::from_measurements(&ookla),
            SegmentedStore::from_measurements(&mlab),
            SegmentedStore::from_measurements(&mba),
            seed,
            reg,
        )
    }

    /// Fit BST to three already-built (frozen) campaign stores — the
    /// shared back half of the batch and incremental-ingest pipelines.
    /// The RNG threading is exactly [`CityAnalysis::new`]'s, and BST
    /// consumes gathered (contiguous) values, so any segmentation of the
    /// same accepted rows produces bit-identical models.
    pub fn from_stores(
        config: CityConfig,
        ookla: SegmentedStore,
        mlab: SegmentedStore,
        mba: SegmentedStore,
        seed: u64,
        reg: &st_obs::Registry,
    ) -> Self {
        let cfg = BstConfig::default();
        let catalog = config.catalog.clone();
        let city = config.city.label();
        let mut rng = StdRng::seed_from_u64(seed);

        let caps = catalog.upload_caps();
        let cap_index = |cap: Mbps| caps.iter().position(|&c| c == cap).map(|k| k as i32);

        let mut ookla_models = Vec::new();
        let mut ookla_tiers = vec![None; ookla.len()];
        let mut ookla_caps = vec![-1i32; ookla.len()];
        for platform in Platform::all() {
            if platform == Platform::NdtWeb {
                continue;
            }
            let sel = ookla.platform_sel(platform);
            if sel.len() < 30 {
                continue; // too thin to cluster meaningfully
            }
            // Borrows the store's column outright when the selection
            // covers a whole single-segment campaign; materializes only
            // true subsets and multi-segment stores.
            let down_col = ookla.down();
            let up_col = ookla.up();
            let down = sel.gather_view(&down_col);
            let up = sel.gather_view(&up_col);
            if let Ok(model) = BstModel::fit(&down, &up, &catalog, &cfg, &mut rng) {
                for (j, i) in sel.iter().enumerate() {
                    ookla_tiers[i] = model.assignments[j].tier;
                    ookla_caps[i] =
                        model.assignments[j].upload_cap.and_then(cap_index).unwrap_or(-1);
                }
                st_bst::observe_model(
                    reg,
                    &[("campaign", "ookla"), ("city", city), ("platform", platform.label())],
                    &model,
                    &cfg,
                );
                ookla_models.push((platform, model));
            }
        }
        ookla
            .set_assignments(ookla_tiers, ookla_caps, &catalog)
            .expect("assignments are scattered exactly once per fit");

        let mlab_model = fit_campaign(&mlab, &catalog, &cfg, &mut rng);
        let mba_model = fit_campaign(&mba, &catalog, &cfg, &mut rng);
        for (campaign, model) in [("mlab", &mlab_model), ("mba", &mba_model)] {
            if let Some(model) = model {
                st_bst::observe_model(reg, &[("campaign", campaign), ("city", city)], model, &cfg);
            }
        }

        CityAnalysis { config, ookla, mlab, mba, ookla_models, mlab_model, mba_model }
    }

    /// The city's plan catalog.
    pub fn catalog(&self) -> &PlanCatalog {
        &self.config.catalog
    }

    /// Advertised download speed of a tier.
    pub fn plan_down(&self, tier: usize) -> Option<Mbps> {
        self.catalog().plan(tier).map(|p| p.down)
    }

    /// Tier-group index (0-based, ascending upload cap) containing `tier`.
    pub fn group_index(&self, tier: usize) -> Option<usize> {
        self.catalog().tier_groups().iter().position(|g| g.tiers.contains(&tier))
    }

    /// The Ookla model fitted for `platform`.
    pub fn ookla_model(&self, platform: Platform) -> Option<&BstModel> {
        self.ookla_models.iter().find(|(p, _)| *p == platform).map(|(_, m)| m)
    }
}

/// Fit one whole-campaign model and scatter its assignments onto the
/// store (all-`None` when the campaign is too thin or the fit fails, so
/// downstream readers never observe an unassigned store).
fn fit_campaign(
    store: &SegmentedStore,
    catalog: &PlanCatalog,
    cfg: &BstConfig,
    rng: &mut StdRng,
) -> Option<BstModel> {
    let n = store.len();
    let none = || (vec![None; n], vec![-1i32; n]);
    let caps = catalog.upload_caps();
    let (model, (tiers, cap_idx)) = if n < 30 {
        (None, none())
    } else {
        let down = store.down().view();
        let up = store.up().view();
        match BstModel::fit(&down, &up, catalog, cfg, rng) {
            Ok(model) => {
                let cap_idx = model
                    .assignments
                    .iter()
                    .map(|a| {
                        a.upload_cap
                            .and_then(|c| caps.iter().position(|&k| k == c))
                            .map(|k| k as i32)
                            .unwrap_or(-1)
                    })
                    .collect();
                let tiers = model.tiers();
                (Some(model), (tiers, cap_idx))
            }
            Err(_) => (None, none()),
        }
    };
    store.set_assignments(tiers, cap_idx, catalog).expect("each campaign fits exactly once");
    model
}

/// Build a CDF series (capped at 200 plot points) from raw values.
/// Returns `None` for an empty sample.
pub fn ecdf_series(label: &str, values: &[f64]) -> Option<(SeriesData, f64)> {
    let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let e = Ecdf::new(&clean).ok()?;
    Some((SeriesData::new(label, e.plot_points(200)), e.median()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::City;

    fn analysis() -> CityAnalysis {
        let ds = CityDataset::generate(City::A, 0.004, 99);
        CityAnalysis::new(ds, 7)
    }

    #[test]
    fn fits_models_for_major_platforms() {
        let a = analysis();
        // Web and iOS are the two biggest platforms; both must fit.
        assert!(a.ookla_model(Platform::Web).is_some());
        assert!(a.ookla_model(Platform::IosApp).is_some());
        assert!(a.mlab_model.is_some());
        assert!(a.mba_model.is_some());
    }

    #[test]
    fn assignments_cover_most_measurements() {
        let a = analysis();
        let tiers = a.ookla.assigned_tier();
        let assigned = tiers.iter().filter(|t| t.is_some()).count();
        assert!(
            assigned as f64 / tiers.len() as f64 > 0.7,
            "only {assigned}/{} Ookla tests assigned",
            tiers.len()
        );
        let mba_tiers = a.mba.assigned_tier();
        let mba_assigned = mba_tiers.iter().filter(|t| t.is_some()).count();
        assert!(mba_assigned as f64 / mba_tiers.len() as f64 > 0.9);
    }

    #[test]
    fn assigned_tiers_mostly_match_truth_on_mba() {
        let a = analysis();
        let (mut ok, mut n) = (0usize, 0usize);
        for (truth, t) in a.mba.truth_tier().iter().zip(a.mba.assigned_tier().iter()) {
            if let (Some(truth), Some(got)) = (truth, t) {
                n += 1;
                // Score the upload *group*, the Table 2 criterion.
                let truth_group = a.group_index(*truth);
                let got_group = a.group_index(*got);
                if truth_group == got_group {
                    ok += 1;
                }
            }
        }
        assert!(n > 0);
        assert!(ok as f64 / n as f64 > 0.9, "MBA group accuracy {}", ok as f64 / n as f64);
    }

    #[test]
    fn normalized_download_is_in_unit_interval() {
        let a = analysis();
        for (t, nd) in a.ookla.assigned_tier().iter().zip(a.ookla.normalized_down().iter()) {
            if t.is_some() {
                assert!((0.0..=1.0).contains(nd), "assigned rows normalize into [0, 1]");
            } else {
                assert!(nd.is_nan(), "unassigned rows carry NaN");
            }
        }
    }

    #[test]
    fn group_index_follows_catalog() {
        let a = analysis();
        assert_eq!(a.group_index(1), Some(0));
        assert_eq!(a.group_index(6), Some(3));
        assert_eq!(a.group_index(99), None);
        // The scattered group column agrees with the catalog mapping.
        for (t, g) in a.ookla.assigned_tier().iter().zip(a.ookla.group_idx().iter()) {
            let expect = t.and_then(|t| a.group_index(t)).map(|g| g as i32).unwrap_or(-1);
            assert_eq!(*g, expect);
        }
    }

    #[test]
    fn ecdf_series_helper() {
        let (s, median) = ecdf_series("x", &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.label, "x");
        assert_eq!(median, 2.0);
        assert!(ecdf_series("e", &[]).is_none());
        assert!(ecdf_series("nan", &[f64::NAN]).is_none());
    }

    fn observed_analysis() -> (CityAnalysis, st_obs::MetricsSnapshot) {
        let ds = CityDataset::generate(City::A, 0.004, 99);
        let reg = st_obs::Registry::new();
        let a = CityAnalysis::new_observed(ds, 7, &reg);
        (a, reg.snapshot())
    }

    #[test]
    fn fit_metrics_are_seed_stable_across_repeated_fits() {
        // Same city, same seed, fitted twice: the EM-iteration counters
        // and log-likelihood trajectories must be byte-identical — they
        // are pure functions of (dataset, seed).
        let (_, snap1) = observed_analysis();
        let (_, snap2) = observed_analysis();
        assert_eq!(snap1.deterministic_json(), snap2.deterministic_json());
        // And they actually recorded the fits, per stage.
        let has_stage2 =
            snap1.deterministic.counters.keys().any(|k| k.starts_with("bst.stage2.em_iterations"));
        assert!(has_stage2, "no stage-2 EM iteration counters recorded");
        let has_ll = snap1.deterministic.series.keys().any(|k| k.starts_with("bst.stage2.ll"));
        assert!(has_ll, "no stage-2 log-likelihood trajectories recorded");
    }

    #[test]
    fn fit_metrics_match_fitted_model_state() {
        // The table3-style cross-check: metrics must agree with what the
        // fitted models themselves report.
        let (a, snap) = observed_analysis();
        let det = &snap.deterministic;

        // Stage-1 cap-member counters equal the MBA model's member counts
        // per upload cap.
        let mba = a.mba_model.as_ref().expect("MBA model fits at this scale");
        let mut caps: Vec<_> = mba.uploads.component_caps.iter().flatten().copied().collect();
        caps.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        caps.dedup();
        for cap in caps {
            let key = format!("bst.stage1.cap_members{{campaign=mba,cap={},city=City-A}}", cap.0);
            assert_eq!(
                det.counters.get(&key).copied().unwrap_or(0),
                mba.uploads.members_of(cap).len() as u64,
                "member-count mismatch for {key}"
            );
        }

        // Assigned/unassigned counters partition the MBA sample.
        let assigned = det.counters["bst.assigned{campaign=mba,city=City-A}"];
        let unassigned = det.counters["bst.unassigned{campaign=mba,city=City-A}"];
        assert_eq!((assigned + unassigned) as usize, mba.assignments.len());
        assert_eq!(assigned as usize, mba.assignments.iter().filter(|x| x.tier.is_some()).count());

        // Stage-1 EM iterations and trajectory match the fit diagnostics.
        let fit = mba.uploads.gmm.fit_info();
        assert_eq!(
            det.counters["bst.stage1.em_iterations{campaign=mba,city=City-A}"],
            fit.iterations as u64
        );
        assert_eq!(det.series["bst.stage1.ll{campaign=mba,city=City-A}"], fit.trajectory);

        // Per-group stage-2 iterations sum (plus stage 1) into the total.
        let em_total: u64 = fit.iterations as u64
            + mba.downloads.iter().map(|(_, dc)| dc.gmm.fit_info().iterations as u64).sum::<u64>();
        assert_eq!(det.counters["bst.em_iterations_total{campaign=mba,city=City-A}"], em_total);
    }

    #[test]
    fn observed_fit_is_identical_to_unobserved() {
        // Metrics are read-only observers: the fitted models must be
        // bit-identical with and without a live registry.
        let ds = CityDataset::generate(City::A, 0.004, 99);
        let plain = CityAnalysis::new(ds, 7);
        let (observed, _) = observed_analysis();
        assert_eq!(plain.ookla_models.len(), observed.ookla_models.len());
        for ((p1, m1), (p2, m2)) in plain.ookla_models.iter().zip(&observed.ookla_models) {
            assert_eq!(p1, p2);
            assert_eq!(m1.uploads.gmm, m2.uploads.gmm);
            assert_eq!(m1.assignments, m2.assignments);
        }
        assert_eq!(
            plain.mba_model.as_ref().map(|m| &m.assignments),
            observed.mba_model.as_ref().map(|m| &m.assignments)
        );
    }

    #[test]
    fn platform_selections_partition_the_campaign() {
        let a = analysis();
        let native = a.ookla.native_sel();
        let web = a.ookla.platform_sel(Platform::Web);
        assert_eq!(native.len() + web.len(), a.ookla.len());
        assert!(native.and(&web).is_empty());
    }

    #[test]
    fn chunked_ingest_fits_identical_models() {
        // The tentpole equivalence at the analysis layer: chunk-ingested
        // multi-segment stores must fit bit-identical models to the
        // batch single-segment path (generated campaigns are clean, so
        // incremental sanitize accepts every row unchanged).
        let ds = CityDataset::generate(City::A, 0.004, 99);
        let reg = st_obs::Registry::disabled();
        let mut stores = Vec::new();
        for records in [&ds.ookla, &ds.mlab, &ds.mba] {
            let mut store = SegmentedStore::builder(200);
            for chunk in records.chunks(77) {
                store.append_chunk(chunk.to_vec()).unwrap();
            }
            store.freeze().unwrap();
            stores.push(store);
        }
        assert!(stores[0].num_segments() > 1, "scale must produce a multi-segment Ookla store");
        let mba = stores.pop().unwrap();
        let mlab = stores.pop().unwrap();
        let ookla = stores.pop().unwrap();
        let chunked = CityAnalysis::from_stores(ds.config.clone(), ookla, mlab, mba, 7, &reg);
        let batch = CityAnalysis::new(ds, 7);
        assert_eq!(batch.ookla_models.len(), chunked.ookla_models.len());
        for ((p1, m1), (p2, m2)) in batch.ookla_models.iter().zip(&chunked.ookla_models) {
            assert_eq!(p1, p2);
            assert_eq!(m1.assignments, m2.assignments);
        }
        assert_eq!(
            batch.mba_model.as_ref().map(|m| &m.assignments),
            chunked.mba_model.as_ref().map(|m| &m.assignments)
        );
        assert_eq!(batch.ookla.assigned_tier().to_vec(), chunked.ookla.assigned_tier().to_vec());
        assert_eq!(batch.ookla.group_idx().to_vec(), chunked.ookla.group_idx().to_vec());
    }
}
