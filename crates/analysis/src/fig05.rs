//! Figure 5 (and appendix Figs. 16–18) — download density within each
//! upload cluster of an MBA panel.
//!
//! One sub-figure per tier group: the KDE of download speeds whose
//! stage-1 upload cluster matched the group's cap, with the offered
//! download plans as reference lines and the stage-2 component means as
//! the recovered clusters.

use crate::context::CityAnalysis;
use crate::results::{DensityResult, SeriesData};
use st_stats::{Bandwidth, KernelDensity};

/// One density figure per tier group of the state's catalog.
pub fn run(a: &CityAnalysis) -> Vec<DensityResult> {
    let Some(model) = &a.mba_model else { return Vec::new() };

    let mut out = Vec::new();
    for (gi, group) in a.catalog().tier_groups().iter().enumerate() {
        // Tier groups and upload caps share one ascending order, so the
        // group's memoized cap selection is the stage-1 cluster members.
        let members = a.mba.cap_sel(gi);
        if members.len() < 10 {
            continue;
        }
        let values = members.gather(&a.mba.down());
        let mut series = Vec::new();
        if let Ok(kde) = KernelDensity::fit(&values, Bandwidth::Silverman) {
            if let Ok(grid) = kde.auto_grid(400) {
                series.push(SeriesData::new(group.label(), grid));
            }
        }
        let plan_lines: Vec<f64> =
            a.catalog().plans_with_upload(group.up).iter().map(|p| p.down.0).collect();
        // Report only components carrying real mass (≥ 2%), as the paper
        // lists the major clusters.
        let cluster_means: Vec<f64> = model
            .downloads_for(group.up)
            .map(|d| {
                d.gmm.components().iter().filter(|c| c.weight >= 0.02).map(|c| c.mean).collect()
            })
            .unwrap_or_default();
        out.push(DensityResult {
            id: format!("fig05_{}", group.label().replace(' ', "").to_lowercase()),
            title: format!(
                "{}: MBA download density, {}",
                a.config.city.state_label(),
                group.label()
            ),
            x_label: "Download Speed (Mbps)".into(),
            series,
            plan_lines,
            cluster_means,
            notes: Vec::new(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    fn analysis() -> CityAnalysis {
        CityAnalysis::new(CityDataset::generate(City::A, 0.015, 43), 19)
    }

    #[test]
    fn produces_one_figure_per_populated_group() {
        let figs = run(&analysis());
        assert!(figs.len() >= 3, "got {} group figures", figs.len());
        for f in &figs {
            assert!(!f.series.is_empty());
            assert!(!f.plan_lines.is_empty());
        }
    }

    #[test]
    fn recovered_means_bracket_the_plans() {
        // MBA is wired: every component mean should lie within a plausible
        // band of the group's plan range (§4.3 found means from ~0.74x to
        // ~1.16x of plan).
        let figs = run(&analysis());
        for f in &figs {
            let lo = f.plan_lines.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = f.plan_lines.iter().cloned().fold(0.0f64, f64::max);
            for m in &f.cluster_means {
                assert!(
                    *m > lo * 0.5 && *m < hi * 1.25,
                    "mean {m} outside [{}, {}] for {}",
                    lo * 0.5,
                    hi * 1.25,
                    f.id
                );
            }
        }
    }

    #[test]
    fn tier6_mean_undershoots_gigabit_plan() {
        // §4.3: the 1200 Mbps tier's recovered mean was 892 Mbps.
        let figs = run(&analysis());
        let tier6 = figs.iter().find(|f| f.plan_lines.contains(&1200.0)).unwrap();
        let top_mean = tier6.cluster_means.iter().cloned().fold(0.0f64, f64::max);
        assert!(top_mean < 1150.0 && top_mean > 700.0, "gigabit cluster mean {top_mean}");
    }
}
