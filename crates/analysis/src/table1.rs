//! Table 1 — dataset sizes per city.

use crate::context::CityAnalysis;
use crate::results::TableResult;

/// Render the Table 1 rows for a set of analyzed cities.
pub fn run(analyses: &[&CityAnalysis]) -> TableResult {
    let rows = analyses
        .iter()
        .map(|a| {
            vec![
                a.config.city.label().to_string(),
                a.config.catalog.isp.clone(),
                format!("{}", a.ookla.len()),
                format!("{}", a.mlab.len()),
                format!("{}", a.mba.len()),
            ]
        })
        .collect();
    TableResult {
        id: "table1".into(),
        title: format!(
            "Dataset sizes (scale {} of the paper's campaigns)",
            analyses.first().map(|a| a.config.scale).unwrap_or(0.0)
        ),
        headers: vec![
            "City/State".into(),
            "ISP".into(),
            "Ookla".into(),
            "M-Lab".into(),
            "MBA".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_datagen::{City, CityDataset};

    #[test]
    fn one_row_per_city_with_counts() {
        let a = CityAnalysis::new(CityDataset::generate(City::A, 0.002, 1), 1);
        let b = CityAnalysis::new(CityDataset::generate(City::B, 0.002, 1), 1);
        let t = run(&[&a, &b]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "City-A");
        assert_eq!(t.rows[0][1], "ISP-A");
        assert_eq!(t.rows[0][2], a.ookla.len().to_string());
        assert_eq!(t.rows[1][4], b.mba.len().to_string());
    }

    #[test]
    fn relative_sizes_follow_the_paper() {
        // Table 1: City-B has the largest M-Lab campaign; City-A the
        // largest MBA panel.
        let ds: Vec<CityDataset> = [City::A, City::B, City::C, City::D]
            .iter()
            .map(|&c| CityDataset::generate(c, 0.002, 2))
            .collect();
        assert!(ds[1].mlab.len() > ds[0].mlab.len());
        assert!(ds[0].mba.len() >= ds[1].mba.len());
    }
}
