//! Benchmarks of the substrate layers: statistical kernels, the TCP
//! simulator, dataset generation, and BST fitting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use st_bst::{BstConfig, BstModel};
use st_datagen::{catalog_for, City, CityDataset};
use st_netsim::tcp::{FlowConfig, TcpSimulator};
use st_netsim::Mbps;
use st_stats::{Bandwidth, GaussianMixture, GmmConfig, KernelDensity};
use std::hint::black_box;

fn gaussians(spec: &[(f64, f64, usize)], seed: u64) -> Vec<f64> {
    let mut r = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for &(mu, sd, n) in spec {
        for _ in 0..n {
            let u1: f64 = r.gen::<f64>().max(1e-12);
            let u2: f64 = r.gen();
            out.push(mu + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos());
        }
    }
    out
}

fn bench_stats(c: &mut Criterion) {
    let data =
        gaussians(&[(5.3, 0.5, 4000), (10.7, 0.6, 1500), (16.0, 0.8, 1200), (37.5, 1.5, 1800)], 7);

    let mut g = c.benchmark_group("stats");
    g.bench_function("kde_fit_and_peaks_8k", |b| {
        b.iter(|| {
            let kde = KernelDensity::fit(&data, Bandwidth::Silverman).unwrap();
            black_box(kde.find_peaks(512, 0.02).unwrap())
        })
    });
    g.bench_function("gmm_em_seeded_8k_k4", |b| {
        b.iter(|| {
            black_box(
                GaussianMixture::fit_with_means(
                    &data,
                    &[5.0, 10.0, 15.0, 35.0],
                    GmmConfig::default(),
                )
                .unwrap(),
            )
        })
    });
    g.bench_function("gmm_em_kmeanspp_8k_k4", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(GaussianMixture::fit(&data, GmmConfig::with_k(4), &mut rng).unwrap()))
    });
    g.finish();
}

fn bench_tcp(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_simulator");
    for &(flows, label) in &[(1usize, "ndt_1flow"), (8, "ookla_8flows")] {
        g.bench_function(BenchmarkId::new("transfer_15s_15ms", label), |b| {
            let cfg = FlowConfig::new(flows, 15.0, 0.015, Mbps(800.0)).with_loss(1e-4);
            let sim = TcpSimulator::new(cfg);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(sim.run(3.0, &mut rng)))
        });
    }
    g.finish();
}

fn bench_datagen(c: &mut Criterion) {
    let mut g = c.benchmark_group("datagen");
    g.sample_size(10);
    g.bench_function("city_a_scale_0.002", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(CityDataset::generate(City::A, 0.002, seed))
        })
    });
    g.finish();
}

fn bench_bst(c: &mut Criterion) {
    let ds = CityDataset::generate(City::A, 0.01, 11);
    let down: Vec<f64> = ds.mba.iter().map(|m| m.down_mbps).collect();
    let up: Vec<f64> = ds.mba.iter().map(|m| m.up_mbps).collect();
    let catalog = catalog_for(City::A);

    let mut g = c.benchmark_group("bst");
    g.bench_function("fit_mba_panel", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            black_box(BstModel::fit(&down, &up, &catalog, &BstConfig::default(), &mut rng).unwrap())
        })
    });
    g.bench_function("assign_single_point", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let model = BstModel::fit(&down, &up, &catalog, &BstConfig::default(), &mut rng).unwrap();
        b.iter(|| black_box(model.assign(black_box(117.0), black_box(5.2))))
    });
    g.finish();
}

criterion_group!(substrates, bench_stats, bench_tcp, bench_datagen, bench_bst);
criterion_main!(substrates);
