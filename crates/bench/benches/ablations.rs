//! Ablation benchmarks for the design choices DESIGN.md §8 calls out.
//!
//! Each benchmark both times the variant and (once, outside the timing
//! loop) prints its accuracy on a noisy crowdsourced-style sample, so a
//! bench run doubles as the ablation accuracy report.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use st_bst::ablation::{bic_upload_components, download_first_tiers, kmeans_tiers, tier_accuracy};
use st_bst::{BstConfig, BstModel};
use st_datagen::catalog_for;
use st_datagen::City;
use st_netsim::tcp::{CongestionControl, FlowConfig, TcpSimulator};
use st_netsim::Mbps;
use std::hint::black_box;
use std::sync::OnceLock;

/// A noisy crowdsourced-style sample with truth (WiFi drags half of each
/// tier's downloads far below plan).
fn sample() -> &'static (Vec<f64>, Vec<f64>, Vec<usize>) {
    static CELL: OnceLock<(Vec<f64>, Vec<f64>, Vec<usize>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut r = StdRng::seed_from_u64(99);
        let spec: [(f64, f64, usize, usize); 4] = [
            (110.0, 5.4, 1500, 2),
            (430.0, 10.7, 900, 4),
            (780.0, 16.0, 700, 5),
            (1000.0, 37.5, 900, 6),
        ];
        let (mut down, mut up, mut truth) = (Vec::new(), Vec::new(), Vec::new());
        for &(dmu, umu, n, tier) in &spec {
            for _ in 0..n {
                let degradation = if r.gen::<f64>() < 0.5 {
                    0.15 + r.gen::<f64>() * 0.5
                } else {
                    0.85 + r.gen::<f64>() * 0.2
                };
                let g = |r: &mut StdRng, mu: f64, sd: f64| {
                    let u1: f64 = r.gen::<f64>().max(1e-12);
                    let u2: f64 = r.gen();
                    mu + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                };
                down.push((g(&mut r, dmu, dmu * 0.05) * degradation).max(1.0));
                up.push(g(&mut r, umu, umu * 0.06).max(0.3));
                truth.push(tier);
            }
        }
        (down, up, truth)
    })
}

fn bench_upload_first_vs_download_first(c: &mut Criterion) {
    let (down, up, truth) = sample();
    let catalog = catalog_for(City::A);
    let cfg = BstConfig::default();

    // Accuracy report (once).
    let mut rng = StdRng::seed_from_u64(1);
    let bst = BstModel::fit(down, up, &catalog, &cfg, &mut rng).unwrap();
    let df = download_first_tiers(down, &catalog, &cfg, &mut rng).unwrap();
    eprintln!(
        "[ablation] upload-first BST accuracy = {:.3}, download-first = {:.3}",
        tier_accuracy(&bst.tiers(), truth),
        tier_accuracy(&df, truth)
    );

    let mut g = c.benchmark_group("ablation_hierarchy");
    g.sample_size(10);
    g.bench_function("upload_first_bst", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(BstModel::fit(down, up, &catalog, &cfg, &mut rng).unwrap()))
    });
    g.bench_function("download_first", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(download_first_tiers(down, &catalog, &cfg, &mut rng).unwrap()))
    });
    g.finish();
}

fn bench_gmm_vs_kmeans(c: &mut Criterion) {
    let (down, up, truth) = sample();
    let catalog = catalog_for(City::A);

    let mut rng = StdRng::seed_from_u64(3);
    let km = kmeans_tiers(down, up, &catalog, &mut rng).unwrap();
    eprintln!("[ablation] k-means hierarchy accuracy = {:.3}", tier_accuracy(&km, truth));

    let mut g = c.benchmark_group("ablation_clusterer");
    g.sample_size(10);
    g.bench_function("kmeans_hierarchy", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(kmeans_tiers(down, up, &catalog, &mut rng).unwrap()))
    });
    g.finish();
}

fn bench_peak_count_vs_bic(c: &mut Criterion) {
    let (_, up, _) = sample();
    let mut rng = StdRng::seed_from_u64(5);
    let k = bic_upload_components(up, 8, &mut rng).unwrap();
    eprintln!("[ablation] BIC selects k = {k} upload components (true caps: 4)");

    let mut g = c.benchmark_group("ablation_model_selection");
    g.sample_size(10);
    g.bench_function("bic_sweep_k1to8", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| black_box(bic_upload_components(up, 8, &mut rng).unwrap()))
    });
    g.finish();
}

fn bench_congestion_control_sensitivity(c: &mut Criterion) {
    // How much of the §6.3 vendor gap survives if NDT's server ran CUBIC
    // (as 2021 Linux servers did) instead of the Reno the model defaults
    // to? Report the single-vs-8-flow gap under both algorithms.
    let mut rng = StdRng::seed_from_u64(7);
    let mut gap = |cc: CongestionControl| {
        let mut avg = |flows: usize| {
            let cfg = FlowConfig::new(flows, 15.0, 0.015, Mbps(800.0))
                .with_loss(1e-4)
                .with_congestion_control(cc);
            let sim = TcpSimulator::new(cfg);
            (0..20).map(|_| sim.run(2.0, &mut rng).mean_steady.0).sum::<f64>() / 20.0
        };
        avg(8) / avg(1)
    };
    eprintln!(
        "[ablation] single-flow gap: Reno {:.2}x, CUBIC {:.2}x (gap persists under CUBIC)",
        gap(CongestionControl::Reno),
        gap(CongestionControl::Cubic)
    );

    let mut g = c.benchmark_group("ablation_congestion_control");
    g.sample_size(10);
    for (name, cc) in [("reno", CongestionControl::Reno), ("cubic", CongestionControl::Cubic)] {
        g.bench_function(name, |b| {
            let cfg = FlowConfig::new(1, 15.0, 0.015, Mbps(800.0))
                .with_loss(1e-4)
                .with_congestion_control(cc);
            let sim = TcpSimulator::new(cfg);
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| black_box(sim.run(2.0, &mut rng)))
        });
    }
    g.finish();
}

fn bench_joint_2d(c: &mut Criterion) {
    let (down, up, truth) = sample();
    let catalog = catalog_for(City::A);
    let joint = st_bst::ablation::joint_2d_tiers(down, up, &catalog).unwrap();
    eprintln!("[ablation] joint 2-D GMM accuracy = {:.3}", tier_accuracy(&joint, truth));

    let mut g = c.benchmark_group("ablation_joint_2d");
    g.sample_size(10);
    g.bench_function("joint_2d_gmm", |b| {
        b.iter(|| black_box(st_bst::ablation::joint_2d_tiers(down, up, &catalog).unwrap()))
    });
    g.finish();
}

criterion_group!(
    ablations,
    bench_upload_first_vs_download_first,
    bench_gmm_vs_kmeans,
    bench_peak_count_vs_bic,
    bench_congestion_control_sensitivity,
    bench_joint_2d
);
criterion_main!(ablations);
