//! One Criterion benchmark group per paper table/figure: each measures
//! regenerating that artifact from a pre-built city analysis (dataset
//! generation and BST fitting are timed separately in `substrates.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use st_analysis::{
    ext_latency, fig01, fig02, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12,
    fig13, table1, table2, table3, table4, CityAnalysis,
};
use st_datagen::{City, CityDataset};
use std::hint::black_box;
use std::sync::OnceLock;

/// Scale for bench datasets — small enough for quick iterations, large
/// enough that every tier group is populated.
const SCALE: f64 = 0.008;
const SEED: u64 = 4242;

fn analyses() -> &'static Vec<CityAnalysis> {
    static CELL: OnceLock<Vec<CityAnalysis>> = OnceLock::new();
    CELL.get_or_init(|| {
        City::all()
            .into_iter()
            .map(|c| CityAnalysis::new(CityDataset::generate(c, SCALE, SEED), SEED))
            .collect()
    })
}

fn city_a() -> &'static CityAnalysis {
    &analyses()[0]
}

fn bench_tables(c: &mut Criterion) {
    let all = analyses();
    let refs: Vec<&CityAnalysis> = all.iter().collect();
    c.bench_function("table1_dataset_sizes", |b| b.iter(|| black_box(table1::run(&refs))));
    c.bench_function("table2_mba_accuracy", |b| b.iter(|| black_box(table2::run(&refs))));
    c.bench_function("table3_upload_clusters", |b| b.iter(|| black_box(table3::run(city_a()))));
    c.bench_function("table4_download_means", |b| b.iter(|| black_box(table4::run(city_a()))));
    // Tables 5-7 are table3 over cities B-D.
    c.bench_function("tables5to7_appendix", |b| {
        b.iter(|| {
            for a in &all[1..] {
                black_box(table3::run(a));
            }
        })
    });
}

fn bench_main_figures(c: &mut Criterion) {
    let a = city_a();
    c.bench_function("fig01_motivating_cdfs", |b| b.iter(|| black_box(fig01::run(a))));
    c.bench_function("fig02_consistency_factor", |b| b.iter(|| black_box(fig02::run(a))));
    c.bench_function("fig04_mba_upload_kde", |b| b.iter(|| black_box(fig04::run(a))));
    c.bench_function("fig05_mba_download_kde", |b| b.iter(|| black_box(fig05::run(a))));
    c.bench_function("fig06_crowd_upload_kde", |b| b.iter(|| black_box(fig06::run(a))));
    c.bench_function("fig07_android_download_kde", |b| b.iter(|| black_box(fig07::run(a))));
    c.bench_function("fig08_alpha_consistency", |b| b.iter(|| black_box(fig08::run(a))));
}

fn bench_diagnosis_figures(c: &mut Criterion) {
    let a = city_a();
    c.bench_function("fig09_local_factors", |b| b.iter(|| black_box(fig09::run(a))));
    c.bench_function("fig10_best_vs_bottleneck", |b| b.iter(|| black_box(fig10::run(a))));
    c.bench_function("fig11_time_of_day_volume", |b| b.iter(|| black_box(fig11::run(a))));
    c.bench_function("fig12_time_of_day_performance", |b| {
        b.iter(|| black_box(fig12::run_default(a)))
    });
    c.bench_function("fig13_vendor_gap", |b| b.iter(|| black_box(fig13::run(a))));
    c.bench_function("ext_latency_under_load", |b| b.iter(|| black_box(ext_latency::run(a))));
}

fn bench_appendix_figures(c: &mut Criterion) {
    let all = analyses();
    c.bench_function("fig14to18_appendix_kdes", |b| {
        b.iter(|| {
            for a in &all[1..] {
                black_box(fig04::run(a));
                black_box(fig05::run(a));
                black_box(fig06::run(a));
            }
        })
    });
}

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_tables, bench_main_figures, bench_diagnosis_figures,
        bench_appendix_figures
);
criterion_main!(experiments);
