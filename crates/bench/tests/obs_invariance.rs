//! Parallelism-invariance suite for the observability layer (DESIGN.md
//! §"Observability").
//!
//! The deterministic metric class carries the same contract as the
//! artifacts: byte-identical at every parallelism level, because every
//! worker records into its own sub-registry and the coordinators merge
//! them in fixed city/job order. The wall-clock class (span durations)
//! is explicitly exempt. Observation must also be read-only — enabling
//! the registry must not change a single artifact byte.

use st_bench::{
    build_analyses_observed, render_health, render_metrics, run_all_observed, ReproReport,
    SuperviseOptions,
};
use st_datagen::DirtyScenario;
use st_obs::{MetricsSnapshot, Registry};

const SCALE: f64 = 0.004;
const SEED: u64 = 2024;

fn observed_run(
    parallelism: usize,
    dirty: Option<&DirtyScenario>,
    fail_jobs: &[&str],
) -> (ReproReport, MetricsSnapshot) {
    let obs = Registry::new();
    let (analyses, timings, sanitize) =
        build_analyses_observed(SCALE, SEED, parallelism, dirty, &obs);
    let opts = SuperviseOptions {
        parallelism,
        fail_jobs: fail_jobs.iter().map(|s| s.to_string()).collect(),
        ..SuperviseOptions::default()
    };
    let report = run_all_observed(&analyses, SCALE, SEED, &opts, timings, sanitize, &obs);
    let snapshot = obs.snapshot();
    (report, snapshot)
}

#[test]
fn deterministic_metrics_are_byte_identical_across_parallelism() {
    let (r1, p1) = observed_run(1, None, &[]);
    let (r4, p4) = observed_run(4, None, &[]);

    // The equality must not be vacuous: the pipeline really recorded.
    assert!(
        p1.deterministic.counters.len() > 20,
        "suspiciously few counters: {:?}",
        p1.deterministic.counters.keys().collect::<Vec<_>>()
    );
    assert!(!p1.deterministic.gauges.is_empty());
    assert!(!p1.deterministic.series.is_empty(), "no EM trajectories recorded");
    assert!(!p1.wall_clock.spans.is_empty());

    assert_eq!(
        p1.deterministic_json(),
        p4.deterministic_json(),
        "deterministic metric section diverged between parallelism 1 and 4"
    );
    // The rendered `## Metrics` section inherits the same contract.
    assert_eq!(render_metrics(&p1.deterministic), render_metrics(&p4.deterministic));
    // Span *keys* are deterministic too (same tree, different durations).
    let keys = |s: &MetricsSnapshot| s.wall_clock.spans.keys().cloned().collect::<Vec<_>>();
    assert_eq!(keys(&p1), keys(&p4));
    // And the timings kept flowing out of the span tree on both runs.
    assert!(r1.timings.render_s > 0.0);
    assert!(r4.timings.render_s > 0.0);
}

#[test]
fn deterministic_metrics_survive_dirty_data_and_degraded_jobs() {
    let dirty = DirtyScenario::with_total_rate(0.02);
    let (r1, p1) = observed_run(1, Some(&dirty), &["fig10"]);
    let (r4, p4) = observed_run(4, Some(&dirty), &["fig10"]);

    // Quarantine and degradation both left deterministic footprints.
    assert!(p1.deterministic.counters.keys().any(|k| k.starts_with("sanitize.quarantine{")));
    assert!(p1.deterministic.counters.keys().any(|k| k.starts_with("datagen.corrupted{")));
    assert_eq!(p1.deterministic.counters.get("render.jobs_failed").copied(), Some(1));
    assert!(r1.health.is_degraded() && r4.health.is_degraded());

    assert_eq!(
        p1.deterministic_json(),
        p4.deterministic_json(),
        "deterministic metric section diverged on the degraded pipeline"
    );
    assert_eq!(render_health(&r1.health), render_health(&r4.health));
}

#[test]
fn observation_is_read_only() {
    let (observed, snapshot) = observed_run(2, None, &[]);
    let (analyses, timings, sanitize) = st_bench::build_analyses_sanitized(SCALE, SEED, 2, None);
    let opts = SuperviseOptions { parallelism: 2, ..SuperviseOptions::default() };
    let plain = st_bench::run_all_supervised(&analyses, SCALE, SEED, &opts, timings, sanitize);

    assert!(snapshot.deterministic.counters.len() > 20);
    assert!(plain.metrics.is_none());
    assert_eq!(observed.artifacts.len(), plain.artifacts.len());
    for (o, p) in observed.artifacts.iter().zip(&plain.artifacts) {
        assert_eq!(o.id, p.id, "artifact order diverged");
        assert_eq!(o.text, p.text, "artifact {} text diverged", o.id);
        assert_eq!(o.svg, p.svg, "artifact {} svg diverged", o.id);
        assert_eq!(o.json, p.json, "artifact {} json diverged", o.id);
    }
    assert_eq!(observed.headlines, plain.headlines);
    assert_eq!(render_health(&observed.health), render_health(&plain.health));
}
