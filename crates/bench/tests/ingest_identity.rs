//! Batch-vs-incremental identity for the ingest front-end.
//!
//! The chunked replay (`build_analyses_ingest`) must reproduce the
//! pinned batch golden artifacts byte for byte — at any chunk size, any
//! seal threshold, and any parallelism. The expected hash below is the
//! same value `golden_identity.rs` pins for the batch pipeline; equality
//! here *is* the tentpole claim: sealed-segment boundaries and the chunk
//! interleave are pure functions of (seed, chunk plan) and never leak
//! into the rendered output.

use st_bench::ledger::{IngestLedgerRow, INGEST_LEDGER_SCHEMA};
use st_bench::{
    build_analyses_ingest, run_all_observed, IngestOptions, IngestStats, ReproReport,
    SuperviseOptions,
};
use st_obs::Registry;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// The batch pipeline's pinned golden hash (see `golden_identity.rs`).
const GOLDEN_HASH: u64 = 0x0e77_4be6_9287_5897;
const GOLDEN_FILES: usize = 89;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash a report's artifact file set exactly as the golden capture did.
fn report_hash(report: &ReproReport) -> (u64, usize) {
    let mut files: Vec<(String, &str)> = Vec::new();
    for a in &report.artifacts {
        if let Some(svg) = &a.svg {
            files.push((format!("{}.svg", a.id), svg));
        }
        files.push((format!("{}.json", a.id), &a.json));
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let mut h = FNV_OFFSET;
    for (name, body) in &files {
        h = fnv1a(name.as_bytes(), h);
        h = fnv1a(body.as_bytes(), h);
    }
    (h, files.len())
}

/// Replay the golden configuration through the ingest front-end and
/// render everything.
fn ingest_run(parallelism: usize, opts: IngestOptions) -> (ReproReport, IngestStats) {
    let obs = Registry::new();
    let (analyses, timings, sanitize, stats) =
        build_analyses_ingest(0.004, 2024, parallelism, opts, &obs);
    let sup = SuperviseOptions { parallelism, ..SuperviseOptions::default() };
    let report = run_all_observed(&analyses, 0.004, 2024, &sup, timings, sanitize, &obs);
    (report, stats)
}

#[test]
fn chunked_replay_reproduces_the_batch_golden_artifacts() {
    // Small chunks, default-ish seal: many append calls per store.
    let opts = IngestOptions { chunk_rows: 500, seal_rows: 2048 };
    let (report, stats) = ingest_run(1, opts);
    let (h, n) = report_hash(&report);
    assert_eq!(n, GOLDEN_FILES, "artifact file count changed under chunked ingest");
    assert_eq!(h, GOLDEN_HASH, "chunked replay diverged from the batch golden run (hash {h:#x})");
    assert!(stats.chunks > 0 && stats.rows > 0, "ingest stage saw no work: {stats:?}");
    assert!(stats.segments >= 12, "every frozen store holds at least one segment");

    // The ledger row summarizing this run must carry the golden hash in
    // its batch-comparable field.
    let row = IngestLedgerRow::from_report(&report, 1, opts.chunk_rows, opts.seal_rows, &stats);
    assert_eq!(row.schema, INGEST_LEDGER_SCHEMA);
    assert_eq!(row.artifact_hash, format!("{GOLDEN_HASH:016x}"));
    assert_eq!(row.artifact_files, GOLDEN_FILES);
    assert_eq!(row.chunks, stats.chunks);
    assert_eq!(row.rows, stats.rows);
    let json = serde_json::to_string(&row).expect("ledger row serializes");
    assert!(json.contains("\"schema\":\"st-ingest/v1\""), "{json}");
}

#[test]
fn a_different_chunk_plan_and_parallelism_hash_identically() {
    // Bigger chunks, a seal threshold small enough that the Ookla panels
    // split into several sealed segments, and a parallel coordinator —
    // the multi-segment render path must still hit the batch hash.
    let opts = IngestOptions { chunk_rows: 2048, seal_rows: 200 };
    let (report, stats) = ingest_run(4, opts);
    let (h, n) = report_hash(&report);
    assert_eq!(n, GOLDEN_FILES, "artifact file count changed under chunked ingest");
    assert_eq!(
        h, GOLDEN_HASH,
        "multi-segment parallel replay diverged from the batch golden run (hash {h:#x})"
    );
    assert!(
        stats.segments > 12,
        "a 200-row seal threshold must split at least one store ({} segments)",
        stats.segments
    );
}
