//! Golden-identity check for the artifact pipeline.
//!
//! The repro pipeline's artifacts (every `<id>.svg` / `<id>.json` the
//! `repro` binary would write) must be byte-identical to the pinned
//! golden run, at every parallelism level and with or without the
//! metrics registry. The expected value is a combined FNV-1a hash
//! captured from a release run at scale 0.004, seed 2024 — the same
//! configuration the CI determinism smoke uses.

use st_bench::{
    build_analyses_observed, build_analyses_par, run_all_observed, run_all_par, ReproReport,
    StageTimings, SuperviseOptions,
};
use st_obs::Registry;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Combined hash of the golden run (89 artifact files, sorted by
/// filename; each file hashed as name bytes then content bytes,
/// chained).
///
/// Re-pinned for the blocked KDE kernels: the blocked accumulation
/// reassociates the kernel sums, shifting KDE-derived series by a few
/// ULPs (a file-level diff against the previous golden showed 9 790
/// float deltas across the fig04–fig18 JSONs, worst relative delta
/// 7.3e-15, no structural or SVG changes). Sequential, parallel, and
/// metrics-enabled runs all produce this hash — the parallelism-
/// invariance contract (DESIGN.md §10) is what this test enforces;
/// byte-stability across refactors is not promised.
const GOLDEN_HASH: u64 = 0x0e77_4be6_9287_5897;
const GOLDEN_FILES: usize = 89;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash a report's artifact file set (every `<id>.svg` / `<id>.json`
/// the repro binary would write, minus `report.md` and the BENCH_*
/// records, which carry wall-clock values) the way the capture script
/// did.
fn report_hash(report: &ReproReport) -> (u64, usize) {
    let mut files: Vec<(String, &str)> = Vec::new();
    for a in &report.artifacts {
        if let Some(svg) = &a.svg {
            files.push((format!("{}.svg", a.id), svg));
        }
        files.push((format!("{}.json", a.id), &a.json));
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let mut h = FNV_OFFSET;
    for (name, body) in &files {
        h = fnv1a(name.as_bytes(), h);
        h = fnv1a(body.as_bytes(), h);
    }
    (h, files.len())
}

/// Reconstruct and hash the artifact file set of a plain
/// (observability-disabled) run.
fn artifact_hash(parallelism: usize) -> (u64, usize) {
    let (analyses, timings) = build_analyses_par(0.004, 2024, parallelism);
    let report = run_all_par(&analyses, 0.004, 2024, parallelism, timings);
    report_hash(&report)
}

/// Same file set, with an **enabled** metrics registry threaded through
/// every stage.
fn observed_artifact_hash(parallelism: usize) -> (u64, usize) {
    let obs = Registry::new();
    let (analyses, timings, sanitize) =
        build_analyses_observed(0.004, 2024, parallelism, None, &obs);
    let opts = SuperviseOptions { parallelism, ..SuperviseOptions::default() };
    let report = run_all_observed(&analyses, 0.004, 2024, &opts, timings, sanitize, &obs);
    assert!(report.metrics.is_some(), "enabled registry must yield a snapshot");
    report_hash(&report)
}

#[test]
fn artifacts_match_the_pinned_golden_run() {
    let (h1, n1) = artifact_hash(1);
    assert_eq!(n1, GOLDEN_FILES, "artifact file count changed");
    assert_eq!(
        h1, GOLDEN_HASH,
        "sequential artifacts diverged from the pinned golden run (hash {h1:#x})"
    );
}

#[test]
fn parallel_artifacts_match_the_golden_run_too() {
    let (h4, n4) = artifact_hash(4);
    assert_eq!(n4, GOLDEN_FILES, "artifact file count changed");
    assert_eq!(
        h4, GOLDEN_HASH,
        "parallel artifacts diverged from the pinned golden run (hash {h4:#x})"
    );
}

#[test]
fn observability_does_not_change_a_single_artifact_byte() {
    // Observation is read-only: the metrics registry never feeds back
    // into the computation, so an instrumented run must reproduce the
    // pre-observability golden hash exactly.
    let (h, n) = observed_artifact_hash(2);
    assert_eq!(n, GOLDEN_FILES, "artifact file count changed with metrics enabled");
    assert_eq!(
        h, GOLDEN_HASH,
        "artifacts diverged from the golden run with metrics enabled (hash {h:#x})"
    );
}

#[test]
fn derive_stage_timing_is_recorded() {
    let (_, timings) = build_analyses_par(0.004, 2024, 2);
    assert!(timings.derive_s >= 0.0);
    // The field must survive serialization so BENCH_timings.json carries
    // the new stage.
    let t = StageTimings { derive_s: 0.25, ..timings };
    let json = serde_json::to_string(&t).unwrap();
    assert!(json.contains("\"derive_s\":0.25"), "{json}");
}
