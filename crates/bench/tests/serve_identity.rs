//! Batch-vs-service identity for the long-running serve front-end.
//!
//! The serve replay (`build_analyses_serve`) streams the generated
//! campaigns through a running [`st_serve::ContextService`] — sharded
//! partitions, incremental sanitize, segment sealing, epoch publication
//! — and must still reproduce the pinned batch golden artifacts byte
//! for byte, at any chunk plan and any parallelism. The expected hash
//! below is the same value `golden_identity.rs` pins for the batch
//! pipeline and `ingest_identity.rs` pins for the thread-local replay;
//! equality here is the serve tentpole claim: epochs, the query API,
//! and the service's locks are pure observation machinery that never
//! leaks into the rendered output.

use st_bench::ledger::{ServeLedgerRow, SERVE_LEDGER_SCHEMA};
use st_bench::{
    build_analyses_serve, make_warm_renderer, run_all_observed, ReproReport, ServeStats,
    SuperviseOptions,
};
use st_obs::Registry;
use st_serve::{dispatch, ContextService, PartitionSpec, ServeOptions};
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// The batch pipeline's pinned golden hash (see `golden_identity.rs`).
const GOLDEN_HASH: u64 = 0x0e77_4be6_9287_5897;
const GOLDEN_FILES: usize = 89;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash a report's artifact file set exactly as the golden capture did.
fn report_hash(report: &ReproReport) -> (u64, usize) {
    let mut files: Vec<(String, &str)> = Vec::new();
    for a in &report.artifacts {
        if let Some(svg) = &a.svg {
            files.push((format!("{}.svg", a.id), svg));
        }
        files.push((format!("{}.json", a.id), &a.json));
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let mut h = FNV_OFFSET;
    for (name, body) in &files {
        h = fnv1a(name.as_bytes(), h);
        h = fnv1a(body.as_bytes(), h);
    }
    (h, files.len())
}

/// Replay the golden configuration through a running service, drain,
/// render everything, and publish the final epoch — the full serve
/// lifecycle minus the TCP listener.
fn serve_run(
    parallelism: usize,
    chunk_rows: usize,
    seal_rows: usize,
    epoch_rows: usize,
    warm: bool,
) -> (ReproReport, ServeStats, u64, Arc<ContextService>) {
    let obs = Registry::new();
    let mut specs: Vec<PartitionSpec> =
        st_datagen::City::all().iter().map(|c| PartitionSpec::city(c.label())).collect();
    specs.push(PartitionSpec::wire());
    let service = Arc::new(ContextService::new(
        specs,
        ServeOptions { seal_rows, epoch_rows, warm: warm.then(|| make_warm_renderer(0.004, 2024)) },
        obs.clone(),
    ));
    let (analyses, timings, sanitize, stats) =
        build_analyses_serve(0.004, 2024, parallelism, chunk_rows, &service, &obs)
            .expect("serve replay succeeds");
    let sup = SuperviseOptions { parallelism, ..SuperviseOptions::default() };
    let report = run_all_observed(&analyses, 0.004, 2024, &sup, timings, sanitize, &obs);
    let (hash, files) = report_hash(&report);
    let final_epoch = service
        .publish_final(
            &report.health.sanitize,
            report.headlines.clone(),
            vec![],
            Some(format!("{hash:016x}")),
            files as u64,
        )
        .expect("final epoch publishes after drain");
    (report, stats, final_epoch, service)
}

#[test]
fn service_replay_reproduces_the_batch_golden_artifacts() {
    // Small chunks, mid seal, epochs frequent enough to publish several
    // warm snapshots; single coordinator thread.
    let (report, stats, final_epoch, service) = serve_run(1, 500, 2048, 1500, false);
    let (h, n) = report_hash(&report);
    assert_eq!(n, GOLDEN_FILES, "artifact file count changed under the serve path");
    assert_eq!(h, GOLDEN_HASH, "service replay diverged from the batch golden run (hash {h:#x})");
    assert!(stats.chunks > 0 && stats.rows > 0, "serve stage saw no work: {stats:?}");
    assert!(stats.segments >= 12, "every frozen store holds at least one segment");

    // Epoch arithmetic: warm epochs are a pure function of the accepted
    // total, and the final epoch is exactly one more.
    let snap = service.current_epoch();
    assert!(snap.final_epoch);
    assert_eq!(stats.epochs, snap.accepted_rows / 1500, "warm epochs = floor(accepted / E)");
    assert_eq!(final_epoch, stats.epochs + 1);
    assert_eq!(snap.epoch, final_epoch);
    assert_eq!(snap.artifact_hash.as_deref(), Some(format!("{GOLDEN_HASH:016x}").as_str()));
    assert_eq!(snap.artifact_files, GOLDEN_FILES as u64);

    // The query API answers from the final snapshot.
    let (resp, _) = dispatch(&service, "{\"cmd\":\"status\"}");
    assert!(resp.contains("\"final_epoch\":true"), "{resp}");
    assert!(resp.contains("\"drained\":true"), "{resp}");

    // The ledger row summarizing this run carries the golden hash in
    // its batch-comparable field.
    let row = ServeLedgerRow::from_report(&report, 1, 500, 2048, 1500, &stats, final_epoch);
    assert_eq!(row.schema, SERVE_LEDGER_SCHEMA);
    assert_eq!(row.artifact_hash, format!("{GOLDEN_HASH:016x}"));
    assert_eq!(row.artifact_files, GOLDEN_FILES);
    assert_eq!(row.epochs, final_epoch);
    assert_eq!(row.chunks, stats.chunks);
    assert_eq!(row.rows, stats.rows);
    let json = serde_json::to_string(&row).expect("ledger row serializes");
    assert!(json.contains("\"schema\":\"st-serve/v1\""), "{json}");
}

#[test]
fn a_different_chunk_plan_parallel_coordinator_and_warm_fits_hash_identically() {
    // Bigger chunks, a seal threshold small enough to split every store
    // into several sealed segments, four ingest workers hammering the
    // shared service concurrently, and the real warm renderer fitting
    // prefix models at every epoch crossing — none of it may perturb
    // the final artifacts.
    let (report, stats, final_epoch, service) = serve_run(4, 2048, 200, 2000, true);
    let (h, n) = report_hash(&report);
    assert_eq!(n, GOLDEN_FILES, "artifact file count changed under the serve path");
    assert_eq!(
        h, GOLDEN_HASH,
        "parallel multi-segment serve replay diverged from the batch golden run (hash {h:#x})"
    );
    assert!(
        stats.segments > 12,
        "a 200-row seal threshold must split at least one store ({} segments)",
        stats.segments
    );
    let snap = service.current_epoch();
    assert_eq!(stats.epochs, snap.accepted_rows / 2000, "warm epochs = floor(accepted / E)");
    assert_eq!(final_epoch, stats.epochs + 1);

    // Warm fits ran (the pre-final epochs carried headlines) yet stayed
    // out of the deterministic metric class.
    let metrics = report.metrics.as_ref().expect("observed run carries metrics");
    assert!(
        metrics.deterministic.counters.keys().any(|k| k.starts_with("serve.chunks")),
        "serve path must record deterministic chunk counters"
    );
    assert_eq!(
        metrics.deterministic.counters.get("serve.epochs").copied(),
        Some(stats.epochs),
        "epoch counter must equal the warm crossing count"
    );
}
