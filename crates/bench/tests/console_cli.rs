//! CLI contract for the `console` binary: the shared usage exit code
//! (2) for malformed invocations — including an unreadable
//! `--baseline`, matching `obs-diff` — exit 1 on drift, exit 0 on a
//! clean run, and a headless smoke against a live query listener
//! proving the two-pane frame contract end to end over real TCP.

use st_bench::ledger::{append_ledger, LedgerRow};
use st_obs::Registry;
use st_serve::{ContextService, PartitionSpec, QueryServer, ServeOptions};
use st_speedtest::{Access, Measurement, Platform};
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;

fn console(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_console")).args(args).output().expect("console runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("st-console-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn sample_row() -> LedgerRow {
    LedgerRow {
        schema: "st-ledger/v1".to_string(),
        scale: 0.004,
        seed: 2024,
        parallelism: 1,
        artifact_hash: "0e774be692875897".to_string(),
        artifact_files: 89,
        artifacts: 89,
        headlines: 4,
        jobs_failed: 0,
        jobs_retried: 0,
        records_clean: 4000,
        records_repaired: 120,
        records_quarantined: 30,
        generate_s: 0.5,
        fit_s: 0.2,
        derive_s: 0.1,
        render_s: 0.3,
    }
}

#[test]
fn malformed_invocations_exit_with_the_usage_code() {
    let cases: &[&[&str]] = &[
        &[],                                   // no feed at all
        &["--ledger", "x", "--frames", "0"],   // zero frames
        &["--ledger", "x", "--frames"],        // missing value
        &["--ledger", "x", "--width", "nope"], // garbage value
        &["--connect"],                        // missing value
        &["--ledger", "x", "--bogus"],         // unknown flag
    ];
    for args in cases {
        let out = console(args);
        assert_eq!(out.status.code(), Some(2), "console {args:?} must exit 2");
        assert!(!out.stderr.is_empty(), "console {args:?} explains itself on stderr");
    }

    let help = console(&["--help"]);
    assert_eq!(help.status.code(), Some(0), "--help is not an error");
    assert!(String::from_utf8_lossy(&help.stdout).contains("usage:"));
}

#[test]
fn unreadable_or_rowless_baseline_is_a_usage_error() {
    let dir = temp_dir("baseline");
    let missing = console(&[
        "--ledger",
        "whatever.jsonl",
        "--baseline",
        dir.join("nope.jsonl").to_str().unwrap(),
        "--headless",
        "--frames",
        "1",
    ]);
    assert_eq!(missing.status.code(), Some(2), "missing baseline file");

    // A baseline with no batch-comparable row (e.g. only a load row)
    // cannot anchor a comparison either.
    let empty = dir.join("empty.jsonl");
    std::fs::write(&empty, "{\"schema\":\"st-load/v1\"}\n").unwrap();
    let rowless = console(&[
        "--ledger",
        "whatever.jsonl",
        "--baseline",
        empty.to_str().unwrap(),
        "--headless",
        "--frames",
        "1",
    ]);
    assert_eq!(rowless.status.code(), Some(2), "row-less baseline file");
    let _ = std::fs::remove_dir_all(&dir);
}

fn m(id: u64) -> Measurement {
    Measurement {
        id,
        user_id: id,
        platform: Platform::AndroidApp,
        city: 0,
        day: 10,
        hour: 12,
        down_mbps: 100.0,
        up_mbps: 10.0,
        rtt_ms: 20.0,
        loaded_rtt_ms: 40.0,
        access: Access::Ethernet,
        kernel_memory_gb: None,
        truth_tier: None,
    }
}

#[test]
fn headless_console_observes_a_live_server_and_flags_drift() {
    let dir = temp_dir("smoke");
    let ledger = dir.join("BENCH_ledger.jsonl");
    let clean_baseline = dir.join("baseline.jsonl");
    let drifted_baseline = dir.join("perturbed.jsonl");

    let row = sample_row();
    append_ledger(&ledger, &row).unwrap();
    append_ledger(&clean_baseline, &row).unwrap();
    let mut perturbed = sample_row();
    perturbed.seed = 99;
    perturbed.records_quarantined += 5;
    perturbed.artifact_hash = "ffffffffffffffff".to_string();
    append_ledger(&drifted_baseline, &perturbed).unwrap();

    // A tiny live service: one city, 12 accepted rows, epoch 1.
    let service = Arc::new(ContextService::new(
        vec![PartitionSpec::city("City-A")],
        ServeOptions { seal_rows: 8, epoch_rows: 10, warm: None },
        Registry::new(),
    ));
    service.ingest_chunk("City-A", "ookla", (0..12).map(m).collect()).unwrap();
    let server = QueryServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();

    let clean = console(&[
        "--connect",
        &addr,
        "--ledger",
        ledger.to_str().unwrap(),
        "--baseline",
        clean_baseline.to_str().unwrap(),
        "--headless",
        "--frames",
        "2",
        "--interval-ms",
        "50",
    ]);
    assert_eq!(clean.status.code(), Some(0), "clean baseline exits 0: {clean:?}");
    let text = String::from_utf8(clean.stdout).unwrap();
    for line in text.lines().filter(|l| !l.is_empty()) {
        assert!(line.starts_with("D|") || line.starts_with("W|"), "unclassed line {line:?}");
    }
    assert!(text.contains("st-console frame 2"), "renders the requested frame count");
    assert!(text.contains("drift: clean"), "clean baseline renders as clean:\n{text}");
    let pane: Vec<&str> = text.lines().filter(|l| l.starts_with("D|")).collect();
    assert!(
        pane.iter().any(|l| l.contains("epoch 1") && l.contains("ingesting")),
        "live feed reaches the deterministic pane: {pane:?}"
    );
    assert!(
        pane.iter().any(|l| l.contains("City-A 12")),
        "status poll fills the city panel: {pane:?}"
    );
    assert!(
        pane.iter().any(|l| l.contains("clean 12")),
        "metrics poll fills the outcome totals: {pane:?}"
    );
    assert!(
        pane.iter().any(|l| l.contains("run: st-ledger/v1") && l.contains("seed 2024")),
        "ledger tail fills the run identity: {pane:?}"
    );

    let drifted = console(&[
        "--connect",
        &addr,
        "--ledger",
        ledger.to_str().unwrap(),
        "--baseline",
        drifted_baseline.to_str().unwrap(),
        "--headless",
        "--frames",
        "1",
    ]);
    assert_eq!(drifted.status.code(), Some(1), "drifted baseline exits 1: {drifted:?}");
    let text = String::from_utf8(drifted.stdout).unwrap();
    assert!(text.contains("drift: 3 flag(s)"), "seed, quarantine count, hash flags:\n{text}");
    assert!(text.contains("!! seed:"), "drift drill-down rendered:\n{text}");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
