//! Acceptance test for the supervised repro pipeline (ISSUE: robustness):
//! with a deliberately panicking render job and 2% injected dirty
//! records, the run must complete every remaining artifact, report the
//! degradation in `## Health` with per-reason quarantine counts, and stay
//! byte-identical between `--parallelism` 1 and 4.

use st_bench::{
    build_analyses_sanitized, render_health, render_report, run_all_supervised, SuperviseOptions,
};
use st_datagen::DirtyScenario;

const SCALE: f64 = 0.004;
const SEED: u64 = 20220707;

fn degraded_run(parallelism: usize) -> (st_bench::ReproReport, String) {
    let dirty = DirtyScenario::with_total_rate(0.02);
    let (analyses, timings, sanitize) =
        build_analyses_sanitized(SCALE, SEED, parallelism, Some(&dirty));
    let opts = SuperviseOptions {
        parallelism,
        fail_jobs: vec!["fig08".into()],
        ..SuperviseOptions::default()
    };
    let report = run_all_supervised(&analyses, SCALE, SEED, &opts, timings, sanitize);
    let md = render_report(&report);
    (report, md)
}

#[test]
fn degraded_run_completes_and_reports_health() {
    let (report, md) = degraded_run(2);

    // The panicking job degraded; everything else rendered.
    assert!(report.health.is_degraded());
    assert_eq!(report.health.jobs_failed, 1);
    assert_eq!(report.health.failures[0].label, "fig08");
    let ids: Vec<&str> = report.artifacts.iter().map(|a| a.id.as_str()).collect();
    assert!(ids.contains(&"degraded_fig08"), "placeholder missing: {ids:?}");
    for want in ["table1", "fig01", "fig02", "table2", "fig09a", "fig10", "table5", "table7"] {
        assert!(ids.contains(&want), "missing surviving artifact {want}");
    }

    // 2% dirty records surface as per-reason quarantine counts.
    let s = &report.health.sanitize;
    assert!(s.quarantined > 0, "dirty records must quarantine: {s:?}");
    assert!(s.repaired > 0, "clock-skewed records must be repaired: {s:?}");
    for reason in ["duplicate-id", "non-finite-throughput", "non-positive-throughput"] {
        assert!(
            s.quarantine_reasons.contains_key(reason),
            "expected quarantine reason {reason}: {:?}",
            s.quarantine_reasons
        );
    }

    // ...and all of it is in the markdown report's Health section.
    assert!(md.contains("## Health"));
    assert!(md.contains("1 failed"));
    assert!(md.contains("quarantine reasons:"));
    assert!(md.contains("duplicate-id"));
    assert!(md.contains("fig08"));
}

#[test]
fn degraded_run_is_byte_identical_across_parallelism() {
    let (seq, seq_md) = degraded_run(1);
    let (par, par_md) = degraded_run(4);

    // Quarantine counters are identical at every parallelism level.
    assert_eq!(seq.health.sanitize, par.health.sanitize);
    assert_eq!(render_health(&seq.health), render_health(&par.health));

    // Artifacts (including the placeholder) are byte-identical.
    assert_eq!(seq.artifacts.len(), par.artifacts.len());
    for (s, p) in seq.artifacts.iter().zip(&par.artifacts) {
        assert_eq!(s.id, p.id, "artifact order diverged");
        assert_eq!(s.text, p.text, "artifact {} text diverged", s.id);
        assert_eq!(s.svg, p.svg, "artifact {} svg diverged", s.id);
        assert_eq!(s.json, p.json, "artifact {} json diverged", s.id);
    }

    // The whole report matches except the wall-clock Timings section.
    let strip_timings = |md: &str| {
        let head = md.split("## Timings").next().unwrap().to_string();
        let tail = md.split("## Health").nth(1).unwrap_or("").to_string();
        head + "## Health" + &tail
    };
    assert_eq!(strip_timings(&seq_md), strip_timings(&par_md));
}
