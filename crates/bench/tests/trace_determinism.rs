//! The trace-export half of the two-class contract (DESIGN.md §14):
//! `BENCH_trace.json` must be valid Chrome Trace Event Format, and its
//! deterministic fields (`name`, `cat`, `ph`, `pid`/`tid`, `args`,
//! event order) must be byte-identical at every parallelism level —
//! only `ts` and `dur` may move.

use serde_json::Value;
use st_bench::{build_analyses_observed, run_all_observed, SuperviseOptions};
use st_obs::Registry;

/// Run the full observed pipeline and return its trace.
fn observed_trace(parallelism: usize, fail_jobs: Vec<String>) -> st_obs::Trace {
    let obs = Registry::new();
    let (analyses, timings, sanitize) =
        build_analyses_observed(0.004, 2024, parallelism, None, &obs);
    let opts = SuperviseOptions { parallelism, fail_jobs, ..SuperviseOptions::default() };
    let report = run_all_observed(&analyses, 0.004, 2024, &opts, timings, sanitize, &obs);
    assert!(report.metrics.is_some());
    obs.trace()
}

/// Recursively drop the wall-clock keys from a parsed CTEF document,
/// leaving only the deterministic class.
fn strip_wall_clock(v: &Value) -> Value {
    match v {
        Value::Object(map) => Value::Object(
            map.iter()
                .filter(|(k, _)| k.as_str() != "ts" && k.as_str() != "dur")
                .map(|(k, x)| (k.clone(), strip_wall_clock(x)))
                .collect(),
        ),
        Value::Array(xs) => Value::Array(xs.iter().map(strip_wall_clock).collect()),
        other => other.clone(),
    }
}

#[test]
fn deterministic_trace_fields_are_identical_across_parallelism() {
    let t1 = observed_trace(1, Vec::new());
    let t4 = observed_trace(4, Vec::new());
    // Golden comparison: the deterministic view is byte-identical.
    assert_eq!(
        t1.deterministic_json(),
        t4.deterministic_json(),
        "trace names/cats/lanes/args/order diverged across parallelism"
    );
    // And the full CTEF files agree once ts/dur are stripped — the same
    // check the CI regression gate runs on the written BENCH_trace.json.
    let c1 = serde_json::from_str(&t1.to_chrome_json("repro")).expect("p1 trace is valid JSON");
    let c4 = serde_json::from_str(&t4.to_chrome_json("repro")).expect("p4 trace is valid JSON");
    assert_eq!(
        strip_wall_clock(&c1),
        strip_wall_clock(&c4),
        "CTEF documents diverged beyond ts/dur"
    );
}

#[test]
fn chrome_trace_is_valid_ctef_and_covers_the_pipeline() {
    let trace = observed_trace(2, Vec::new());
    let json = trace.to_chrome_json("repro test");
    let doc = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(doc.get("displayTimeUnit").and_then(Value::as_str), Some("ms"));
    let events = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    assert!(events.len() > 50, "suspiciously small trace: {} events", events.len());

    let mut names = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("every event has ph");
        assert!(e.get("name").and_then(Value::as_str).is_some(), "event without name");
        assert_eq!(e.get("pid").and_then(Value::as_u64), Some(1), "single-process trace");
        assert!(e.get("tid").and_then(Value::as_u64).is_some(), "event without tid");
        match ph {
            "M" => {} // metadata carries no timestamp
            "X" => {
                assert!(e.get("ts").and_then(Value::as_u64).is_some(), "X event without ts");
                assert!(e.get("dur").and_then(Value::as_u64).is_some(), "X event without dur");
            }
            "i" => {
                assert!(e.get("ts").and_then(Value::as_u64).is_some(), "instant without ts");
                assert_eq!(e.get("s").and_then(Value::as_str), Some("t"), "unscoped instant");
                assert!(e.get("dur").is_none(), "instant with a dur");
            }
            other => panic!("unexpected phase {other:?}"),
        }
        names.push(e.get("name").and_then(Value::as_str).unwrap_or_default().to_string());
    }

    // Lifecycle coverage: every stage marked start and end, sanitize
    // outcomes recorded per campaign, spans present for stages, cities
    // and render jobs.
    for stage in ["generate", "fit", "derive", "render"] {
        let starts = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Value::as_str) == Some("stage.start")
                    && e.get("args").and_then(|a| a.get("stage")).and_then(Value::as_str)
                        == Some(stage)
            })
            .count();
        assert_eq!(starts, 1, "stage.start for {stage}");
        assert!(names.contains(&"stage.end".to_string()));
        assert!(names.contains(&stage.to_string()), "missing {stage} span event");
    }
    let sanitize_marks = names.iter().filter(|n| n.as_str() == "sanitize.outcome").count();
    assert_eq!(sanitize_marks, 12, "3 campaigns x 4 cities");
    assert!(names.iter().any(|n| n.starts_with("generate/City-")), "per-city generate span");
    assert!(names.contains(&"render/fig01".to_string()), "per-job render span");

    // Metadata names every lane used by an event.
    let mut lanes: Vec<u64> =
        events.iter().filter_map(|e| e.get("tid").and_then(Value::as_u64)).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in lanes {
        let named = events.iter().any(|e| {
            e.get("name").and_then(Value::as_str) == Some("thread_name")
                && e.get("tid").and_then(Value::as_u64) == Some(lane)
        });
        assert!(named || lane == 0, "lane {lane} has no thread_name metadata");
    }
}

#[test]
fn degraded_jobs_leave_deterministic_trace_marks() {
    let trace = observed_trace(2, vec!["fig08".into()]);
    let degraded: Vec<&st_obs::TraceEvent> =
        trace.events.iter().filter(|e| e.name == "render.degraded").collect();
    assert_eq!(degraded.len(), 1, "one injected failure, one mark");
    let args = &degraded[0].args;
    assert_eq!(args.iter().find(|(k, _)| k == "job").map(|(_, v)| v.as_str()), Some("fig08"));
    let reason = args.iter().find(|(k, _)| k == "reason").map(|(_, v)| v.as_str()).unwrap_or("");
    assert!(reason.contains("injected failure"), "reason not carried: {reason:?}");
    // The mark is deterministic: same position and payload at p1.
    let seq = observed_trace(1, vec!["fig08".into()]);
    assert_eq!(seq.deterministic_json(), trace.deterministic_json());
}
