//! The metrics regression gate end to end (DESIGN.md §14): snapshots of
//! the same (scale, seed) at different parallelism must diff clean, a
//! perturbed snapshot must be flagged as deterministic drift, the
//! `obs-diff` binary must map those outcomes onto exit codes 0/1/2, and
//! the run ledger must accumulate parseable parallelism-invariant rows.

use serde_json::Value;
use st_bench::diff::{diff_metrics, DiffOptions, MetricsDoc};
use st_bench::ledger::{append_ledger, read_ledger, LedgerRow};
use st_bench::{build_analyses_observed, run_all_observed, ReproReport, SuperviseOptions};
use st_obs::Registry;
use std::path::PathBuf;
use std::process::Command;

/// Run the observed pipeline; return the report and the bare metrics
/// snapshot JSON (`st_obs::MetricsSnapshot::to_json`, which
/// `MetricsDoc::parse` accepts just like the repro binary's file).
fn observed_snapshot(parallelism: usize) -> (ReproReport, String) {
    let obs = Registry::new();
    let (analyses, timings, sanitize) =
        build_analyses_observed(0.004, 2024, parallelism, None, &obs);
    let opts = SuperviseOptions { parallelism, ..SuperviseOptions::default() };
    let report = run_all_observed(&analyses, 0.004, 2024, &opts, timings, sanitize, &obs);
    let json = report.metrics.as_ref().expect("observed run carries metrics").to_json();
    (report, json)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("st-gate-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn snapshots_diff_clean_across_parallelism_and_flag_perturbations() {
    let (report1, json1) = observed_snapshot(1);
    let (_report4, json4) = observed_snapshot(4);
    let doc1 = MetricsDoc::parse(&json1).expect("p1 snapshot parses");
    let doc4 = MetricsDoc::parse(&json4).expect("p4 snapshot parses");

    let clean = diff_metrics(&doc1, &doc4, DiffOptions::default());
    assert!(
        clean.deterministic_match(),
        "parallelism changed deterministic metrics: {:?}",
        clean.drift
    );
    assert!(clean.matched_keys > 50, "thin snapshot: {} keys", clean.matched_keys);

    // Perturb one counter, one histogram bucket, and one series value:
    // each perturbation surfaces as its own drill-down entry.
    let mut bad = doc4.clone();
    *bad.counters.get_mut("render.jobs").expect("render.jobs counter") += 1;
    let hist_key = bad.histograms.keys().next().expect("some histogram").clone();
    bad.histograms.get_mut(&hist_key).expect("histogram").overflow += 3;
    let series_key = bad.series.keys().next().expect("some series").clone();
    bad.series.get_mut(&series_key).expect("series")[0] += 0.5;

    let drifted = diff_metrics(&doc1, &bad, DiffOptions::default());
    assert!(!drifted.deterministic_match());
    assert_eq!(drifted.drift.len(), 3, "three perturbations, three entries: {:?}", drifted.drift);
    let rendered = drifted.render(&doc1, &bad);
    assert!(rendered.contains("render.jobs"), "{rendered}");
    assert!(rendered.contains("overflow"), "{rendered}");
    assert!(rendered.contains("diverges at index 0"), "{rendered}");

    // The quantiles the report prints come from the same deterministic
    // histograms, so they are parallelism-invariant too.
    let md = st_bench::render_report(&report1);
    assert!(md.contains("p50=") && md.contains("p90=") && md.contains("p99="), "{md}");
}

#[test]
fn obs_diff_binary_maps_outcomes_to_exit_codes() {
    let dir = temp_dir("cli");
    let base = r#"{
  "schema": "st-obs/v1",
  "deterministic": {
    "counters": { "render.jobs": 19 },
    "gauges": {},
    "histograms": {},
    "series": {}
  },
  "wall_clock": { "spans": { "fit": { "count": 1, "total_s": 1.0 } } }
}"#;
    let same = base.to_string();
    let drifted = base.replace("\"render.jobs\": 19", "\"render.jobs\": 20");
    let old_path = dir.join("old.json");
    let new_path = dir.join("new.json");
    std::fs::write(&old_path, base).expect("write old");

    let run = |new_body: Option<&str>, extra: &[&str]| {
        if let Some(body) = new_body {
            std::fs::write(&new_path, body).expect("write new");
        }
        Command::new(env!("CARGO_BIN_EXE_obs-diff"))
            .arg(&old_path)
            .arg(&new_path)
            .args(extra)
            .output()
            .expect("obs-diff runs")
    };

    let ok = run(Some(&same), &[]);
    assert_eq!(ok.status.code(), Some(0), "identical snapshots must exit 0");
    assert!(String::from_utf8_lossy(&ok.stdout).contains("deterministic: MATCH"));

    let drift = run(Some(&drifted), &[]);
    assert_eq!(drift.status.code(), Some(1), "deterministic drift must exit 1");
    let out = String::from_utf8_lossy(&drift.stdout).to_string();
    assert!(out.contains("render.jobs: 19 -> 20 (+1)"), "{out}");

    let garbled = run(Some("not json"), &[]);
    assert_eq!(garbled.status.code(), Some(2), "parse errors must exit 2");

    std::fs::remove_file(&new_path).expect("remove new");
    let missing = run(None, &[]);
    assert_eq!(missing.status.code(), Some(2), "missing files must exit 2");

    let bad_flag = run(Some(&same), &["--wall-ratio", "0.5"]);
    assert_eq!(bad_flag.status.code(), Some(2), "usage errors must exit 2");

    let _ = std::fs::remove_file(&old_path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn ledger_rows_accumulate_and_artifact_hash_is_parallelism_invariant() {
    let dir = temp_dir("ledger");
    let path = dir.join("BENCH_ledger.jsonl");
    let _ = std::fs::remove_file(&path);

    let (report1, _) = observed_snapshot(1);
    let (report4, _) = observed_snapshot(4);
    let row1 = LedgerRow::from_report(&report1, 1);
    let row4 = LedgerRow::from_report(&report4, 4);
    assert_eq!(
        row1.artifact_hash, row4.artifact_hash,
        "artifact hash must not depend on parallelism"
    );
    assert_eq!(row1.artifact_files, row4.artifact_files);
    assert!(row1.jobs_failed == 0 && row1.jobs_retried == 0);

    append_ledger(&path, &row1).expect("append p1 row");
    append_ledger(&path, &row4).expect("append p4 row");
    let rows = read_ledger(&path).expect("ledger parses");
    assert_eq!(rows.len(), 2);
    for (row, parallelism) in rows.iter().zip([1u64, 4]) {
        assert_eq!(row.get("schema").and_then(Value::as_str), Some("st-ledger/v1"));
        assert_eq!(row.get("parallelism").and_then(Value::as_u64), Some(parallelism));
        assert_eq!(
            row.get("artifact_hash").and_then(Value::as_str),
            Some(row1.artifact_hash.as_str())
        );
        assert!(row.get("generate_s").and_then(Value::as_f64).is_some());
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
