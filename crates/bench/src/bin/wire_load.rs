//! Chaos-hardened wire load campaign driver (DESIGN.md §16).
//!
//! ```text
//! wire-load [--sessions N] [--pool N] [--seed S] [--fault-rate R]
//!           [--parallelism P] [--duration-ms MS] [--ramp-ms MS]
//!           [--conns N] [--pings N] [--attempts N] [--breaker-k K]
//!           [--breaker-cooldown C] [--down-mbps M] [--up-mbps M]
//!           [--with-upload] [--out DIR] [--baseline FILE]
//! ```
//!
//! Starts a pool of fault-injecting [`ShapedServer`]s on loopback,
//! drives the concurrent load harness against it, and writes:
//!
//! * `DIR/BENCH_load_metrics.json` — the metrics snapshot in the same
//!   header-plus-two-classes schema `obs-diff` consumes; the
//!   `deterministic` section is byte-identical for a fixed
//!   (sessions, seed, fault-rate, pool) tuple at every `--parallelism`.
//! * `DIR/BENCH_load_summary.json` — the full [`LoadSummary`] with
//!   per-session reports and quality scores.
//! * `DIR/BENCH_ledger.jsonl` — appends one `st-load/v1` row whose
//!   `metrics_hash` fingerprints the deterministic section, so CI can
//!   regression-gate campaigns across commits.
//!
//! With `--baseline OLD_METRICS.json` the run diffs itself against a
//! previous snapshot in-process (same contract as `obs-diff`).
//!
//! Exit code: `0` on a clean campaign, `1` when any session's actual
//! fate diverged from the deterministic plan (`unexpected_outcomes`),
//! when every session died (`degraded`), or on baseline drift; `2` on
//! usage or I/O errors.

use st_bench::diff::{diff_metrics, DiffOptions, MetricsDoc};
use st_bench::ledger::{append_ledger, LoadLedgerRow};
use st_obs::Registry;
use st_speedtest::wire::ShapedServer;
use st_speedtest::{run_load, FaultProfile, LoadOptions};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: wire-load [--sessions N] [--pool N] [--seed S] [--fault-rate R] \
    [--parallelism P] [--duration-ms MS] [--ramp-ms MS] [--conns N] [--pings N] \
    [--attempts N] [--breaker-k K] [--breaker-cooldown C] [--down-mbps M] [--up-mbps M] \
    [--with-upload] [--out DIR] [--baseline FILE]";

struct Args {
    sessions: usize,
    pool: usize,
    seed: u64,
    fault_rate: f64,
    parallelism: usize,
    duration_ms: u64,
    ramp_ms: u64,
    conns: usize,
    pings: usize,
    attempts: u32,
    breaker_k: u32,
    breaker_cooldown: u32,
    down_mbps: f64,
    up_mbps: f64,
    with_upload: bool,
    out: PathBuf,
    baseline: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            sessions: 200,
            pool: 4,
            seed: 0xc0ffee,
            fault_rate: 0.35,
            parallelism: 8,
            duration_ms: 100,
            ramp_ms: 30,
            conns: 1,
            pings: 2,
            attempts: 3,
            breaker_k: 3,
            breaker_cooldown: 2,
            down_mbps: 400.0,
            up_mbps: 50.0,
            with_upload: false,
            out: PathBuf::from("."),
            baseline: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        fn num<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("bad {name}: {e}"))
        }
        match flag.as_str() {
            "--sessions" => args.sessions = num("--sessions", value("--sessions")?)?,
            "--pool" => args.pool = num("--pool", value("--pool")?)?,
            "--seed" => args.seed = num("--seed", value("--seed")?)?,
            "--fault-rate" => args.fault_rate = num("--fault-rate", value("--fault-rate")?)?,
            "--parallelism" => args.parallelism = num("--parallelism", value("--parallelism")?)?,
            "--duration-ms" => args.duration_ms = num("--duration-ms", value("--duration-ms")?)?,
            "--ramp-ms" => args.ramp_ms = num("--ramp-ms", value("--ramp-ms")?)?,
            "--conns" => args.conns = num("--conns", value("--conns")?)?,
            "--pings" => args.pings = num("--pings", value("--pings")?)?,
            "--attempts" => args.attempts = num("--attempts", value("--attempts")?)?,
            "--breaker-k" => args.breaker_k = num("--breaker-k", value("--breaker-k")?)?,
            "--breaker-cooldown" => {
                args.breaker_cooldown = num("--breaker-cooldown", value("--breaker-cooldown")?)?
            }
            "--down-mbps" => args.down_mbps = num("--down-mbps", value("--down-mbps")?)?,
            "--up-mbps" => args.up_mbps = num("--up-mbps", value("--up-mbps")?)?,
            "--with-upload" => args.with_upload = true,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.sessions == 0 || args.pool == 0 {
        return Err("--sessions and --pool must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&args.fault_rate) {
        return Err("--fault-rate must be in [0, 1]".into());
    }
    if args.ramp_ms >= args.duration_ms {
        return Err("--ramp-ms must be shorter than --duration-ms".into());
    }
    Ok(args)
}

/// `BENCH_load_metrics.json` schema: run header, then the two metric
/// classes (the layout `obs-diff` parses). `parallelism` is
/// documentation: the `deterministic` section must not depend on it.
#[derive(serde::Serialize)]
struct MetricsRecord {
    schema: &'static str,
    seed: u64,
    parallelism: usize,
    deterministic: st_obs::DeterministicMetrics,
    wall_clock: st_obs::WallClockMetrics,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let profile = FaultProfile::new(args.seed, args.fault_rate);
    let servers: Vec<ShapedServer> = match (0..args.pool)
        .map(|_| ShapedServer::start_with_faults(args.down_mbps, args.up_mbps, profile))
        .collect()
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wire-load: cannot start the server pool: {e}");
            return ExitCode::from(2);
        }
    };
    let pool: Vec<_> = servers.iter().map(|s| s.addr()).collect();

    let duration = Duration::from_millis(args.duration_ms);
    let mut opts = LoadOptions::new(args.sessions);
    opts.n_conns = args.conns;
    opts.duration = duration;
    opts.ramp_discard = Duration::from_millis(args.ramp_ms);
    opts.n_pings = args.pings;
    opts.attempts = args.attempts;
    opts.backoff.seed = args.seed;
    opts.breaker_k = args.breaker_k;
    opts.breaker_cooldown = args.breaker_cooldown;
    opts.parallelism = args.parallelism;
    opts.with_upload = args.with_upload;
    opts.faults = Some(profile);
    opts.wire = st_speedtest::wire::WireOptions::for_duration(duration);

    let reg = Registry::new();
    let summary = run_load(&pool, &opts, &reg);
    drop(servers); // joined before reporting: no worker outlives the run

    let snapshot = reg.snapshot();
    let deterministic_json = snapshot.deterministic_json();
    eprintln!(
        "wire-load: {} sessions → ok {} retried {} degraded {} abandoned {} skipped {} \
         | completed {} unexpected {} | breaker trips {} | mean {:.1} Mbps / {:.2} ms \
         | scores s/g/c {:.0}/{:.0}/{:.0} | {:.2}s",
        summary.sessions_total,
        summary.sessions_ok,
        summary.sessions_retried,
        summary.sessions_degraded,
        summary.sessions_abandoned,
        summary.sessions_skipped,
        summary.sessions_completed,
        summary.unexpected_outcomes,
        summary.breaker_trips,
        summary.mean_down_mbps,
        summary.mean_latency_ms,
        summary.mean_streaming,
        summary.mean_gaming,
        summary.mean_conferencing,
        summary.elapsed_s,
    );

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("wire-load: cannot create {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    let record = MetricsRecord {
        schema: snapshot.schema,
        seed: args.seed,
        parallelism: args.parallelism,
        deterministic: snapshot.deterministic.clone(),
        wall_clock: snapshot.wall_clock.clone(),
    };
    let metrics_path = args.out.join("BENCH_load_metrics.json");
    let metrics_json = serde_json::to_string_pretty(&record).expect("metrics serialize");
    let summary_path = args.out.join("BENCH_load_summary.json");
    let summary_json = serde_json::to_string_pretty(&summary).expect("summary serialize");
    for (path, body) in [(&metrics_path, &metrics_json), (&summary_path, &summary_json)] {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("wire-load: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("wrote {}", path.display());
    }

    let row = LoadLedgerRow::from_summary(
        &summary,
        &deterministic_json,
        args.seed,
        args.fault_rate,
        args.pool,
        args.parallelism,
    );
    let ledger_path = args.out.join("BENCH_ledger.jsonl");
    match append_ledger(&ledger_path, &row) {
        Ok(()) => eprintln!("appended {} ({})", ledger_path.display(), row.metrics_hash),
        Err(e) => {
            eprintln!("wire-load: cannot append {}: {e}", ledger_path.display());
            return ExitCode::from(2);
        }
    }

    let mut failed = false;
    if let Some(baseline) = &args.baseline {
        let old = std::fs::read_to_string(baseline)
            .map_err(|e| format!("cannot read {}: {e}", baseline.display()))
            .and_then(|text| MetricsDoc::parse(&text).map_err(|e| format!("baseline: {e}")));
        let old = match old {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("wire-load: {e}");
                return ExitCode::from(2);
            }
        };
        let new = match MetricsDoc::parse(&metrics_json) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("wire-load: own snapshot failed to parse: {e}");
                return ExitCode::from(2);
            }
        };
        let diff = diff_metrics(&old, &new, DiffOptions::default());
        if !diff.deterministic_match() {
            print!("{}", diff.render(&old, &new));
            eprintln!(
                "wire-load: deterministic drift vs baseline {} ({} keys)",
                baseline.display(),
                diff.drift.len()
            );
            failed = true;
        }
    }

    if summary.unexpected_outcomes > 0 {
        eprintln!(
            "wire-load: {} sessions diverged from the deterministic plan",
            summary.unexpected_outcomes
        );
        failed = true;
    }
    if summary.degraded {
        eprintln!("wire-load: campaign fully degraded (no session completed)");
        failed = true;
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
