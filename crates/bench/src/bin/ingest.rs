//! Replay a campaign as an incremental chunk stream and regenerate every
//! table and figure from the segmented stores.
//!
//! ```text
//! ingest [--scale S] [--seed N] [--out DIR] [--parallelism P]
//!        [--chunk-rows C] [--seal-rows R] [--metrics]
//!        [--baseline METRICS.json] [--wall-ratio R] [--wall-floor S]
//! ```
//!
//! The batch `repro` binary wraps each sanitized campaign in one sealed
//! segment; this binary instead splits each campaign into `C`-row chunks
//! and appends them to `st_speedtest::SegmentedStore`s in a
//! seed-scheduled interleave, sanitizing incrementally per chunk and
//! sealing immutable segments every `R` accepted rows. The frozen stores
//! then flow through the same fit, derive, and render stages.
//!
//! The point of the exercise is the identity it proves: the artifact set
//! written here is byte-identical to a batch `repro` run at the same
//! scale and seed — for any chunk size, any seal threshold, and any
//! parallelism. The appended `BENCH_ledger.jsonl` row (schema
//! `st-ingest/v1`) carries the artifact hash plus chunk/segment counts
//! and ingest throughput, so the identity is checkable straight from the
//! ledger: an ingest row and a batch row with equal `artifact_hash`
//! produced the same bytes.
//!
//! Outputs mirror `repro`: `DIR/<id>.svg`, `DIR/<id>.json`, `report.md`,
//! `BENCH_timings.json`, `BENCH_trace.json`, `BENCH_metrics.json` (with
//! `--metrics`), and the appended ledger row. `--baseline` diffs the
//! run's metrics against a previous `BENCH_metrics.json` exactly as
//! `repro` does: deterministic drift fails the run, wall-clock deltas
//! only warn.

use serde::Serialize;
use st_bench::cli::{self, CliError};
use st_bench::diff::{diff_metrics, DiffOptions, MetricsDoc};
use st_bench::ledger::{append_ledger, IngestLedgerRow};
use st_bench::{
    build_analyses_ingest, render_report, run_all_observed, IngestOptions, StageTimings,
    SuperviseOptions,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: ingest [--scale S] [--seed N] [--out DIR] [--parallelism P] \
     [--chunk-rows C] [--seal-rows R] [--metrics] \
     [--baseline METRICS.json] [--wall-ratio R] [--wall-floor S]";

struct Args {
    scale: f64,
    seed: u64,
    out: PathBuf,
    parallelism: usize,
    ingest: IngestOptions,
    metrics: bool,
    baseline: Option<PathBuf>,
    diff_options: DiffOptions,
}

fn parse_args() -> Result<Args, CliError> {
    let mut args = Args {
        scale: 0.05,
        seed: 20220707,
        out: PathBuf::from("ingest-out"),
        parallelism: st_datagen::par::default_parallelism(),
        ingest: IngestOptions::default(),
        metrics: false,
        baseline: None,
        diff_options: DiffOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| cli::next_value(&mut it, name);
        match flag.as_str() {
            "--scale" => args.scale = cli::parse_scale("--scale", &value("--scale")?)?,
            "--seed" => args.seed = cli::parse_u64("--seed", &value("--seed")?)?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--parallelism" => {
                args.parallelism =
                    cli::parse_at_least_one("--parallelism", &value("--parallelism")?)?;
            }
            "--chunk-rows" => {
                args.ingest.chunk_rows =
                    cli::parse_at_least_one("--chunk-rows", &value("--chunk-rows")?)?;
            }
            "--seal-rows" => {
                args.ingest.seal_rows =
                    cli::parse_at_least_one("--seal-rows", &value("--seal-rows")?)?;
            }
            "--metrics" => args.metrics = true,
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--wall-ratio" => {
                args.diff_options.wall_ratio =
                    cli::parse_float_min("--wall-ratio", &value("--wall-ratio")?, 1.0)?;
            }
            "--wall-floor" => {
                args.diff_options.wall_floor_s =
                    cli::parse_float_min("--wall-floor", &value("--wall-floor")?, 0.0)?;
            }
            "--help" | "-h" => return Err(CliError::Help(USAGE.into())),
            other => return Err(CliError::Usage(format!("unknown flag {other}\n{USAGE}"))),
        }
    }
    Ok(args)
}

/// The machine-readable timing record written next to the artifacts.
#[derive(Serialize)]
struct BenchRecord {
    scale: f64,
    seed: u64,
    parallelism: usize,
    chunk_rows: usize,
    seal_rows: usize,
    timings: StageTimings,
    ingest_s: f64,
}

/// The `BENCH_metrics.json` schema, as written by `repro`.
#[derive(Serialize)]
struct MetricsRecord {
    schema: &'static str,
    scale: f64,
    seed: u64,
    parallelism: usize,
    deterministic: st_obs::DeterministicMetrics,
    wall_clock: st_obs::WallClockMetrics,
}

/// Write one output file. Failures warn (with the path) and are counted
/// so the run can exit nonzero instead of silently dropping artifacts.
fn write_file(path: &Path, contents: &str, failures: &mut usize) -> bool {
    match std::fs::write(path, contents) {
        Ok(()) => true,
        Err(e) => {
            *failures += 1;
            eprintln!("WARN: cannot write {}: {e}", path.display());
            false
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return e.report(),
    };

    eprintln!(
        "replaying 4 cities at scale {} (seed {}, parallelism {}, chunks of {}, seal at {}) ...",
        args.scale, args.seed, args.parallelism, args.ingest.chunk_rows, args.ingest.seal_rows
    );
    let t0 = std::time::Instant::now();
    let obs = st_obs::Registry::new();
    let (analyses, timings, sanitize, ingest) =
        build_analyses_ingest(args.scale, args.seed, args.parallelism, args.ingest, &obs);
    eprintln!(
        "ingested {} rows in {} chunks ({} segments sealed) in {:.1}s; running experiments ...",
        ingest.rows, ingest.chunks, ingest.segments, ingest.ingest_s
    );

    let opts = SuperviseOptions { parallelism: args.parallelism, ..SuperviseOptions::default() };
    let report = run_all_observed(&analyses, args.scale, args.seed, &opts, timings, sanitize, &obs);
    let claims = st_bench::claims::check_all(&analyses);

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    let mut written = 0usize;
    let mut write_failures = 0usize;
    for a in &report.artifacts {
        if let Some(svg) = &a.svg {
            if write_file(&args.out.join(format!("{}.svg", a.id)), svg, &mut write_failures) {
                written += 1;
            }
        }
        if write_file(&args.out.join(format!("{}.json", a.id)), &a.json, &mut write_failures) {
            written += 1;
        }
    }

    let bench = BenchRecord {
        scale: args.scale,
        seed: args.seed,
        parallelism: args.parallelism,
        chunk_rows: args.ingest.chunk_rows,
        seal_rows: args.ingest.seal_rows,
        timings: report.timings,
        ingest_s: ingest.ingest_s,
    };
    let timings_path = args.out.join("BENCH_timings.json");
    let timings_json = serde_json::to_string_pretty(&bench).expect("timings serialize");
    if write_file(&timings_path, &timings_json, &mut write_failures) {
        written += 1;
        eprintln!("wrote {}", timings_path.display());
    }

    let snapshot = report.metrics.as_ref().expect("observed run carries metrics");
    let record = MetricsRecord {
        schema: snapshot.schema,
        scale: args.scale,
        seed: args.seed,
        parallelism: args.parallelism,
        deterministic: snapshot.deterministic.clone(),
        wall_clock: snapshot.wall_clock.clone(),
    };
    let metrics_json = serde_json::to_string_pretty(&record).expect("metrics serialize");
    if args.metrics {
        let metrics_path = args.out.join("BENCH_metrics.json");
        if write_file(&metrics_path, &metrics_json, &mut write_failures) {
            written += 1;
            eprintln!("wrote {}", metrics_path.display());
        }
    }

    let trace_path = args.out.join("BENCH_trace.json");
    let trace_json = obs.trace().to_chrome_json(&format!(
        "ingest scale={} seed={} chunk_rows={}",
        args.scale, args.seed, args.ingest.chunk_rows
    ));
    if write_file(&trace_path, &trace_json, &mut write_failures) {
        written += 1;
        eprintln!("wrote {}", trace_path.display());
    }

    let ledger_path = args.out.join("BENCH_ledger.jsonl");
    let row = IngestLedgerRow::from_report(
        &report,
        args.parallelism,
        args.ingest.chunk_rows,
        args.ingest.seal_rows,
        &ingest,
    );
    match append_ledger(&ledger_path, &row) {
        Ok(()) => eprintln!("appended ingest ledger row to {}", ledger_path.display()),
        Err(e) => {
            write_failures += 1;
            eprintln!("WARN: cannot append to {}: {e}", ledger_path.display());
        }
    }

    let mut md = render_report(&report);
    md.push_str("\n## Shape claims (paper vs this run)\n\n");
    md.push_str(&st_bench::claims::render_claims(&claims));
    let holds = claims.iter().filter(|c| c.holds).count();
    md.push_str(&format!("\n{holds}/{} claims hold\n", claims.len()));
    if let Err(e) = std::fs::write(args.out.join("report.md"), &md) {
        eprintln!("cannot write report: {e}");
        return ExitCode::FAILURE;
    }

    println!("{md}");

    let mut baseline_drift = false;
    if let Some(baseline_path) = &args.baseline {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline_doc = match MetricsDoc::parse(&baseline_text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let current_doc = MetricsDoc::parse(&metrics_json).expect("own snapshot parses");
        let diff = diff_metrics(&baseline_doc, &current_doc, args.diff_options);
        println!("{}", diff.render(&baseline_doc, &current_doc));
        if diff.deterministic_match() {
            eprintln!(
                "baseline {}: deterministic metrics match ({} keys)",
                baseline_path.display(),
                diff.matched_keys
            );
        } else {
            baseline_drift = true;
            eprintln!(
                "BASELINE DRIFT: {} deterministic keys differ from {}",
                diff.drift.len(),
                baseline_path.display()
            );
        }
    }

    eprintln!(
        "generate {:.1}s | ingest {:.1}s ({:.0} rows/s) | fit {:.1}s | derive {:.1}s | render {:.1}s",
        report.timings.generate_s,
        ingest.ingest_s,
        row.rows_per_s,
        report.timings.fit_s,
        report.timings.derive_s,
        report.timings.render_s
    );
    eprintln!("wrote {} files to {} in {:.1?}", written + 1, args.out.display(), t0.elapsed());
    if write_failures > 0 {
        eprintln!("WRITE FAILURES: {write_failures} output files could not be written");
    }
    if report.health.is_degraded() {
        let h = &report.health;
        eprintln!(
            "DEGRADED: {} of {} render jobs failed ({} retried); see the report's Health section",
            h.jobs_failed, h.jobs_total, h.jobs_retried
        );
        return ExitCode::FAILURE;
    }
    if baseline_drift || write_failures > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
