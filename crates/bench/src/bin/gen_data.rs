//! Export synthetic campaigns as CSV for external analysis stacks.
//!
//! ```text
//! gen-data [--city A|B|C|D|all] [--scale S] [--seed N] [--out DIR]
//!          [--format csv|json]
//! ```
//!
//! Writes `<city>_ookla.{csv,json}`, `<city>_mlab.*`, `<city>_mba.*` with
//! one row per measurement and the full context schema (platform, vendor,
//! access, band, RSSI, memory, loaded RTT, ground-truth tier).

use st_datagen::{City, CityDataset};
use st_speedtest::CampaignStore;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Csv,
    Json,
}

struct Args {
    cities: Vec<City>,
    scale: f64,
    seed: u64,
    out: PathBuf,
    format: Format,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cities: City::all().to_vec(),
        scale: 0.01,
        seed: 20220707,
        out: PathBuf::from("data-out"),
        format: Format::Csv,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--city" => {
                args.cities = match value("--city")?.as_str() {
                    "A" => vec![City::A],
                    "B" => vec![City::B],
                    "C" => vec![City::C],
                    "D" => vec![City::D],
                    "all" => City::all().to_vec(),
                    other => return Err(format!("unknown city {other}")),
                }
            }
            "--scale" => {
                args.scale = value("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err("--scale must be in (0, 1]".into());
                }
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "csv" => Format::Csv,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other}")),
                }
            }
            "--help" | "-h" => {
                return Err("usage: gen-data [--city A|B|C|D|all] [--scale S] [--seed N] \
                     [--out DIR] [--format csv|json]"
                    .into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }

    for city in &args.cities {
        let ds = CityDataset::generate(*city, args.scale, args.seed);
        let tag = city.label().to_lowercase().replace('-', "_");
        for (suffix, ms) in [("ookla", &ds.ookla), ("mlab", &ds.mlab), ("mba", &ds.mba)] {
            let (path, body) = match args.format {
                Format::Csv => {
                    let frame = CampaignStore::from_measurements(ms).to_frame();
                    let body = match st_dataframe::csv::to_csv(&frame) {
                        Ok(b) => b,
                        Err(e) => {
                            eprintln!("cannot export {tag}_{suffix} as CSV: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    (args.out.join(format!("{tag}_{suffix}.csv")), body)
                }
                Format::Json => (
                    args.out.join(format!("{tag}_{suffix}.json")),
                    serde_json::to_string_pretty(ms).expect("records serialize"),
                ),
            };
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} ({} rows)", path.display(), ms.len());
        }
    }
    ExitCode::SUCCESS
}
