//! Regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale S] [--seed N] [--out DIR] [--parallelism P]
//!       [--dirty-rate R] [--inject-fail LABEL]... [--deadline-secs D]
//!       [--allow-degraded] [--metrics] [--baseline METRICS.json]
//!       [--wall-ratio R] [--wall-floor S]
//! ```
//!
//! Generates the four city datasets at `S` of the paper's campaign sizes
//! (default 0.02 ≈ 15k Ookla tests for City-A), fits BST, runs every
//! experiment, and writes:
//!
//! * `DIR/report.md` — all tables and figure summaries,
//! * `DIR/<id>.svg` — one chart per figure,
//! * `DIR/<id>.json` — machine-readable series/rows,
//! * `DIR/BENCH_timings.json` — per-stage wall-clock timings,
//! * `DIR/BENCH_trace.json` — the run's span tree and lifecycle events
//!   in Chrome Trace Event Format (open in Perfetto or
//!   `chrome://tracing`),
//! * `DIR/BENCH_ledger.jsonl` — one summary row **appended** per run
//!   (schema, knobs, artifact hash, headline counters, stage
//!   durations); the run history of a working directory,
//! * `DIR/BENCH_metrics.json` — the full pipeline metrics snapshot
//!   (with `--metrics`): a `deterministic` section that is
//!   byte-identical at every parallelism level, and a `wall_clock`
//!   span section that is not (see DESIGN.md §"Observability").
//!
//! `--parallelism` fans dataset generation, BST fitting, and artifact
//! rendering out over worker threads (default: all cores). Output is
//! byte-identical at every parallelism level.
//!
//! `--baseline METRICS.json` diffs this run's metrics against a
//! previously written `BENCH_metrics.json` (see `obs-diff` and
//! DESIGN.md §14): the deterministic class must match exactly or the
//! run exits nonzero; wall-clock spans are compared against the
//! `--wall-ratio` tolerance (default 2.0, with a `--wall-floor` noise
//! floor, default 0.05 s) and only warn.
//!
//! The pipeline is supervised: `--dirty-rate R` corrupts a fraction `R`
//! of generated records with the dirty-measurement fault model (they are
//! repaired or quarantined by the sanitizer and accounted for in the
//! report's `## Health` section); `--inject-fail LABEL` forces the named
//! render job to panic (its artifacts degrade to a placeholder); each
//! render job gets `--deadline-secs` per attempt plus one retry. A run
//! with degraded artifacts exits nonzero unless `--allow-degraded` is
//! passed — the report and surviving artifacts are written either way.
//! A run that cannot write one of its output files warns and exits
//! nonzero too: silently missing artifacts would poison any later
//! baseline comparison.

use serde::Serialize;
use st_bench::diff::{diff_metrics, DiffOptions, MetricsDoc};
use st_bench::ledger::{append_ledger, LedgerRow};
use st_bench::{
    build_analyses_observed, render_report, run_all_observed, StageTimings, SuperviseOptions,
};
use st_datagen::DirtyScenario;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    scale: f64,
    seed: u64,
    out: PathBuf,
    parallelism: usize,
    dirty_rate: f64,
    inject_fail: Vec<String>,
    deadline_secs: u64,
    allow_degraded: bool,
    metrics: bool,
    baseline: Option<PathBuf>,
    diff_options: DiffOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 0.05,
        seed: 20220707,
        out: PathBuf::from("repro-out"),
        parallelism: st_datagen::par::default_parallelism(),
        dirty_rate: 0.0,
        inject_fail: Vec::new(),
        deadline_secs: 300,
        allow_degraded: false,
        metrics: false,
        baseline: None,
        diff_options: DiffOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--scale" => {
                args.scale = value("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err("--scale must be in (0, 1]".into());
                }
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--parallelism" => {
                args.parallelism = value("--parallelism")?
                    .parse()
                    .map_err(|e| format!("bad --parallelism: {e}"))?;
                if args.parallelism == 0 {
                    return Err("--parallelism must be >= 1".into());
                }
            }
            "--dirty-rate" => {
                args.dirty_rate =
                    value("--dirty-rate")?.parse().map_err(|e| format!("bad --dirty-rate: {e}"))?;
                if !(0.0..=1.0).contains(&args.dirty_rate) {
                    return Err("--dirty-rate must be in [0, 1]".into());
                }
            }
            "--inject-fail" => args.inject_fail.push(value("--inject-fail")?),
            "--deadline-secs" => {
                args.deadline_secs = value("--deadline-secs")?
                    .parse()
                    .map_err(|e| format!("bad --deadline-secs: {e}"))?;
                if args.deadline_secs == 0 {
                    return Err("--deadline-secs must be >= 1".into());
                }
            }
            "--allow-degraded" => args.allow_degraded = true,
            "--metrics" => args.metrics = true,
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--wall-ratio" => {
                args.diff_options.wall_ratio =
                    value("--wall-ratio")?.parse().map_err(|e| format!("bad --wall-ratio: {e}"))?;
                if args.diff_options.wall_ratio < 1.0 || args.diff_options.wall_ratio.is_nan() {
                    return Err("--wall-ratio must be >= 1.0".into());
                }
            }
            "--wall-floor" => {
                args.diff_options.wall_floor_s =
                    value("--wall-floor")?.parse().map_err(|e| format!("bad --wall-floor: {e}"))?;
                if args.diff_options.wall_floor_s < 0.0 || args.diff_options.wall_floor_s.is_nan() {
                    return Err("--wall-floor must be >= 0".into());
                }
            }
            "--help" | "-h" => {
                return Err("usage: repro [--scale S] [--seed N] [--out DIR] [--parallelism P] \
                     [--dirty-rate R] [--inject-fail LABEL]... [--deadline-secs D] \
                     [--allow-degraded] [--metrics] [--baseline METRICS.json] \
                     [--wall-ratio R] [--wall-floor S]"
                    .into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The machine-readable timing record written next to the artifacts.
#[derive(Serialize)]
struct BenchRecord {
    scale: f64,
    seed: u64,
    parallelism: usize,
    timings: StageTimings,
}

/// The `BENCH_metrics.json` schema: the run header, then the two metric
/// classes. The deterministic section is byte-identical at every
/// parallelism level; `wall_clock` (and the header's `parallelism`) is
/// excluded from that contract.
#[derive(Serialize)]
struct MetricsRecord {
    schema: &'static str,
    scale: f64,
    seed: u64,
    parallelism: usize,
    deterministic: st_obs::DeterministicMetrics,
    wall_clock: st_obs::WallClockMetrics,
}

/// Write one output file. Failures warn (with the path) and are counted
/// so the run can exit nonzero instead of silently dropping artifacts.
fn write_file(path: &Path, contents: &str, failures: &mut usize) -> bool {
    match std::fs::write(path, contents) {
        Ok(()) => true,
        Err(e) => {
            *failures += 1;
            eprintln!("WARN: cannot write {}: {e}", path.display());
            false
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "generating 4 cities at scale {} (seed {}, parallelism {}) ...",
        args.scale, args.seed, args.parallelism
    );
    let t0 = std::time::Instant::now();
    let dirty = (args.dirty_rate > 0.0).then(|| DirtyScenario::with_total_rate(args.dirty_rate));
    let obs = st_obs::Registry::new();
    let (analyses, timings, sanitize) =
        build_analyses_observed(args.scale, args.seed, args.parallelism, dirty.as_ref(), &obs);
    eprintln!(
        "datasets in {:.1}s, BST fits in {:.1}s ({} records quarantined); running experiments ...",
        timings.generate_s, timings.fit_s, sanitize.quarantined
    );

    let opts = SuperviseOptions {
        parallelism: args.parallelism,
        deadline: Duration::from_secs(args.deadline_secs),
        fail_jobs: args.inject_fail.clone(),
        ..SuperviseOptions::default()
    };
    let report = run_all_observed(&analyses, args.scale, args.seed, &opts, timings, sanitize, &obs);
    let claims = st_bench::claims::check_all(&analyses);

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    let mut written = 0usize;
    let mut write_failures = 0usize;
    for a in &report.artifacts {
        if let Some(svg) = &a.svg {
            if write_file(&args.out.join(format!("{}.svg", a.id)), svg, &mut write_failures) {
                written += 1;
            }
        }
        if write_file(&args.out.join(format!("{}.json", a.id)), &a.json, &mut write_failures) {
            written += 1;
        }
    }

    let bench = BenchRecord {
        scale: args.scale,
        seed: args.seed,
        parallelism: args.parallelism,
        timings: report.timings,
    };
    let timings_path = args.out.join("BENCH_timings.json");
    let timings_json = serde_json::to_string_pretty(&bench).expect("timings serialize");
    if write_file(&timings_path, &timings_json, &mut write_failures) {
        written += 1;
        eprintln!("wrote {}", timings_path.display());
    }

    // The metrics record is always assembled (the registry runs either
    // way, and `--baseline` diffs against it); the snapshot file itself
    // is only written under `--metrics`.
    let snapshot = report.metrics.as_ref().expect("observed run carries metrics");
    let record = MetricsRecord {
        schema: snapshot.schema,
        scale: args.scale,
        seed: args.seed,
        parallelism: args.parallelism,
        deterministic: snapshot.deterministic.clone(),
        wall_clock: snapshot.wall_clock.clone(),
    };
    let metrics_json = serde_json::to_string_pretty(&record).expect("metrics serialize");
    if args.metrics {
        let metrics_path = args.out.join("BENCH_metrics.json");
        if write_file(&metrics_path, &metrics_json, &mut write_failures) {
            written += 1;
            eprintln!("wrote {}", metrics_path.display());
        }
    }

    // The trace timeline. The process name deliberately excludes
    // parallelism: with `ts`/`dur` stripped, the file is byte-identical
    // at every parallelism level (DESIGN.md §14).
    let trace_path = args.out.join("BENCH_trace.json");
    let trace_json =
        obs.trace().to_chrome_json(&format!("repro scale={} seed={}", args.scale, args.seed));
    if write_file(&trace_path, &trace_json, &mut write_failures) {
        written += 1;
        eprintln!("wrote {}", trace_path.display());
    }

    let ledger_path = args.out.join("BENCH_ledger.jsonl");
    match append_ledger(&ledger_path, &LedgerRow::from_report(&report, args.parallelism)) {
        Ok(()) => eprintln!("appended run ledger row to {}", ledger_path.display()),
        Err(e) => {
            write_failures += 1;
            eprintln!("WARN: cannot append to {}: {e}", ledger_path.display());
        }
    }

    let mut md = render_report(&report);
    md.push_str("\n## Shape claims (paper vs this run)\n\n");
    md.push_str(&st_bench::claims::render_claims(&claims));
    let holds = claims.iter().filter(|c| c.holds).count();
    md.push_str(&format!("\n{holds}/{} claims hold\n", claims.len()));
    if let Err(e) = std::fs::write(args.out.join("report.md"), &md) {
        eprintln!("cannot write report: {e}");
        return ExitCode::FAILURE;
    }

    println!("{md}");

    // Regression gate: diff this run's metrics against the baseline
    // snapshot. Deterministic drift fails the run; wall-clock deltas
    // beyond tolerance only warn (DESIGN.md §14).
    let mut baseline_drift = false;
    if let Some(baseline_path) = &args.baseline {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline_doc = match MetricsDoc::parse(&baseline_text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let current_doc = MetricsDoc::parse(&metrics_json).expect("own snapshot parses");
        let diff = diff_metrics(&baseline_doc, &current_doc, args.diff_options);
        println!("{}", diff.render(&baseline_doc, &current_doc));
        if diff.deterministic_match() {
            eprintln!(
                "baseline {}: deterministic metrics match ({} keys)",
                baseline_path.display(),
                diff.matched_keys
            );
        } else {
            baseline_drift = true;
            eprintln!(
                "BASELINE DRIFT: {} deterministic keys differ from {}",
                diff.drift.len(),
                baseline_path.display()
            );
        }
    }

    eprintln!(
        "generate {:.1}s | fit {:.1}s | derive {:.1}s | render {:.1}s",
        report.timings.generate_s,
        report.timings.fit_s,
        report.timings.derive_s,
        report.timings.render_s
    );
    eprintln!("wrote {} files to {} in {:.1?}", written + 1, args.out.display(), t0.elapsed());
    if write_failures > 0 {
        eprintln!("WRITE FAILURES: {write_failures} output files could not be written");
    }
    if report.health.is_degraded() {
        let h = &report.health;
        eprintln!(
            "DEGRADED: {} of {} render jobs failed ({} retried); see the report's Health section",
            h.jobs_failed, h.jobs_total, h.jobs_retried
        );
        if !args.allow_degraded {
            return ExitCode::FAILURE;
        }
    }
    if baseline_drift || write_failures > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
