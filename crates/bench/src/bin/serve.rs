//! Run the long-running contextualization service against a replayed
//! campaign stream, then republish the batch artifacts as the final
//! epoch (DESIGN.md §18).
//!
//! ```text
//! serve [--scale S] [--seed N] [--out DIR] [--parallelism P]
//!       [--chunk-rows C] [--seal-rows R] [--epoch-rows E] [--warm]
//!       [--port PORT] [--linger SECS] [--wire-sessions N] [--metrics]
//!       [--baseline METRICS.json] [--wall-ratio R] [--wall-floor S]
//! serve --connect ADDR [--query CMD] [--timeout SECS]
//! ```
//!
//! Server mode binds the line-delimited JSON query API on loopback
//! (`--port 0` picks an ephemeral port; the chosen address is printed
//! as `listening on ADDR`), streams the generated campaigns through
//! [`st_serve::ContextService`] with the same chunk plan and interleave
//! as the `ingest` binary, drains, runs the batch fit/derive/render
//! stages, and publishes the final epoch carrying the rendered
//! headlines and the batch-comparable artifact hash. With `--warm`,
//! every epoch crossing also republishes warm headline analyses fitted
//! on the sealed rows so far. `--linger SECS` keeps the query API up
//! after the final epoch so scripted clients can read it; a `shutdown`
//! command (or the timeout) ends the run.
//!
//! The appended `BENCH_ledger.jsonl` row (schema `st-serve/v1`) carries
//! the artifact hash plus chunk/segment/epoch counts and sustained
//! ingest throughput: a serve row and a batch row with equal
//! `artifact_hash` produced the same bytes.
//!
//! Client mode (`--connect`) sends one query to a running server and
//! prints the response line; it exits nonzero if the response reports
//! `ok: false`.

use serde::Serialize;
use st_bench::cli::{self, CliError};
use st_bench::diff::{diff_metrics, DiffOptions, MetricsDoc};
use st_bench::ledger::{append_ledger, artifact_hash, ServeLedgerRow};
use st_bench::{
    build_analyses_serve, make_warm_renderer, render_report, run_all_observed, StageTimings,
    SuperviseOptions,
};
use st_serve::{
    query_once, session_measurements, ContextService, PartitionSpec, QueryServer, ServeOptions,
};
use st_speedtest::wire::ShapedServer;
use st_speedtest::{run_load, BackoffSchedule, LoadOptions};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: serve [--scale S] [--seed N] [--out DIR] [--parallelism P] \
     [--chunk-rows C] [--seal-rows R] [--epoch-rows E] [--warm] \
     [--port PORT] [--linger SECS] [--wire-sessions N] [--metrics] \
     [--baseline METRICS.json] [--wall-ratio R] [--wall-floor S]\n\
       serve --connect ADDR [--query CMD] [--timeout SECS]";

struct Args {
    scale: f64,
    seed: u64,
    out: PathBuf,
    parallelism: usize,
    chunk_rows: usize,
    seal_rows: usize,
    epoch_rows: usize,
    warm: bool,
    port: u16,
    linger: u64,
    wire_sessions: usize,
    metrics: bool,
    baseline: Option<PathBuf>,
    diff_options: DiffOptions,
    connect: Option<String>,
    query: String,
    timeout_s: u64,
}

fn parse_args() -> Result<Args, CliError> {
    let mut args = Args {
        scale: 0.05,
        seed: 20220707,
        out: PathBuf::from("serve-out"),
        parallelism: st_datagen::par::default_parallelism(),
        chunk_rows: 2048,
        seal_rows: st_speedtest::DEFAULT_SEAL_ROWS,
        epoch_rows: st_serve::DEFAULT_EPOCH_ROWS,
        warm: false,
        port: 0,
        linger: 0,
        wire_sessions: 0,
        metrics: false,
        baseline: None,
        diff_options: DiffOptions::default(),
        connect: None,
        query: "status".to_string(),
        timeout_s: 10,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| cli::next_value(&mut it, name);
        match flag.as_str() {
            "--scale" => args.scale = cli::parse_scale("--scale", &value("--scale")?)?,
            "--seed" => args.seed = cli::parse_u64("--seed", &value("--seed")?)?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--parallelism" => {
                args.parallelism =
                    cli::parse_at_least_one("--parallelism", &value("--parallelism")?)?;
            }
            "--chunk-rows" => {
                args.chunk_rows = cli::parse_at_least_one("--chunk-rows", &value("--chunk-rows")?)?;
            }
            "--seal-rows" => {
                args.seal_rows = cli::parse_at_least_one("--seal-rows", &value("--seal-rows")?)?;
            }
            "--epoch-rows" => {
                args.epoch_rows = cli::parse_at_least_one("--epoch-rows", &value("--epoch-rows")?)?;
            }
            "--warm" => args.warm = true,
            "--port" => {
                args.port = cli::parse_u64("--port", &value("--port")?)?
                    .try_into()
                    .map_err(|_| CliError::Usage("--port must fit in 16 bits".into()))?;
            }
            "--linger" => args.linger = cli::parse_u64("--linger", &value("--linger")?)?,
            "--wire-sessions" => {
                args.wire_sessions =
                    cli::parse_count("--wire-sessions", &value("--wire-sessions")?)?;
            }
            "--metrics" => args.metrics = true,
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--wall-ratio" => {
                args.diff_options.wall_ratio =
                    cli::parse_float_min("--wall-ratio", &value("--wall-ratio")?, 1.0)?;
            }
            "--wall-floor" => {
                args.diff_options.wall_floor_s =
                    cli::parse_float_min("--wall-floor", &value("--wall-floor")?, 0.0)?;
            }
            "--connect" => args.connect = Some(value("--connect")?),
            "--query" => args.query = value("--query")?,
            "--timeout" => args.timeout_s = cli::parse_u64("--timeout", &value("--timeout")?)?,
            "--help" | "-h" => return Err(CliError::Help(USAGE.into())),
            other => return Err(CliError::Usage(format!("unknown flag {other}\n{USAGE}"))),
        }
    }
    Ok(args)
}

/// Turn a shorthand query (`status`, `city City-A`, `headline`, ...)
/// into a request line; raw JSON passes through untouched.
fn to_request(query: &str) -> String {
    let q = query.trim();
    if q.starts_with('{') {
        return q.to_string();
    }
    let mut parts = q.split_whitespace();
    let cmd = parts.next().unwrap_or("status");
    match (cmd, parts.next()) {
        ("city", Some(city)) => format!("{{\"cmd\":\"city\",\"city\":\"{city}\"}}"),
        _ => format!("{{\"cmd\":\"{cmd}\"}}"),
    }
}

fn run_client(args: &Args, addr_raw: &str) -> ExitCode {
    let addr: std::net::SocketAddr = match addr_raw.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad --connect address {addr_raw:?}: {e}");
            return ExitCode::from(cli::USAGE_EXIT_CODE);
        }
    };
    let request = to_request(&args.query);
    match query_once(addr, &request, Duration::from_secs(args.timeout_s)) {
        Ok(line) => {
            println!("{line}");
            let ok = serde_json::from_str(&line)
                .ok()
                .and_then(|v: serde_json::Value| v.get("ok").and_then(|o| o.as_bool()));
            if ok == Some(false) {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("query {addr} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The machine-readable timing record written next to the artifacts.
#[derive(Serialize)]
struct BenchRecord {
    scale: f64,
    seed: u64,
    parallelism: usize,
    chunk_rows: usize,
    seal_rows: usize,
    epoch_rows: usize,
    timings: StageTimings,
    ingest_s: f64,
}

/// The `BENCH_metrics.json` schema, as written by `repro` and `ingest`.
#[derive(Serialize)]
struct MetricsRecord {
    schema: &'static str,
    scale: f64,
    seed: u64,
    parallelism: usize,
    deterministic: st_obs::DeterministicMetrics,
    wall_clock: st_obs::WallClockMetrics,
}

fn write_file(path: &Path, contents: &str, failures: &mut usize) -> bool {
    match std::fs::write(path, contents) {
        Ok(()) => true,
        Err(e) => {
            *failures += 1;
            eprintln!("WARN: cannot write {}: {e}", path.display());
            false
        }
    }
}

/// Drive `--wire-sessions` live sessions against a loopback shaped pool
/// and ingest the completed results into the service's wire partition
/// (wall-clock class: which sessions complete depends on real sockets,
/// so these rows never touch deterministic counters or epochs).
fn ingest_wire_sessions(service: &ContextService, sessions: usize, seed: u64) {
    let servers: Vec<ShapedServer> =
        match (0..2).map(|_| ShapedServer::start(200.0, 50.0)).collect::<std::io::Result<Vec<_>>>()
        {
            Ok(s) => s,
            Err(e) => {
                eprintln!("WARN: cannot start the wire pool, skipping wire sessions: {e}");
                return;
            }
        };
    let pool: Vec<_> = servers.iter().map(|s| s.addr()).collect();
    let mut opts = LoadOptions::new(sessions);
    opts.with_upload = true; // upload-free rows would quarantine
    opts.backoff = BackoffSchedule::new(Duration::from_millis(5), Duration::from_millis(40), seed);
    let summary = run_load(&pool, &opts, &st_obs::Registry::disabled());
    let rows = session_measurements(&summary.reports, 100, 12);
    let n = rows.len();
    match service.ingest_chunk("wire", "sessions", rows) {
        Ok(receipt) => eprintln!(
            "wire: {} sessions completed, {} rows accepted into the wire partition",
            summary.sessions_completed,
            n as u64 - receipt.stats.quarantined
        ),
        Err(e) => eprintln!("WARN: wire ingest failed: {e}"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return e.report(),
    };
    if let Some(addr) = args.connect.clone() {
        return run_client(&args, &addr);
    }

    eprintln!(
        "serving 4 cities at scale {} (seed {}, parallelism {}, chunks of {}, seal at {}, \
         epoch every {}) ...",
        args.scale, args.seed, args.parallelism, args.chunk_rows, args.seal_rows, args.epoch_rows
    );
    let t0 = std::time::Instant::now();
    let obs = st_obs::Registry::new();
    let warm = args.warm.then(|| make_warm_renderer(args.scale, args.seed));
    let mut specs: Vec<PartitionSpec> =
        st_datagen::City::all().iter().map(|c| PartitionSpec::city(c.label())).collect();
    specs.push(PartitionSpec::wire());
    let service = Arc::new(ContextService::new(
        specs,
        ServeOptions { seal_rows: args.seal_rows, epoch_rows: args.epoch_rows, warm },
        obs.clone(),
    ));
    let server = match QueryServer::start(Arc::clone(&service), &format!("127.0.0.1:{}", args.port))
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind the query API: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());

    if args.wire_sessions > 0 {
        ingest_wire_sessions(&service, args.wire_sessions, args.seed);
    }

    let (analyses, timings, sanitize, stats) = match build_analyses_serve(
        args.scale,
        args.seed,
        args.parallelism,
        args.chunk_rows,
        &service,
        &obs,
    ) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("serve replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "streamed {} rows in {} chunks ({} segments, {} warm epochs) in {:.1}s; rendering ...",
        stats.rows, stats.chunks, stats.segments, stats.epochs, stats.ingest_s
    );

    let opts = SuperviseOptions { parallelism: args.parallelism, ..SuperviseOptions::default() };
    let report = run_all_observed(&analyses, args.scale, args.seed, &opts, timings, sanitize, &obs);
    let claims = st_bench::claims::check_all(&analyses);

    // Publish the final epoch before any disk IO: queries arriving from
    // here on see the completed run.
    let (hash, files) = artifact_hash(&report.artifacts);
    let tables = report
        .artifacts
        .iter()
        .filter(|a| a.id.starts_with("table"))
        .map(|a| (a.id.clone(), a.text.clone()))
        .collect();
    let final_epoch = match service.publish_final(
        &report.health.sanitize,
        report.headlines.clone(),
        tables,
        Some(format!("{hash:016x}")),
        files as u64,
    ) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot publish the final epoch: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("published final epoch {final_epoch} (artifact hash {hash:016x})");

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    let mut written = 0usize;
    let mut write_failures = 0usize;
    for a in &report.artifacts {
        if let Some(svg) = &a.svg {
            if write_file(&args.out.join(format!("{}.svg", a.id)), svg, &mut write_failures) {
                written += 1;
            }
        }
        if write_file(&args.out.join(format!("{}.json", a.id)), &a.json, &mut write_failures) {
            written += 1;
        }
    }

    let bench = BenchRecord {
        scale: args.scale,
        seed: args.seed,
        parallelism: args.parallelism,
        chunk_rows: args.chunk_rows,
        seal_rows: args.seal_rows,
        epoch_rows: args.epoch_rows,
        timings: report.timings,
        ingest_s: stats.ingest_s,
    };
    let timings_path = args.out.join("BENCH_timings.json");
    let timings_json = serde_json::to_string_pretty(&bench).expect("timings serialize");
    if write_file(&timings_path, &timings_json, &mut write_failures) {
        written += 1;
        eprintln!("wrote {}", timings_path.display());
    }

    let snapshot = report.metrics.as_ref().expect("observed run carries metrics");
    let record = MetricsRecord {
        schema: snapshot.schema,
        scale: args.scale,
        seed: args.seed,
        parallelism: args.parallelism,
        deterministic: snapshot.deterministic.clone(),
        wall_clock: snapshot.wall_clock.clone(),
    };
    let metrics_json = serde_json::to_string_pretty(&record).expect("metrics serialize");
    if args.metrics {
        let metrics_path = args.out.join("BENCH_metrics.json");
        if write_file(&metrics_path, &metrics_json, &mut write_failures) {
            written += 1;
            eprintln!("wrote {}", metrics_path.display());
        }
    }

    let trace_path = args.out.join("BENCH_trace.json");
    let trace_json = obs.trace().to_chrome_json(&format!(
        "serve scale={} seed={} chunk_rows={} epoch_rows={}",
        args.scale, args.seed, args.chunk_rows, args.epoch_rows
    ));
    if write_file(&trace_path, &trace_json, &mut write_failures) {
        written += 1;
        eprintln!("wrote {}", trace_path.display());
    }

    let ledger_path = args.out.join("BENCH_ledger.jsonl");
    let row = ServeLedgerRow::from_report(
        &report,
        args.parallelism,
        args.chunk_rows,
        args.seal_rows,
        args.epoch_rows,
        &stats,
        final_epoch,
    );
    match append_ledger(&ledger_path, &row) {
        Ok(()) => eprintln!("appended serve ledger row to {}", ledger_path.display()),
        Err(e) => {
            write_failures += 1;
            eprintln!("WARN: cannot append to {}: {e}", ledger_path.display());
        }
    }

    let mut md = render_report(&report);
    md.push_str("\n## Shape claims (paper vs this run)\n\n");
    md.push_str(&st_bench::claims::render_claims(&claims));
    let holds = claims.iter().filter(|c| c.holds).count();
    md.push_str(&format!("\n{holds}/{} claims hold\n", claims.len()));
    if let Err(e) = std::fs::write(args.out.join("report.md"), &md) {
        eprintln!("cannot write report: {e}");
        return ExitCode::FAILURE;
    }
    println!("{md}");

    let mut baseline_drift = false;
    if let Some(baseline_path) = &args.baseline {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline_doc = match MetricsDoc::parse(&baseline_text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let current_doc = MetricsDoc::parse(&metrics_json).expect("own snapshot parses");
        let diff = diff_metrics(&baseline_doc, &current_doc, args.diff_options);
        println!("{}", diff.render(&baseline_doc, &current_doc));
        if diff.deterministic_match() {
            eprintln!(
                "baseline {}: deterministic metrics match ({} keys)",
                baseline_path.display(),
                diff.matched_keys
            );
        } else {
            baseline_drift = true;
            eprintln!(
                "BASELINE DRIFT: {} deterministic keys differ from {}",
                diff.drift.len(),
                baseline_path.display()
            );
        }
    }

    eprintln!(
        "generate {:.1}s | stream {:.1}s ({:.0} rows/s) | fit {:.1}s | derive {:.1}s | render {:.1}s",
        report.timings.generate_s,
        stats.ingest_s,
        row.rows_per_s,
        report.timings.fit_s,
        report.timings.derive_s,
        report.timings.render_s
    );
    eprintln!("wrote {} files to {} in {:.1?}", written + 1, args.out.display(), t0.elapsed());

    if args.linger > 0 {
        eprintln!(
            "serving final epoch {} on {} for up to {}s (send {{\"cmd\":\"shutdown\"}} to exit)",
            final_epoch,
            server.addr(),
            args.linger
        );
        if server.wait_shutdown(Duration::from_secs(args.linger)) {
            eprintln!("shutdown requested by a client");
        }
    }
    server.stop();

    if write_failures > 0 {
        eprintln!("WRITE FAILURES: {write_failures} output files could not be written");
    }
    if report.health.is_degraded() {
        let h = &report.health;
        eprintln!(
            "DEGRADED: {} of {} render jobs failed ({} retried); see the report's Health section",
            h.jobs_failed, h.jobs_total, h.jobs_retried
        );
        return ExitCode::FAILURE;
    }
    if baseline_drift || write_failures > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
