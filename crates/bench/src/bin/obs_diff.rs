//! Compare two `BENCH_metrics.json` snapshots under the two-class
//! metric contract (DESIGN.md §14).
//!
//! ```text
//! obs-diff <old> <new> [--wall-ratio R] [--wall-floor S]
//! ```
//!
//! The deterministic metric class (counters, gauges, histograms, series)
//! must match exactly; every mismatch is printed as a per-key drill-down.
//! Wall-clock span durations are compared by `new/old` ratio against a
//! tolerance band (`--wall-ratio`, default 2.0) with a noise floor
//! (`--wall-floor`, default 0.05 s); exceedances are warnings only.
//!
//! Exit code: `0` when the deterministic class is identical, `1` on
//! deterministic drift, `2` on usage, I/O, or parse errors. Wall-clock
//! exceedances never change the exit code — timings move with load and
//! hardware, and gating on them would make the regression gate flaky.

use st_bench::diff::{diff_metrics, DiffOptions, MetricsDoc};
use std::process::ExitCode;

const USAGE: &str = "usage: obs-diff <old-metrics.json> <new-metrics.json> \
    [--wall-ratio R] [--wall-floor S]";

struct Args {
    old: String,
    new: String,
    options: DiffOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut options = DiffOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--wall-ratio" => {
                options.wall_ratio =
                    value("--wall-ratio")?.parse().map_err(|e| format!("bad --wall-ratio: {e}"))?;
                if options.wall_ratio < 1.0 || options.wall_ratio.is_nan() {
                    return Err("--wall-ratio must be >= 1.0".into());
                }
            }
            "--wall-floor" => {
                options.wall_floor_s =
                    value("--wall-floor")?.parse().map_err(|e| format!("bad --wall-floor: {e}"))?;
                if options.wall_floor_s < 0.0 || options.wall_floor_s.is_nan() {
                    return Err("--wall-floor must be >= 0".into());
                }
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{USAGE}"))
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        return Err(format!("expected exactly two snapshot paths, got {}\n{USAGE}", paths.len()));
    }
    let new = paths.pop().expect("two paths");
    let old = paths.pop().expect("two paths");
    Ok(Args { old, new, options })
}

fn load(path: &str) -> Result<MetricsDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    MetricsDoc::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let (old, new) = match (load(&args.old), load(&args.new)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let diff = diff_metrics(&old, &new, args.options);
    print!("{}", diff.render(&old, &new));
    if diff.deterministic_match() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "obs-diff: deterministic drift between {} and {} ({} keys)",
            args.old,
            args.new,
            diff.drift.len()
        );
        ExitCode::from(1)
    }
}
