//! Live operator console over the ledger / metrics / serve surface.
//!
//! ```text
//! console (--connect ADDR | --ledger PATH)... [--baseline PATH]
//!         [--headless] [--frames N] [--width W] [--interval-ms MS]
//! ```
//!
//! Attaches up to two feeds and renders fixed-width plain-text frames
//! (st-console): a live feed against an st-serve query listener
//! (`--connect`) — one `watch` subscription plus `status`/`metrics`
//! polls per frame — and a ledger tail (`--ledger`) that parses
//! batch-comparable rows as they are appended. With `--baseline`,
//! every tailed row is compared against the baseline's first
//! batch-comparable row and divergences are raised in the drift panel.
//!
//! `--headless` renders `--frames N` frames to stdout and exits — the
//! mode CI uses to byte-compare the deterministic pane across
//! parallelism levels. Without it the console clears the screen
//! between frames and runs until the watched run publishes its final
//! epoch.
//!
//! Exit code: `0` clean, `1` when drift flags are raised (or the live
//! feed could not be attached), `2` on usage errors — including an
//! unreadable or row-less `--baseline`, matching `obs-diff`'s
//! contract that a missing comparison input is a usage error, not
//! drift.

use std::process::ExitCode;
use std::time::Duration;

use st_bench::cli::{next_value, parse_at_least_one, parse_count, CliError};
use st_bench::ledger::{read_ledger, LedgerRow, LedgerTail};
use st_console::{run_headless, Controller, Event, QueryClient, Renderer, RunIdentity, WatchFeed};

const USAGE: &str = "usage: console (--connect ADDR | --ledger PATH)... [--baseline PATH] \
    [--headless] [--frames N] [--width W] [--interval-ms MS]";

struct Args {
    connect: Option<String>,
    ledger: Option<String>,
    baseline: Option<String>,
    headless: bool,
    frames: u64,
    width: usize,
    interval: Duration,
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Result<Args, CliError> {
    let mut args = Args {
        connect: None,
        ledger: None,
        baseline: None,
        headless: false,
        frames: 3,
        width: st_console::DEFAULT_WIDTH,
        interval: Duration::from_millis(250),
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connect" => args.connect = Some(next_value(&mut it, "--connect")?),
            "--ledger" => args.ledger = Some(next_value(&mut it, "--ledger")?),
            "--baseline" => args.baseline = Some(next_value(&mut it, "--baseline")?),
            "--headless" => args.headless = true,
            "--frames" => {
                args.frames =
                    parse_at_least_one("--frames", &next_value(&mut it, "--frames")?)? as u64;
            }
            "--width" => {
                args.width = parse_at_least_one("--width", &next_value(&mut it, "--width")?)?;
            }
            "--interval-ms" => {
                let ms = parse_count("--interval-ms", &next_value(&mut it, "--interval-ms")?)?;
                args.interval = Duration::from_millis(ms as u64);
            }
            "--help" | "-h" => return Err(CliError::Help(USAGE.to_string())),
            other => return Err(CliError::Usage(format!("unknown flag {other}\n{USAGE}"))),
        }
    }
    if args.connect.is_none() && args.ledger.is_none() {
        return Err(CliError::Usage(format!(
            "at least one feed is required (--connect or --ledger)\n{USAGE}"
        )));
    }
    Ok(args)
}

/// Load the baseline's first batch-comparable row. Any failure here is
/// a usage error: the operator asked for a comparison that cannot
/// start.
fn load_baseline(path: &str) -> Result<LedgerRow, CliError> {
    let rows = read_ledger(std::path::Path::new(path))
        .map_err(|e| CliError::Usage(format!("cannot read --baseline {path}: {e}")))?;
    rows.iter().find_map(|v| LedgerRow::from_value(v).ok()).ok_or_else(|| {
        CliError::Usage(format!("--baseline {path} has no batch-comparable ledger row"))
    })
}

fn run_identity(row: &LedgerRow) -> RunIdentity {
    RunIdentity {
        schema: row.schema.clone(),
        scale: row.scale,
        seed: row.seed,
        parallelism: row.parallelism as u64,
        artifact_hash: row.artifact_hash.clone(),
        artifact_files: row.artifact_files as u64,
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => return e.report(),
    };
    let baseline = match args.baseline.as_deref().map(load_baseline).transpose() {
        Ok(b) => b,
        Err(e) => return e.report(),
    };

    let mut controller = Controller::new();
    let renderer = Renderer::new(args.width);
    let timeout = Duration::from_millis(500);

    let client = args.connect.as_deref().map(|addr| QueryClient::new(addr, timeout));
    let watch = match args.connect.as_deref() {
        Some(addr) => match WatchFeed::connect(addr, timeout) {
            Ok(feed) => {
                controller.apply(Event::Connected { addr: addr.to_string() });
                Some(feed)
            }
            Err(e) => {
                eprintln!("console: {e}");
                return ExitCode::from(1);
            }
        },
        None => None,
    };
    let mut tail = args.ledger.as_deref().map(|path| {
        controller.apply(Event::LedgerAttached { path: path.to_string() });
        LedgerTail::new(path)
    });

    let mut first = true;
    let interval = args.interval;
    let poll = move |c: &mut Controller| {
        if !first {
            std::thread::sleep(interval);
        }
        first = false;
        if let Some(feed) = &watch {
            for event in feed.drain() {
                c.apply(event);
            }
        }
        if let Some(client) = &client {
            for result in [client.status(), client.metrics()] {
                match result {
                    Ok(event) => c.apply(event),
                    Err(e) => c.apply(Event::Note(e)),
                }
            }
        }
        if let Some(tail) = &mut tail {
            match tail.poll() {
                Ok(rows) => {
                    for row in rows {
                        if let Some(base) = &baseline {
                            c.apply(Event::Drift(row.drift_against(base)));
                        }
                        c.apply(Event::Ledger(run_identity(&row)));
                    }
                }
                Err(e) => c.apply(Event::Note(format!("ledger: {e}"))),
            }
        }
    };

    let mut stdout = std::io::stdout().lock();
    let render_result = if args.headless {
        run_headless(&mut controller, &renderer, args.frames, poll, &mut stdout)
    } else {
        run_screen(&mut controller, &renderer, poll, &mut stdout)
    };
    if let Err(e) = render_result {
        eprintln!("console: cannot write frames: {e}");
        return ExitCode::from(1);
    }
    if controller.drifted() {
        eprintln!(
            "console: drift against baseline ({} flags)",
            controller.state.drift.as_ref().map_or(0, Vec::len)
        );
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Interactive mode: clear the screen between frames and run until the
/// watched run publishes its final epoch (or forever for a pure ledger
/// tail — it is an operator's dashboard, Ctrl-C ends it).
fn run_screen<W: std::io::Write>(
    controller: &mut Controller,
    renderer: &Renderer,
    mut poll: impl FnMut(&mut Controller),
    out: &mut W,
) -> std::io::Result<()> {
    let mut idx = 0u64;
    loop {
        poll(controller);
        controller.apply(Event::Tick);
        idx += 1;
        out.write_all(b"\x1b[2J\x1b[H")?;
        out.write_all(renderer.render(&controller.state, idx).to_text().as_bytes())?;
        out.flush()?;
        if controller.state.feed_done {
            return Ok(());
        }
    }
}
