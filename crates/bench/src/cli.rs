//! Shared validated flag parsing for the st-bench binaries.
//!
//! Every binary used to hand-roll the same `--scale`/`--seed`/... loop
//! with slightly different validation and a single catch-all exit code.
//! This module centralizes the value parsing so `ingest` and `serve`
//! reject the same nonsense the same way, and splits the exit contract
//! in two:
//!
//! * **usage errors** (bad flag, missing value, out-of-range knob like
//!   `--chunk-rows 0`) exit with [`USAGE_EXIT_CODE`] (2) — the caller
//!   never started doing work;
//! * **runtime failures** (degraded render, baseline drift, write
//!   failures) keep exiting 1 as before.
//!
//! `--help` is not an error: it prints the usage string to stdout and
//! exits 0.

use std::process::ExitCode;

/// Exit code for malformed invocations (POSIX-style "incorrect usage").
pub const USAGE_EXIT_CODE: u8 = 2;

/// How an argument parse ends early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h`: print the usage string to stdout, exit 0.
    Help(String),
    /// A malformed invocation: print to stderr, exit [`USAGE_EXIT_CODE`].
    Usage(String),
}

impl CliError {
    /// Report the outcome and produce the binary's exit code.
    pub fn report(self) -> ExitCode {
        match self {
            CliError::Help(usage) => {
                println!("{usage}");
                ExitCode::SUCCESS
            }
            CliError::Usage(msg) => {
                eprintln!("{msg}");
                ExitCode::from(USAGE_EXIT_CODE)
            }
        }
    }
}

/// Pull the value following `flag` off the argument iterator.
pub fn next_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, CliError> {
    it.next().ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))
}

/// Parse a `--scale`-style fraction: a float in `(0, 1]`.
pub fn parse_scale(flag: &str, raw: &str) -> Result<f64, CliError> {
    let v: f64 = raw.parse().map_err(|e| CliError::Usage(format!("bad {flag} {raw:?}: {e}")))?;
    if !(v > 0.0 && v <= 1.0) {
        return Err(CliError::Usage(format!("{flag} must be in (0, 1], got {raw}")));
    }
    Ok(v)
}

/// Parse a count knob that must be at least 1 (`--chunk-rows`,
/// `--seal-rows`, `--epoch-rows`, `--parallelism`, ...). Zero is a
/// usage error, not a panic deep in the pipeline.
pub fn parse_at_least_one(flag: &str, raw: &str) -> Result<usize, CliError> {
    let v: usize = raw.parse().map_err(|e| CliError::Usage(format!("bad {flag} {raw:?}: {e}")))?;
    if v == 0 {
        return Err(CliError::Usage(format!("{flag} must be >= 1")));
    }
    Ok(v)
}

/// Parse an unsigned 64-bit knob (`--seed`, session counts, ...).
pub fn parse_u64(flag: &str, raw: &str) -> Result<u64, CliError> {
    raw.parse().map_err(|e| CliError::Usage(format!("bad {flag} {raw:?}: {e}")))
}

/// Parse an unsigned count that may legitimately be zero
/// (`--wire-sessions`, `--linger`, ...).
pub fn parse_count(flag: &str, raw: &str) -> Result<usize, CliError> {
    raw.parse().map_err(|e| CliError::Usage(format!("bad {flag} {raw:?}: {e}")))
}

/// Parse a float knob with a lower bound (`--wall-ratio`, ...). NaN is
/// rejected.
pub fn parse_float_min(flag: &str, raw: &str, min: f64) -> Result<f64, CliError> {
    let v: f64 = raw.parse().map_err(|e| CliError::Usage(format!("bad {flag} {raw:?}: {e}")))?;
    if v < min || v.is_nan() {
        return Err(CliError::Usage(format!("{flag} must be >= {min}")));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counts_are_usage_errors() {
        for flag in ["--chunk-rows", "--seal-rows", "--epoch-rows", "--parallelism"] {
            match parse_at_least_one(flag, "0") {
                Err(CliError::Usage(msg)) => assert!(msg.contains(flag), "{msg}"),
                other => panic!("{flag} 0 must be a usage error, got {other:?}"),
            }
        }
        assert_eq!(parse_at_least_one("--chunk-rows", "500"), Ok(500));
    }

    #[test]
    fn scale_bounds_and_garbage_are_usage_errors() {
        assert!(parse_scale("--scale", "0.05").is_ok());
        assert!(parse_scale("--scale", "1.0").is_ok());
        for bad in ["0", "1.5", "-0.1", "NaN", "banana"] {
            assert!(
                matches!(parse_scale("--scale", bad), Err(CliError::Usage(_))),
                "--scale {bad} must be rejected"
            );
        }
    }

    #[test]
    fn missing_values_and_floats_are_validated() {
        let mut empty = std::iter::empty::<String>();
        assert!(matches!(next_value(&mut empty, "--seed"), Err(CliError::Usage(_))));
        let mut one = ["7".to_string()].into_iter();
        assert_eq!(next_value(&mut one, "--seed").unwrap(), "7");
        assert_eq!(parse_u64("--seed", "7"), Ok(7));
        assert!(matches!(parse_float_min("--wall-ratio", "0.5", 1.0), Err(CliError::Usage(_))));
        assert!(matches!(parse_float_min("--wall-ratio", "NaN", 1.0), Err(CliError::Usage(_))));
        assert_eq!(parse_float_min("--wall-ratio", "1.25", 1.0), Ok(1.25));
        assert_eq!(parse_count("--linger", "0"), Ok(0));
    }
}
