//! Run-over-run regression diffing of `BENCH_metrics.json` snapshots
//! (DESIGN.md §14).
//!
//! [`MetricsDoc::parse`] loads a snapshot written by `repro --metrics`;
//! [`diff_metrics`] compares two documents under the two-class metric
//! contract of DESIGN.md §13:
//!
//! * The **deterministic** class (counters, gauges, histograms, series,
//!   plus the schema tag) must match **exactly**. Any difference is
//!   drift, rendered as a per-key drill-down (`old -> new`, first
//!   divergent bucket/index, changed histogram fields and quantiles).
//! * The **wall-clock** class (span durations) is compared by ratio
//!   against a configurable tolerance with a noise floor. Exceedances
//!   are *warnings*: they never make a comparison fail, because span
//!   timings legitimately move with load, parallelism, and hardware.
//!
//! Span *keys* also live outside the strict contract: a span path that
//! exists on only one side is reported with the wall-clock warnings, not
//! as drift, so that comparing a `--parallelism 1` run against a
//! `--parallelism 4` run stays clean.
//!
//! Both the `obs-diff` binary and `repro --baseline` sit on this module;
//! they exit zero exactly when [`MetricsDiff::deterministic_match`]
//! holds.
//!
//! Float semantics: the snapshot serializer writes every non-finite
//! value as JSON `null` and the parser reads `null` back as NaN, so the
//! diff compares the *serialized* view of the metrics. Two NaNs compare
//! equal here — they are the same byte sequence on disk.

use serde_json::Value;
use st_obs::Histogram;
use std::collections::BTreeMap;

/// Wall-clock statistics of one span path, as stored in the snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanDoc {
    /// Times the span was entered.
    pub count: u64,
    /// Total seconds across entries.
    pub total_s: f64,
}

/// A parsed `BENCH_metrics.json` document. `schema` and the four
/// deterministic maps are the strict-comparison surface; `scale`, `seed`
/// and `parallelism` are informational header fields (absent in
/// snapshots produced by [`st_obs::MetricsSnapshot::to_json`], which has
/// no run header); `spans` is the wall-clock class.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDoc {
    /// Snapshot schema tag ("st-obs/v1").
    pub schema: String,
    /// The run's `--scale`, when the snapshot carries a run header.
    pub scale: Option<f64>,
    /// The run's `--seed`, when present.
    pub seed: Option<u64>,
    /// The run's `--parallelism`, when present.
    pub parallelism: Option<u64>,
    /// Deterministic counters.
    pub counters: BTreeMap<String, u64>,
    /// Deterministic gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Deterministic fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Deterministic ordered series.
    pub series: BTreeMap<String, Vec<f64>>,
    /// Wall-clock span statistics.
    pub spans: BTreeMap<String, SpanDoc>,
}

/// NaN-tolerant float equality: non-finite values round-trip through the
/// snapshot as `null`/NaN, so NaN == NaN here.
fn feq(a: f64, b: f64) -> bool {
    a == b || (a.is_nan() && b.is_nan())
}

fn fmt_f(v: f64) -> String {
    if v.is_nan() {
        "null".to_string()
    } else {
        format!("{v}")
    }
}

fn fmt_q(q: Option<f64>) -> String {
    q.map(fmt_f).unwrap_or_else(|| "-".to_string())
}

fn parse_f64_lossy(section: &str, key: &str, v: &Value) -> Result<f64, String> {
    v.as_f64_lossy().ok_or_else(|| format!("{section} `{key}` holds a non-number"))
}

fn parse_histogram(key: &str, v: &Value) -> Result<Histogram, String> {
    let obj = v.as_object().ok_or_else(|| format!("histogram `{key}` is not an object"))?;
    let field =
        |name: &str| obj.get(name).ok_or_else(|| format!("histogram `{key}` is missing `{name}`"));
    let floats = |name: &str| -> Result<Vec<f64>, String> {
        field(name)?
            .as_array()
            .ok_or_else(|| format!("histogram `{key}` field `{name}` is not an array"))?
            .iter()
            .map(|x| {
                x.as_f64()
                    .ok_or_else(|| format!("histogram `{key}` field `{name}` holds a non-number"))
            })
            .collect()
    };
    let uints = |name: &str| -> Result<Vec<u64>, String> {
        field(name)?
            .as_array()
            .ok_or_else(|| format!("histogram `{key}` field `{name}` is not an array"))?
            .iter()
            .map(|x| {
                x.as_u64()
                    .ok_or_else(|| format!("histogram `{key}` field `{name}` holds a non-u64"))
            })
            .collect()
    };
    let uint = |name: &str| -> Result<u64, String> {
        field(name)?
            .as_u64()
            .ok_or_else(|| format!("histogram `{key}` field `{name}` is not a u64"))
    };
    let float = |name: &str| -> Result<f64, String> {
        field(name)?
            .as_f64()
            .ok_or_else(|| format!("histogram `{key}` field `{name}` is not a number"))
    };
    let h = Histogram {
        bounds: floats("bounds")?,
        counts: uints("counts")?,
        overflow: uint("overflow")?,
        nan: uint("nan")?,
        count: uint("count")?,
        finite: uint("finite")?,
        min: float("min")?,
        max: float("max")?,
    };
    if h.bounds.len() != h.counts.len() {
        return Err(format!(
            "histogram `{key}` has {} bounds but {} buckets",
            h.bounds.len(),
            h.counts.len()
        ));
    }
    Ok(h)
}

impl MetricsDoc {
    /// Parse a snapshot produced by `repro --metrics` (run header
    /// included) or by [`st_obs::MetricsSnapshot::to_json`] (bare
    /// snapshot). Structural problems — wrong JSON, missing sections,
    /// mistyped fields — are reported with the offending key.
    pub fn parse(json: &str) -> Result<MetricsDoc, String> {
        let root = serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
        let mut doc = MetricsDoc {
            schema: root
                .get("schema")
                .and_then(Value::as_str)
                .ok_or("missing `schema` string")?
                .to_string(),
            scale: root.get("scale").and_then(Value::as_f64),
            seed: root.get("seed").and_then(Value::as_u64),
            parallelism: root.get("parallelism").and_then(Value::as_u64),
            ..MetricsDoc::default()
        };
        let det = root
            .get("deterministic")
            .and_then(Value::as_object)
            .ok_or("missing `deterministic` object")?;
        if let Some(counters) = det.get("counters").and_then(Value::as_object) {
            for (k, v) in counters {
                let n = v.as_u64().ok_or_else(|| format!("counter `{k}` is not a u64"))?;
                doc.counters.insert(k.clone(), n);
            }
        }
        if let Some(gauges) = det.get("gauges").and_then(Value::as_object) {
            for (k, v) in gauges {
                doc.gauges.insert(k.clone(), parse_f64_lossy("gauge", k, v)?);
            }
        }
        if let Some(histograms) = det.get("histograms").and_then(Value::as_object) {
            for (k, v) in histograms {
                doc.histograms.insert(k.clone(), parse_histogram(k, v)?);
            }
        }
        if let Some(series) = det.get("series").and_then(Value::as_object) {
            for (k, v) in series {
                let xs = v
                    .as_array()
                    .ok_or_else(|| format!("series `{k}` is not an array"))?
                    .iter()
                    .map(|x| parse_f64_lossy("series", k, x))
                    .collect::<Result<Vec<f64>, String>>()?;
                doc.series.insert(k.clone(), xs);
            }
        }
        if let Some(spans) =
            root.get("wall_clock").and_then(|w| w.get("spans")).and_then(Value::as_object)
        {
            for (k, v) in spans {
                let count = v
                    .get("count")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("span `{k}` is missing a u64 `count`"))?;
                let total_s = v
                    .get("total_s")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("span `{k}` is missing a numeric `total_s`"))?;
                doc.spans.insert(k.clone(), SpanDoc { count, total_s });
            }
        }
        Ok(doc)
    }

    /// One-line description of the run header for diff reports.
    pub fn describe(&self) -> String {
        let mut parts = vec![format!("schema {}", self.schema)];
        if let Some(s) = self.scale {
            parts.push(format!("scale {s}"));
        }
        if let Some(s) = self.seed {
            parts.push(format!("seed {s}"));
        }
        if let Some(p) = self.parallelism {
            parts.push(format!("parallelism {p}"));
        }
        parts.join(", ")
    }

    /// Number of keys in the strict-comparison surface (schema tag plus
    /// every deterministic map entry).
    pub fn deterministic_keys(&self) -> usize {
        1 + self.counters.len() + self.gauges.len() + self.histograms.len() + self.series.len()
    }
}

/// Tolerances for the wall-clock comparison. The deterministic class
/// takes no options: it is compared exactly, always.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Flag spans whose `new/old` total-seconds ratio leaves
    /// `[1/wall_ratio, wall_ratio]`.
    pub wall_ratio: f64,
    /// Skip spans below this many seconds on both sides — micro-spans
    /// are scheduling noise, not regressions.
    pub wall_floor_s: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { wall_ratio: 2.0, wall_floor_s: 0.05 }
    }
}

/// One deterministic difference between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Section of the key: "schema", "counters", "gauges", "histograms"
    /// or "series".
    pub section: &'static str,
    /// The full metric key, labels included.
    pub key: String,
    /// Human-readable `old -> new` drill-down.
    pub detail: String,
}

/// One wall-clock span present in both snapshots and above the noise
/// floor on at least one side.
#[derive(Debug, Clone, PartialEq)]
pub struct WallDelta {
    /// Span path.
    pub key: String,
    /// Old total seconds.
    pub old_s: f64,
    /// New total seconds.
    pub new_s: f64,
    /// `new_s / old_s` (infinite when the old side is zero).
    pub ratio: f64,
    /// Whether the ratio leaves the tolerance band.
    pub exceeds: bool,
}

/// Outcome of comparing two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDiff {
    /// Every deterministic difference, in section-then-key order.
    pub drift: Vec<Drift>,
    /// Deterministic keys that compared equal.
    pub matched_keys: usize,
    /// Wall-clock deltas for spans present in both snapshots.
    pub wall: Vec<WallDelta>,
    /// Span paths present in only one snapshot (informational).
    pub wall_missing: Vec<String>,
    /// The tolerances the wall-clock comparison ran with.
    pub options: DiffOptions,
}

impl MetricsDiff {
    /// Whether the deterministic class is identical — the exit-0
    /// condition of `obs-diff` and `repro --baseline`.
    pub fn deterministic_match(&self) -> bool {
        self.drift.is_empty()
    }

    /// How many wall-clock spans left the tolerance band.
    pub fn wall_exceedances(&self) -> usize {
        self.wall.iter().filter(|w| w.exceeds).count()
    }

    /// Render the drill-down report.
    pub fn render(&self, old: &MetricsDoc, new: &MetricsDoc) -> String {
        let mut out = String::new();
        out.push_str("# Metrics comparison\n\n");
        out.push_str(&format!("- old: {}\n", old.describe()));
        out.push_str(&format!("- new: {}\n", new.describe()));
        if self.deterministic_match() {
            out.push_str(&format!(
                "- deterministic: MATCH ({} keys identical)\n",
                self.matched_keys
            ));
        } else {
            out.push_str(&format!(
                "- deterministic: DRIFT in {} keys ({} identical)\n",
                self.drift.len(),
                self.matched_keys
            ));
        }
        out.push_str(&format!(
            "- wall-clock: {} spans compared, {} beyond x{:.2} tolerance (floor {} s)\n",
            self.wall.len(),
            self.wall_exceedances(),
            self.options.wall_ratio,
            self.options.wall_floor_s
        ));
        if !self.drift.is_empty() {
            out.push_str("\n## Deterministic drift\n\n");
            for d in &self.drift {
                out.push_str(&format!("- [{}] {}: {}\n", d.section, d.key, d.detail));
            }
        }
        let exceeding: Vec<&WallDelta> = self.wall.iter().filter(|w| w.exceeds).collect();
        if !exceeding.is_empty() {
            out.push_str("\n## Wall-clock deltas beyond tolerance (warnings)\n\n");
            for w in exceeding {
                out.push_str(&format!(
                    "- {}: {:.3} s -> {:.3} s (x{:.2})\n",
                    w.key, w.old_s, w.new_s, w.ratio
                ));
            }
        }
        if !self.wall_missing.is_empty() {
            out.push_str("\n## Spans present in only one run (informational)\n\n");
            for k in &self.wall_missing {
                out.push_str(&format!("- {k}\n"));
            }
        }
        out
    }
}

/// Accumulates deterministic-class comparison results section by
/// section: the drift list plus the matched-key count.
struct KeyDiff {
    drift: Vec<Drift>,
    matched: usize,
}

impl KeyDiff {
    /// Walk the union of two maps' keys, pushing a [`Drift`] per mismatch.
    fn diff_keys<T>(
        &mut self,
        section: &'static str,
        old: &BTreeMap<String, T>,
        new: &BTreeMap<String, T>,
        eq: impl Fn(&T, &T) -> bool,
        show: impl Fn(&T) -> String,
        detail: impl Fn(&T, &T) -> String,
    ) {
        for (k, ov) in old {
            match new.get(k) {
                None => self.drift.push(Drift {
                    section,
                    key: k.clone(),
                    detail: format!("removed (was {})", show(ov)),
                }),
                Some(nv) if eq(ov, nv) => self.matched += 1,
                Some(nv) => {
                    self.drift.push(Drift { section, key: k.clone(), detail: detail(ov, nv) })
                }
            }
        }
        for (k, nv) in new {
            if !old.contains_key(k) {
                self.drift.push(Drift {
                    section,
                    key: k.clone(),
                    detail: format!("added (now {})", show(nv)),
                });
            }
        }
    }
}

fn hist_eq(a: &Histogram, b: &Histogram) -> bool {
    a.bounds == b.bounds
        && a.counts == b.counts
        && a.overflow == b.overflow
        && a.nan == b.nan
        && a.count == b.count
        && a.finite == b.finite
        && feq(a.min, b.min)
        && feq(a.max, b.max)
}

fn hist_show(h: &Histogram) -> String {
    format!(
        "n={} min={} max={} p50={} p90={} p99={}",
        h.count,
        fmt_f(h.min),
        fmt_f(h.max),
        fmt_q(h.quantile(0.5)),
        fmt_q(h.quantile(0.9)),
        fmt_q(h.quantile(0.99))
    )
}

fn hist_detail(a: &Histogram, b: &Histogram) -> String {
    let mut parts = Vec::new();
    if a.bounds != b.bounds {
        parts.push(format!("bounds {:?} -> {:?}", a.bounds, b.bounds));
    }
    if a.counts != b.counts {
        let i = a
            .counts
            .iter()
            .zip(&b.counts)
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| a.counts.len().min(b.counts.len()));
        parts.push(format!(
            "bucket[{i}] {} -> {}",
            a.counts.get(i).map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
            b.counts.get(i).map(|c| c.to_string()).unwrap_or_else(|| "-".into())
        ));
    }
    for (name, x, y) in [
        ("overflow", a.overflow, b.overflow),
        ("nan", a.nan, b.nan),
        ("count", a.count, b.count),
        ("finite", a.finite, b.finite),
    ] {
        if x != y {
            parts.push(format!("{name} {x} -> {y}"));
        }
    }
    if !feq(a.min, b.min) {
        parts.push(format!("min {} -> {}", fmt_f(a.min), fmt_f(b.min)));
    }
    if !feq(a.max, b.max) {
        parts.push(format!("max {} -> {}", fmt_f(a.max), fmt_f(b.max)));
    }
    for (p, label) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
        let (qa, qb) = (a.quantile(p), b.quantile(p));
        let same = match (qa, qb) {
            (Some(x), Some(y)) => feq(x, y),
            (None, None) => true,
            _ => false,
        };
        if !same {
            parts.push(format!("{label} {} -> {}", fmt_q(qa), fmt_q(qb)));
        }
    }
    parts.join("; ")
}

fn series_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| feq(*x, *y))
}

fn series_detail(a: &[f64], b: &[f64]) -> String {
    if a.len() != b.len() {
        return format!("length {} -> {}", a.len(), b.len());
    }
    let i = a.iter().zip(b).position(|(x, y)| !feq(*x, *y)).expect("unequal series diverge");
    format!("diverges at index {i}: {} -> {}", fmt_f(a[i]), fmt_f(b[i]))
}

/// Compare two parsed snapshots: exact on the deterministic class,
/// ratio-with-tolerance on the wall-clock class.
pub fn diff_metrics(old: &MetricsDoc, new: &MetricsDoc, options: DiffOptions) -> MetricsDiff {
    let mut acc = KeyDiff { drift: Vec::new(), matched: 0 };
    if old.schema == new.schema {
        acc.matched += 1;
    } else {
        acc.drift.push(Drift {
            section: "schema",
            key: "schema".into(),
            detail: format!("{} -> {}", old.schema, new.schema),
        });
    }
    acc.diff_keys(
        "counters",
        &old.counters,
        &new.counters,
        |a, b| a == b,
        |v| v.to_string(),
        |a, b| format!("{a} -> {b} ({:+})", *b as i128 - *a as i128),
    );
    acc.diff_keys(
        "gauges",
        &old.gauges,
        &new.gauges,
        |a, b| feq(*a, *b),
        |v| fmt_f(*v),
        |a, b| format!("{} -> {}", fmt_f(*a), fmt_f(*b)),
    );
    acc.diff_keys("histograms", &old.histograms, &new.histograms, hist_eq, hist_show, hist_detail);
    acc.diff_keys(
        "series",
        &old.series,
        &new.series,
        |a, b| series_eq(a, b),
        |v| format!("{} values", v.len()),
        |a, b| series_detail(a, b),
    );
    let KeyDiff { drift, matched } = acc;

    let mut wall = Vec::new();
    let mut wall_missing = Vec::new();
    for (k, o) in &old.spans {
        match new.spans.get(k) {
            None => wall_missing.push(format!("{k} (only in old)")),
            Some(n) => {
                if o.total_s < options.wall_floor_s && n.total_s < options.wall_floor_s {
                    continue;
                }
                let ratio = if o.total_s > 0.0 { n.total_s / o.total_s } else { f64::INFINITY };
                let exceeds = !(1.0 / options.wall_ratio..=options.wall_ratio).contains(&ratio);
                wall.push(WallDelta {
                    key: k.clone(),
                    old_s: o.total_s,
                    new_s: n.total_s,
                    ratio,
                    exceeds,
                });
            }
        }
    }
    for k in new.spans.keys() {
        if !old.spans.contains_key(k) {
            wall_missing.push(format!("{k} (only in new)"));
        }
    }
    MetricsDiff { drift, matched_keys: matched, wall, wall_missing, options }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json(render_jobs: u64, fit_s: f64) -> String {
        format!(
            r#"{{
  "schema": "st-obs/v1",
  "scale": 0.004,
  "seed": 2024,
  "parallelism": 1,
  "deterministic": {{
    "counters": {{ "render.jobs": {render_jobs}, "datagen.records{{city=City-A}}": 1000 }},
    "gauges": {{ "bst.converged": 1.0 }},
    "histograms": {{
      "wire.bytes": {{
        "bounds": [1.0, 10.0],
        "counts": [3, 4],
        "overflow": 1,
        "nan": 0,
        "count": 8,
        "finite": 8,
        "min": 0.5,
        "max": 20.0
      }}
    }},
    "series": {{ "em.loglik": [1.0, 2.5, null] }}
  }},
  "wall_clock": {{
    "spans": {{
      "fit": {{ "count": 1, "total_s": {fit_s} }},
      "render": {{ "count": 1, "total_s": 2.0 }}
    }}
  }}
}}"#
        )
    }

    #[test]
    fn identical_documents_match() {
        let doc = MetricsDoc::parse(&sample_json(19, 1.0)).expect("parses");
        assert_eq!(doc.schema, "st-obs/v1");
        assert_eq!(doc.parallelism, Some(1));
        assert_eq!(doc.counters.len(), 2);
        // The `null` series element reads back as NaN ...
        assert!(doc.series["em.loglik"][2].is_nan());
        let diff = diff_metrics(&doc, &doc, DiffOptions::default());
        // ... and NaN == NaN under the serialized-view semantics.
        assert!(diff.deterministic_match(), "self-diff drifted: {:?}", diff.drift);
        // schema + 2 counters + 1 gauge + 1 histogram + 1 series.
        assert_eq!(diff.matched_keys, 6);
        assert_eq!(diff.wall_exceedances(), 0);
    }

    #[test]
    fn counter_and_histogram_changes_are_drift_with_drilldown() {
        let old = MetricsDoc::parse(&sample_json(19, 1.0)).expect("parses");
        let mut new = MetricsDoc::parse(&sample_json(20, 1.0)).expect("parses");
        new.histograms.get_mut("wire.bytes").expect("histogram").counts[1] = 5;
        new.histograms.get_mut("wire.bytes").expect("histogram").count = 9;
        new.series.remove("em.loglik");
        let diff = diff_metrics(&old, &new, DiffOptions::default());
        assert!(!diff.deterministic_match());
        assert_eq!(diff.drift.len(), 3);
        let report = diff.render(&old, &new);
        assert!(report.contains("[counters] render.jobs: 19 -> 20 (+1)"), "{report}");
        assert!(report.contains("bucket[1] 4 -> 5"), "{report}");
        assert!(report.contains("[series] em.loglik: removed (was 3 values)"), "{report}");
    }

    #[test]
    fn wall_clock_changes_warn_but_never_drift() {
        let old = MetricsDoc::parse(&sample_json(19, 1.0)).expect("parses");
        let new = MetricsDoc::parse(&sample_json(19, 9.0)).expect("parses");
        let diff = diff_metrics(&old, &new, DiffOptions::default());
        assert!(diff.deterministic_match(), "span timing must not be drift");
        assert_eq!(diff.wall_exceedances(), 1);
        let w = diff.wall.iter().find(|w| w.key == "fit").expect("fit delta");
        assert!(w.exceeds);
        assert!((w.ratio - 9.0).abs() < 1e-12);
        // Within the default x2 band: no warning.
        let ok = diff_metrics(
            &old,
            &MetricsDoc::parse(&sample_json(19, 1.5)).unwrap(),
            DiffOptions::default(),
        );
        assert_eq!(ok.wall_exceedances(), 0);
    }

    #[test]
    fn spans_below_the_floor_are_ignored() {
        let mut old = MetricsDoc::parse(&sample_json(19, 0.001)).expect("parses");
        let mut new = MetricsDoc::parse(&sample_json(19, 0.04)).expect("parses");
        // 40x apart, but both under the 0.05 s floor.
        old.spans.remove("render");
        new.spans.remove("render");
        let diff = diff_metrics(&old, &new, DiffOptions::default());
        assert!(diff.wall.is_empty(), "sub-floor span compared: {:?}", diff.wall);
    }

    #[test]
    fn schema_mismatch_and_parse_errors_are_loud() {
        let old = MetricsDoc::parse(&sample_json(19, 1.0)).expect("parses");
        let mut new = old.clone();
        new.schema = "st-obs/v2".into();
        let diff = diff_metrics(&old, &new, DiffOptions::default());
        assert_eq!(diff.drift[0].section, "schema");
        assert!(diff.drift[0].detail.contains("st-obs/v1 -> st-obs/v2"));

        assert!(MetricsDoc::parse("{}").is_err(), "schema is mandatory");
        assert!(MetricsDoc::parse("not json").unwrap_err().contains("invalid JSON"));
        let bad = sample_json(19, 1.0).replace("\"counts\": [3, 4]", "\"counts\": [3, -4]");
        assert!(MetricsDoc::parse(&bad).unwrap_err().contains("wire.bytes"));
    }
}
