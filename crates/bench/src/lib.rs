//! Shared driver used by the `repro` binary and the Criterion benches.
//!
//! [`run_all`] regenerates every table and figure of the paper at a chosen
//! scale and returns the artifacts; the binary writes them to disk, the
//! benches time individual pieces.
//!
//! Every stage has a parallel variant (`build_analyses_par`,
//! `run_all_par`) built on the deterministic chunked engine of
//! [`st_datagen::par`]: the report is byte-identical at every
//! parallelism level, only the wall-clock changes. Per-stage timings are
//! carried on [`ReproReport::timings`].
//!
//! The pipeline is **supervised** end to end (see DESIGN.md §"Fault
//! taxonomy and supervision contract"):
//!
//! * records flow through `st_speedtest::sanitize` before any model is
//!   fitted — dirty measurements are repaired or quarantined with
//!   per-reason counters instead of panicking downstream;
//! * every render job runs under `catch_unwind` with a per-attempt
//!   deadline and one retry; a job that still fails degrades to a
//!   placeholder artifact instead of aborting the run;
//! * [`render_report`] carries a `## Health` section (failed/retried
//!   jobs, quarantine counts by reason) so degradation is visible, and
//!   [`RunHealth::is_degraded`] lets the binary exit nonzero on it.
//!
//! The pipeline is also **observable** (DESIGN.md §"Observability"):
//! [`build_analyses_observed`] and [`run_all_observed`] thread an
//! [`st_obs::Registry`] through every stage. Each parallel unit (city,
//! campaign store, render job) records into its own sub-registry; the
//! coordinator merges them in fixed city/job order — the same fold as
//! the sanitize counters — so the deterministic metric class is
//! byte-identical at every parallelism level. Stage wall-clocks come
//! from the `generate`/`fit`/`derive`/`render` span tree, which keeps
//! feeding the same four numbers into [`StageTimings`] for
//! `BENCH_timings.json`. Observation is read-only: artifacts are
//! byte-identical with the registry enabled or disabled.
//!
//! Finally the pipeline has an **incremental front-end** (DESIGN.md
//! §"Segmented store"): [`build_analyses_ingest`] replays each
//! generated campaign into a [`st_speedtest::SegmentedStore`] as a
//! seed-scheduled stream of [`IngestOptions::chunk_rows`]-row chunks,
//! sanitizing per chunk and sealing immutable segments as the tail
//! fills. Segment boundaries are a pure function of the accepted-row
//! sequence and the seal threshold, so the rendered artifacts are
//! byte-identical to the batch path for any chunk plan — the
//! `ingest_identity` test pins the replay to the batch golden hash.

pub mod claims;
pub mod cli;
pub mod diff;
pub mod ledger;

use serde::Serialize;
use st_analysis::{
    cities, ext_latency, fig01, fig02, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11,
    fig12, fig13, table1, table2, table3, table4, CityAnalysis,
};
use st_datagen::{City, CityConfig, CityDataset, DirtyScenario};
use st_obs::{MetricsSnapshot, Registry};
use st_serve::{ContextService, ServeError, WarmInput, WarmOutput, WarmRenderer};
use st_speedtest::{sanitize, Measurement, SanitizeReport, SegmentedStore};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// One rendered artifact: an id, markdown/text body, and optional SVG.
#[derive(Clone)]
pub struct Artifact {
    /// Stable id ("fig09a", "table2", ...).
    pub id: String,
    /// Text rendering for the report.
    pub text: String,
    /// SVG document, when the artifact is a figure.
    pub svg: Option<String>,
    /// JSON payload of the underlying result.
    pub json: String,
}

/// Wall-clock seconds spent in each repro stage.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StageTimings {
    /// Dataset generation + sanitization (four cities).
    pub generate_s: f64,
    /// BST model fitting (four cities).
    pub fit_s: f64,
    /// Derived-column materialization across all campaign stores.
    pub derive_s: f64,
    /// Experiment rendering (tables, figures, SVG/JSON).
    pub render_s: f64,
}

/// One render job that failed past its retry and was degraded to a
/// placeholder artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct JobFailure {
    /// The job's stable label ("fig08", "appendix_b", ...).
    pub label: String,
    /// Why it failed ("panic: ...", "deadline exceeded", plus the retry's
    /// outcome).
    pub reason: String,
}

/// Supervision outcome of one repro run: what degraded, what retried,
/// and what the sanitizer did to the input records.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RunHealth {
    /// Render jobs dispatched.
    pub jobs_total: usize,
    /// Jobs that needed (and survived on) a retry.
    pub jobs_retried: usize,
    /// Jobs that failed both attempts and were degraded to placeholders.
    pub jobs_failed: usize,
    /// One entry per degraded job, in paper order.
    pub failures: Vec<JobFailure>,
    /// Merged record-sanitization counters across all campaigns.
    pub sanitize: SanitizeReport,
}

impl RunHealth {
    /// Whether any artifact was degraded to a placeholder. Quarantined
    /// records alone do not count — dropping dirty records is the
    /// sanitizer doing its job, not a degraded run.
    pub fn is_degraded(&self) -> bool {
        self.jobs_failed > 0
    }
}

/// Everything the repro run produces.
pub struct ReproReport {
    /// The scale the datasets were generated at.
    pub scale: f64,
    /// The seed used.
    pub seed: u64,
    /// All artifacts, in paper order (placeholders included).
    pub artifacts: Vec<Artifact>,
    /// Headline numbers for the summary (label, value).
    pub headlines: Vec<(String, String)>,
    /// Per-stage wall-clock timings of this run.
    pub timings: StageTimings,
    /// Supervision and sanitization outcome.
    pub health: RunHealth,
    /// Metrics snapshot of the run, when it was driven through
    /// [`run_all_observed`] with an enabled registry. `None` on the
    /// plain entry points.
    pub metrics: Option<MetricsSnapshot>,
}

/// Supervision knobs for [`run_all_supervised`].
#[derive(Debug, Clone)]
pub struct SuperviseOptions {
    /// Worker threads for the render stage.
    pub parallelism: usize,
    /// Per-attempt deadline for one render job. A job that neither
    /// returns nor panics within this window is abandoned (its thread is
    /// detached and drains on its own) and retried once.
    pub deadline: Duration,
    /// Fault injection: labels of jobs forced to panic on every attempt
    /// (they degrade to placeholders). For tests and the CI smoke job.
    pub fail_jobs: Vec<String>,
    /// Fault injection: labels of jobs forced to panic on their first
    /// attempt only (they succeed on retry).
    pub flaky_jobs: Vec<String>,
    /// Fault injection: labels of jobs that stall well past any sane
    /// deadline before returning empty output.
    pub hang_jobs: Vec<String>,
}

impl Default for SuperviseOptions {
    fn default() -> Self {
        SuperviseOptions {
            parallelism: 1,
            deadline: Duration::from_secs(300),
            fail_jobs: Vec::new(),
            flaky_jobs: Vec::new(),
            hang_jobs: Vec::new(),
        }
    }
}

/// Map `items` through `f` on up to `workers` scoped threads, preserving
/// item order in the output. `f` gets the item's index and the item.
fn par_map<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let (job_tx, job_rx) = crossbeam::channel::bounded::<(usize, T)>(workers);
    let (out_tx, out_rx) = crossbeam::channel::unbounded::<(usize, U)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let out_tx = out_tx.clone();
            let f = &f;
            scope.spawn(move || {
                for (i, item) in job_rx.iter() {
                    if out_tx.send((i, f(i, item))).is_err() {
                        return;
                    }
                }
            });
        }
        drop(job_rx);
        drop(out_tx);
        // Feed the bounded queue; workers drain it as they go.
        for pair in items.into_iter().enumerate() {
            assert!(job_tx.send(pair).is_ok(), "workers alive while feeding");
        }
        drop(job_tx);
        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, out) in out_rx.iter() {
            slots[i] = Some(out);
        }
        slots.into_iter().map(|s| s.expect("every job completed")).collect()
    })
}

fn cdf_artifact(r: &st_analysis::CdfResult) -> Artifact {
    Artifact {
        id: r.id.clone(),
        text: r.render(),
        svg: Some(r.to_svg()),
        json: serde_json::to_string_pretty(r).expect("serializable result"),
    }
}

fn table_artifact(t: &st_analysis::TableResult) -> Artifact {
    Artifact {
        id: t.id.clone(),
        text: t.render(),
        svg: None,
        json: serde_json::to_string_pretty(t).expect("serializable result"),
    }
}

fn density_artifact(d: &st_analysis::results::DensityResult) -> Artifact {
    Artifact {
        id: d.id.clone(),
        text: d.render(),
        svg: Some(d.to_svg()),
        json: serde_json::to_string_pretty(d).expect("serializable result"),
    }
}

/// Generate all four cities and fit the per-campaign BST models.
pub fn build_analyses(scale: f64, seed: u64) -> Arc<Vec<CityAnalysis>> {
    build_analyses_par(scale, seed, 1).0
}

/// Like [`build_analyses`], with the four generate jobs and then the four
/// fit jobs spread over up to `parallelism` worker threads. Leftover
/// workers parallelize *inside* each city's campaign loops.
///
/// Output is identical at every parallelism level; the returned
/// [`StageTimings`] has the generate and fit wall-clocks filled in
/// (`render_s` stays 0 until [`run_all_par`]).
pub fn build_analyses_par(
    scale: f64,
    seed: u64,
    parallelism: usize,
) -> (Arc<Vec<CityAnalysis>>, StageTimings) {
    let (analyses, timings, _) = build_analyses_sanitized(scale, seed, parallelism, None);
    (analyses, timings)
}

/// The fault-tolerant analysis builder: generate the four cities,
/// optionally corrupt the campaigns with `dirty` (ground-truth labeled
/// dirty records, see [`st_datagen::faults`]), run every record through
/// the sanitizer, and fit BST on what survives.
///
/// The sanitize counters are merged across cities in city order, so the
/// returned [`SanitizeReport`] — like the datasets themselves — is
/// identical at every parallelism level.
pub fn build_analyses_sanitized(
    scale: f64,
    seed: u64,
    parallelism: usize,
    dirty: Option<&DirtyScenario>,
) -> (Arc<Vec<CityAnalysis>>, StageTimings, SanitizeReport) {
    build_analyses_observed(scale, seed, parallelism, dirty, &Registry::disabled())
}

/// Like [`build_analyses_sanitized`], recording pipeline metrics and
/// stage spans into `obs` (see DESIGN.md §"Observability").
///
/// Each city runs against its own sub-registry inside the worker
/// closure; the coordinator merges the four sub-registries **in city
/// order** — exactly how the [`SanitizeReport`]s are folded — so every
/// deterministic metric (record counts, quarantine tallies, EM
/// iterations, KDE grid evaluations, ...) is byte-identical at every
/// parallelism level. Wall-clock spans (`generate`, `fit`, `derive`,
/// plus one child per city) are recorded too but excluded from that
/// contract.
///
/// Observation is read-only: the returned analyses are byte-identical
/// whether `obs` is enabled or [`Registry::disabled`].
pub fn build_analyses_observed(
    scale: f64,
    seed: u64,
    parallelism: usize,
    dirty: Option<&DirtyScenario>,
    obs: &Registry,
) -> (Arc<Vec<CityAnalysis>>, StageTimings, SanitizeReport) {
    let parallelism = parallelism.max(1);
    let cities = City::all();
    let city_workers = parallelism.min(cities.len());
    // Workers beyond one-per-city go into each city's chunked loops.
    let inner = parallelism.div_ceil(city_workers);
    let dirty = dirty.copied();

    obs.event("stage.start", "lifecycle", &[("stage", "generate")]);
    let gen_span = obs.span("generate");
    let prepared = par_map(cities.to_vec(), city_workers, |_, city| {
        let sub = obs.sub();
        let city_span = sub.span(&format!("generate/{}", city.label()));
        let mut ds = CityDataset::generate_with_parallelism(city, scale, seed, inner);
        let dirty_labels = dirty.as_ref().map(|scenario| ds.inject_dirty(scenario, seed));
        ds.observe(&sub);
        if let Some(labels) = &dirty_labels {
            ds.observe_dirty(&sub, labels);
        }
        let city_label = ds.config.city.label();
        let mut report = SanitizeReport::default();
        for (campaign, records) in
            [("ookla", &mut ds.ookla), ("mlab", &mut ds.mlab), ("mba", &mut ds.mba)]
        {
            let (kept, r) = sanitize(std::mem::take(records));
            *records = kept;
            r.record(&sub, &[("campaign", campaign), ("city", city_label)]);
            report.merge(&r);
        }
        city_span.stop();
        (ds, report, sub)
    });
    let generate_s = gen_span.stop();
    obs.event("stage.end", "lifecycle", &[("stage", "generate")]);

    let mut sanitize_total = SanitizeReport::default();
    let mut datasets: Vec<CityDataset> = Vec::with_capacity(prepared.len());
    for (ds, report, sub) in prepared {
        sanitize_total.merge(&report);
        obs.merge(&sub);
        datasets.push(ds);
    }

    obs.event("stage.start", "lifecycle", &[("stage", "fit")]);
    let fit_span = obs.span("fit");
    let fitted = par_map(datasets, city_workers, |_, ds| {
        let sub = obs.sub();
        let city_span = sub.span(&format!("fit/{}", ds.config.city.label()));
        let analysis = CityAnalysis::new_observed(ds, seed ^ 0x5eed, &sub);
        city_span.stop();
        (analysis, sub)
    });
    let fit_s = fit_span.stop();
    obs.event("stage.end", "lifecycle", &[("stage", "fit")]);
    let mut analyses: Vec<CityAnalysis> = Vec::with_capacity(fitted.len());
    for (analysis, sub) in fitted {
        obs.merge(&sub);
        analyses.push(analysis);
    }

    let derive_s = derive_stage(&analyses, parallelism, obs);

    (
        Arc::new(analyses),
        StageTimings { generate_s, fit_s, derive_s, render_s: 0.0 },
        sanitize_total,
    )
}

/// The derive stage shared by the batch and ingest builders: materialize
/// every store's lazy derived columns up front so the render jobs only
/// ever read memoized slices. Each column is a pure function of the base
/// columns, so building them in parallel (one job per campaign, city
/// order preserved by `par_map`) cannot change their contents.
fn derive_stage(analyses: &[CityAnalysis], parallelism: usize, obs: &Registry) -> f64 {
    obs.event("stage.start", "lifecycle", &[("stage", "derive")]);
    let derive_span = obs.span("derive");
    let stores: Vec<(&str, &str, &st_speedtest::SegmentedStore)> = analyses
        .iter()
        .flat_map(|a| {
            let city = a.config.city.label();
            [("ookla", city, &a.ookla), ("mlab", city, &a.mlab), ("mba", city, &a.mba)]
        })
        .collect();
    let subs = par_map(stores, parallelism, |_, (campaign, city, store)| {
        let sub = obs.sub();
        store.materialize_derived();
        store.observe(&sub, &[("campaign", campaign), ("city", city)]);
        sub
    });
    let derive_s = derive_span.stop();
    obs.event("stage.end", "lifecycle", &[("stage", "derive")]);
    for sub in &subs {
        obs.merge(sub);
    }
    derive_s
}

/// Knobs of the incremental ingest front-end ([`build_analyses_ingest`]).
#[derive(Debug, Clone, Copy)]
pub struct IngestOptions {
    /// Rows per replayed chunk.
    pub chunk_rows: usize,
    /// Sealed-segment size threshold of each store's mutable tail.
    pub seal_rows: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions { chunk_rows: 2048, seal_rows: st_speedtest::DEFAULT_SEAL_ROWS }
    }
}

/// What the ingest stage did, summed over all campaign streams.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct IngestStats {
    /// Chunks appended across the twelve campaign streams.
    pub chunks: u64,
    /// Rows offered to the incremental sanitizer.
    pub rows: u64,
    /// Sealed segments across all stores after `freeze`.
    pub segments: usize,
    /// Wall-clock seconds of the ingest stage.
    pub ingest_s: f64,
}

/// SplitMix64 step — the ingest scheduler's whole PRNG. Keeping it local
/// (rather than an `StdRng`) pins the chunk interleave to a documented
/// three-line recurrence that cannot drift under a rand upgrade.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Split one campaign's records into `chunk_rows`-row chunks, preserving
/// stream order. Shared by the `ingest` replay and the serve replay so
/// both front-ends see the exact same chunk plan.
pub fn split_chunks(records: Vec<Measurement>, chunk_rows: usize) -> VecDeque<Vec<Measurement>> {
    assert!(chunk_rows > 0, "chunk_rows must be >= 1");
    let mut chunks = VecDeque::new();
    let mut it = records.into_iter();
    loop {
        let chunk: Vec<Measurement> = it.by_ref().take(chunk_rows).collect();
        if chunk.is_empty() {
            return chunks;
        }
        chunks.push_back(chunk);
    }
}

/// The seed-scheduled chunk interleave of one city's campaign streams —
/// a pure function of `(seed, city index, pick sequence)`; worker
/// interleaving and wall-clock never feed into it. Both the `ingest`
/// replay and the serve replay draw from this schedule, which is what
/// makes their accepted-row sequences (and therefore the fitted models)
/// identical.
#[derive(Debug, Clone)]
pub struct ReplaySchedule {
    state: u64,
}

impl ReplaySchedule {
    /// Schedule for city number `city_index` under `seed`.
    pub fn new(seed: u64, city_index: usize) -> Self {
        ReplaySchedule { state: seed ^ (city_index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    /// Pick which of `live` still-nonempty streams sends next.
    pub fn pick(&mut self, live: usize) -> usize {
        assert!(live > 0, "pick needs a live stream");
        (splitmix64(&mut self.state) % live as u64) as usize
    }
}

/// Per-chunk ingest latency buckets, seconds (wall-clock class).
const INGEST_CHUNK_BOUNDS: &[f64] =
    &[0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1.0];

/// Like [`build_analyses_observed`] on a pristine generator, but the
/// campaigns are *replayed* into [`st_speedtest::SegmentedStore`]s as
/// chunk streams instead of being wrapped wholesale: each city's three
/// campaigns are split into `chunk_rows`-row chunks and appended in a
/// seed-scheduled interleave (SplitMix64 over the live streams), running
/// the sanitizer incrementally per chunk and sealing immutable segments
/// every `seal_rows` accepted rows.
///
/// Chunking never reorders a store's own stream and the interleave is a
/// pure function of `(seed, city, chunk plan)`, so the frozen stores hold
/// exactly the accepted rows of the batch path and the fits — which
/// consume gathered, contiguous values — are bit-identical: the rendered
/// artifacts match the batch pipeline byte for byte at any `chunk_rows`,
/// any `seal_rows`, and any `parallelism`.
pub fn build_analyses_ingest(
    scale: f64,
    seed: u64,
    parallelism: usize,
    opts: IngestOptions,
    obs: &Registry,
) -> (Arc<Vec<CityAnalysis>>, StageTimings, SanitizeReport, IngestStats) {
    assert!(opts.chunk_rows > 0, "chunk_rows must be >= 1");
    let parallelism = parallelism.max(1);
    let cities = City::all();
    let city_workers = parallelism.min(cities.len());
    let inner = parallelism.div_ceil(city_workers);

    obs.event("stage.start", "lifecycle", &[("stage", "generate")]);
    let gen_span = obs.span("generate");
    let generated = par_map(cities.to_vec(), city_workers, |_, city| {
        let sub = obs.sub();
        let city_span = sub.span(&format!("generate/{}", city.label()));
        let ds = CityDataset::generate_with_parallelism(city, scale, seed, inner);
        ds.observe(&sub);
        city_span.stop();
        (ds, sub)
    });
    let generate_s = gen_span.stop();
    obs.event("stage.end", "lifecycle", &[("stage", "generate")]);
    let mut datasets = Vec::with_capacity(generated.len());
    for (ds, sub) in generated {
        obs.merge(&sub);
        datasets.push(ds);
    }

    obs.event("stage.start", "lifecycle", &[("stage", "ingest")]);
    let ingest_span = obs.span("ingest");
    let ingested = par_map(datasets, city_workers, |ci, ds| {
        let sub = obs.sub();
        let city = ds.config.city.label();
        let city_span = sub.span(&format!("ingest/{city}"));
        let CityDataset { config, ookla, mlab, mba, .. } = ds;

        let mut streams = [
            (
                "ookla",
                split_chunks(ookla, opts.chunk_rows),
                SegmentedStore::builder(opts.seal_rows),
            ),
            ("mlab", split_chunks(mlab, opts.chunk_rows), SegmentedStore::builder(opts.seal_rows)),
            ("mba", split_chunks(mba, opts.chunk_rows), SegmentedStore::builder(opts.seal_rows)),
        ];

        // The schedule is a pure function of (seed, city index, chunk
        // plan); worker interleaving and wall-clock never feed into it.
        let mut sched = ReplaySchedule::new(seed, ci);
        let mut stats = IngestStats::default();
        loop {
            let live: Vec<usize> =
                (0..streams.len()).filter(|&k| !streams[k].1.is_empty()).collect();
            if live.is_empty() {
                break;
            }
            let k = live[sched.pick(live.len())];
            let (campaign, queue, store) = &mut streams[k];
            let chunk = queue.pop_front().expect("stream is live");
            let t0 = std::time::Instant::now();
            let cs = store.append_chunk(chunk).expect("tail stores accept chunks until frozen");
            sub.observe_wall(
                "ingest.chunk_seconds",
                &[("city", city)],
                t0.elapsed().as_secs_f64(),
                INGEST_CHUNK_BOUNDS,
            );
            sub.inc("ingest.chunks", &[("campaign", campaign), ("city", city)]);
            for (outcome, n) in
                [("clean", cs.clean), ("repaired", cs.repaired), ("quarantined", cs.quarantined)]
            {
                sub.add("ingest.rows", &[("outcome", outcome)], n);
            }
            stats.chunks += 1;
            stats.rows += cs.rows_in as u64;
        }

        let mut report = SanitizeReport::default();
        let mut stores = Vec::with_capacity(streams.len());
        for (campaign, _, mut store) in streams {
            store.freeze().expect("ingest freezes each store exactly once");
            store.report().record(&sub, &[("campaign", campaign), ("city", city)]);
            report.merge(store.report());
            stats.segments += store.num_segments();
            stores.push(store);
        }
        city_span.stop();
        (config, stores, report, stats, sub)
    });
    let ingest_s = ingest_span.stop();
    obs.event("stage.end", "lifecycle", &[("stage", "ingest")]);

    let mut sanitize_total = SanitizeReport::default();
    let mut stats_total = IngestStats { ingest_s, ..IngestStats::default() };
    let mut prepared = Vec::with_capacity(ingested.len());
    for (config, stores, report, stats, sub) in ingested {
        obs.merge(&sub);
        sanitize_total.merge(&report);
        stats_total.chunks += stats.chunks;
        stats_total.rows += stats.rows;
        stats_total.segments += stats.segments;
        prepared.push((config, stores));
    }

    let prepared = prepared
        .into_iter()
        .map(|(config, mut stores)| {
            let mba = stores.pop().expect("three campaign stores");
            let mlab = stores.pop().expect("three campaign stores");
            let ookla = stores.pop().expect("three campaign stores");
            (config, ookla, mlab, mba)
        })
        .collect();
    let (analyses, fit_s) = fit_stage(prepared, seed, city_workers, obs);

    let derive_s = derive_stage(&analyses, parallelism, obs);

    (
        Arc::new(analyses),
        StageTimings { generate_s, fit_s, derive_s, render_s: 0.0 },
        sanitize_total,
        stats_total,
    )
}

/// The fit stage shared by the `ingest` replay and the serve replay:
/// one [`CityAnalysis::from_stores`] per city (each against its own
/// sub-registry, merged back in city order) with the batch fit seed
/// derivation (`seed ^ 0x5eed`). Keeping this a single function is what
/// lets the serve-identity suite claim the service's final fit *is* the
/// batch fit.
fn fit_stage(
    prepared: Vec<(CityConfig, SegmentedStore, SegmentedStore, SegmentedStore)>,
    seed: u64,
    city_workers: usize,
    obs: &Registry,
) -> (Vec<CityAnalysis>, f64) {
    obs.event("stage.start", "lifecycle", &[("stage", "fit")]);
    let fit_span = obs.span("fit");
    let fitted = par_map(prepared, city_workers, |_, (config, ookla, mlab, mba)| {
        let sub = obs.sub();
        let city_span = sub.span(&format!("fit/{}", config.city.label()));
        let analysis = CityAnalysis::from_stores(config, ookla, mlab, mba, seed ^ 0x5eed, &sub);
        city_span.stop();
        (analysis, sub)
    });
    let fit_s = fit_span.stop();
    obs.event("stage.end", "lifecycle", &[("stage", "fit")]);
    let mut analyses: Vec<CityAnalysis> = Vec::with_capacity(fitted.len());
    for (analysis, sub) in fitted {
        obs.merge(&sub);
        analyses.push(analysis);
    }
    (analyses, fit_s)
}

/// What the serve replay did, summed over all campaign streams.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ServeStats {
    /// Chunks streamed into the service.
    pub chunks: u64,
    /// Rows offered to the incremental sanitizer.
    pub rows: u64,
    /// Sealed segments across all frozen stores after drain.
    pub segments: u64,
    /// Warm epochs published while streaming — a pure function of the
    /// accepted-row total and the epoch size (the final epoch adds one
    /// more at `publish_final`).
    pub epochs: u64,
    /// Wall-clock seconds of the streaming stage (chunks + drain).
    pub ingest_s: f64,
}

/// The warm-analysis renderer the `serve` binary injects into
/// [`st_serve::ContextService`]: fit whatever rows have sealed with the
/// batch fit path (`st_analysis::warm`) and render headline
/// figures/tables. City configs are reconstructed from `(scale, city)`
/// — [`CityConfig::at_scale`] is pure — so the closure captures no
/// dataset state. The fit seed is the batch derivation (`seed ^
/// 0x5eed`): a warm fit over the *complete* sealed stream is the batch
/// fit, which is what the serve-identity suite pins.
pub fn make_warm_renderer(scale: f64, seed: u64) -> WarmRenderer {
    Arc::new(move |input: &WarmInput| {
        let mut analyses = Vec::new();
        for wc in &input.cities {
            let Some(city) = City::all().iter().copied().find(|c| c.label() == wc.city) else {
                continue; // non-city partitions (e.g. "wire") carry no warm fit
            };
            let stream = |name: &str| {
                wc.campaigns
                    .iter()
                    .find(|(c, _)| c == name)
                    .map(|(_, rows)| rows.as_slice())
                    .unwrap_or(&[])
            };
            analyses.push(st_analysis::warm::warm_fit(
                CityConfig::at_scale(city, scale),
                stream("ookla"),
                stream("mlab"),
                stream("mba"),
                seed ^ 0x5eed,
            ));
        }
        WarmOutput {
            headlines: st_analysis::warm::warm_headlines(&analyses),
            tables: st_analysis::warm::warm_tables(&analyses),
        }
    })
}

/// What the serve replay hands back: the fitted analyses, stage
/// timings, the deterministic-partition sanitize totals, and the
/// stream statistics for the ledger row.
pub type ServeBuildOutput = (Arc<Vec<CityAnalysis>>, StageTimings, SanitizeReport, ServeStats);

/// Like [`build_analyses_ingest`], but the chunk stream flows through a
/// running [`ContextService`] instead of thread-local stores: the same
/// generated campaigns, the same [`split_chunks`] plan, the same
/// [`ReplaySchedule`] interleave — only the appends go through the
/// service's sharded ingest path (incremental sanitize, segment
/// sealing, epoch publication). After the streams run dry the service
/// is drained and the frozen stores flow through the shared
/// [`fit_stage`] and derive stage, so the final analyses are the batch
/// analyses byte for byte.
///
/// `service` must have one deterministic partition per generated city
/// (label-matched) with the standard `ookla`/`mlab`/`mba` campaigns —
/// [`st_serve::PartitionSpec::city`] per [`City::all`] entry. Extra
/// partitions (e.g. the wire partition) are left untouched by the
/// replay but are frozen by the drain like everything else.
///
/// The returned [`SanitizeReport`] covers the deterministic partitions
/// only; their per-campaign `sanitize.*` counters are recorded into
/// `obs` in partition order after the drain, mirroring the ingest
/// path's freeze-time recording. Wire-partition rows stay out of the
/// deterministic metric class entirely (DESIGN.md §18).
pub fn build_analyses_serve(
    scale: f64,
    seed: u64,
    parallelism: usize,
    chunk_rows: usize,
    service: &ContextService,
    obs: &Registry,
) -> Result<ServeBuildOutput, ServeError> {
    assert!(chunk_rows > 0, "chunk_rows must be >= 1");
    let parallelism = parallelism.max(1);
    let cities = City::all();
    let city_workers = parallelism.min(cities.len());
    let inner = parallelism.div_ceil(city_workers);

    obs.event("stage.start", "lifecycle", &[("stage", "generate")]);
    let gen_span = obs.span("generate");
    let generated = par_map(cities.to_vec(), city_workers, |_, city| {
        let sub = obs.sub();
        let city_span = sub.span(&format!("generate/{}", city.label()));
        let ds = CityDataset::generate_with_parallelism(city, scale, seed, inner);
        ds.observe(&sub);
        city_span.stop();
        (ds, sub)
    });
    let generate_s = gen_span.stop();
    obs.event("stage.end", "lifecycle", &[("stage", "generate")]);
    let mut datasets = Vec::with_capacity(generated.len());
    for (ds, sub) in generated {
        obs.merge(&sub);
        datasets.push(ds);
    }

    obs.event("stage.start", "lifecycle", &[("stage", "ingest")]);
    let ingest_span = obs.span("ingest");
    let streamed = par_map(datasets, city_workers, |ci, ds| {
        let city = ds.config.city.label();
        let CityDataset { config, ookla, mlab, mba, .. } = ds;
        let mut streams = [
            ("ookla", split_chunks(ookla, chunk_rows)),
            ("mlab", split_chunks(mlab, chunk_rows)),
            ("mba", split_chunks(mba, chunk_rows)),
        ];
        let mut sched = ReplaySchedule::new(seed, ci);
        let mut stats = ServeStats::default();
        loop {
            let live: Vec<usize> =
                (0..streams.len()).filter(|&k| !streams[k].1.is_empty()).collect();
            if live.is_empty() {
                break;
            }
            let (campaign, queue) = &mut streams[live[sched.pick(live.len())]];
            let chunk = queue.pop_front().expect("stream is live");
            match service.ingest_chunk(city, campaign, chunk) {
                Ok(receipt) => {
                    stats.chunks += 1;
                    stats.rows += receipt.stats.rows_in as u64;
                }
                Err(e) => return (config, stats, Some(e)),
            }
        }
        (config, stats, None)
    });
    let mut stats_total = ServeStats::default();
    let mut configs = Vec::with_capacity(streamed.len());
    for (config, stats, err) in streamed {
        if let Some(e) = err {
            return Err(e);
        }
        stats_total.chunks += stats.chunks;
        stats_total.rows += stats.rows;
        configs.push(config);
    }

    let drained = service.drain()?;
    stats_total.ingest_s = ingest_span.stop();
    obs.event("stage.end", "lifecycle", &[("stage", "ingest")]);
    stats_total.segments = drained.segments;
    stats_total.epochs = service.current_epoch().epoch;

    // Post-drain, partition order: record the deterministic partitions'
    // sanitize taxonomy exactly like the ingest path does at freeze.
    let mut sanitize_total = SanitizeReport::default();
    let mut by_city: std::collections::BTreeMap<String, Vec<(String, SegmentedStore)>> =
        std::collections::BTreeMap::new();
    for part in drained.partitions {
        if !part.deterministic {
            continue;
        }
        for (campaign, store) in &part.stores {
            store.report().record(obs, &[("campaign", campaign), ("city", &part.city)]);
            sanitize_total.merge(store.report());
        }
        by_city.insert(part.city, part.stores);
    }

    let mut prepared = Vec::with_capacity(configs.len());
    for config in configs {
        let label = config.city.label();
        let stores =
            by_city.remove(label).ok_or_else(|| ServeError::UnknownCity(label.to_string()))?;
        let mut map: std::collections::BTreeMap<String, SegmentedStore> =
            stores.into_iter().collect();
        let mut take = |name: &str| {
            map.remove(name).ok_or_else(|| ServeError::UnknownCampaign {
                city: label.to_string(),
                campaign: name.to_string(),
            })
        };
        let (ookla, mlab, mba) = (take("ookla")?, take("mlab")?, take("mba")?);
        prepared.push((config, ookla, mlab, mba));
    }
    let (analyses, fit_s) = fit_stage(prepared, seed, city_workers, obs);

    let derive_s = derive_stage(&analyses, parallelism, obs);

    Ok((
        Arc::new(analyses),
        StageTimings { generate_s, fit_s, derive_s, render_s: 0.0 },
        sanitize_total,
        stats_total,
    ))
}

/// What one render job yields: its artifacts and headlines, in paper
/// order within the job.
type JobOut = (Vec<Artifact>, Vec<(String, String)>);

/// A render job: shared so the supervisor can re-dispatch it for the
/// retry attempt, `'static` so an attempt can run on its own watchdogged
/// thread.
type RenderJob = Arc<dyn Fn() -> JobOut + Send + Sync + 'static>;

/// Build one labeled job from a slice-level closure.
fn job<F>(label: &str, analyses: &Arc<Vec<CityAnalysis>>, f: F) -> (String, RenderJob)
where
    F: Fn(&[CityAnalysis]) -> JobOut + Send + Sync + 'static,
{
    let analyses = Arc::clone(analyses);
    (label.to_string(), Arc::new(move || f(&analyses)))
}

/// The full experiment suite as independent labeled render jobs. Job
/// order is paper order; concatenating the outputs job by job reproduces
/// the sequential report exactly.
fn render_jobs(analyses: &Arc<Vec<CityAnalysis>>) -> Vec<(String, RenderJob)> {
    let mut jobs = Vec::new();

    // Table 1.
    jobs.push(job("table1", analyses, |all| {
        let refs: Vec<&CityAnalysis> = all.iter().collect();
        (vec![table_artifact(&table1::run(&refs))], vec![])
    }));

    // §2 cross-city comparison.
    jobs.push(job("cities", analyses, |all| {
        let all_refs: Vec<&CityAnalysis> = all.iter().collect();
        let (cities_table, _) = cities::run(&all_refs);
        (vec![table_artifact(&cities_table)], vec![])
    }));

    // Fig 1 + 2.
    jobs.push(job("fig01", analyses, |all| {
        let f1 = fig01::run(&all[0]);
        let headline = (
            "fig01 uncontextualized median (Mbps)".into(),
            format!("{:.1}", f1.medians.first().copied().unwrap_or(f64::NAN)),
        );
        (vec![cdf_artifact(&f1)], vec![headline])
    }));
    jobs.push(job("fig02", analyses, |all| {
        let f2 = fig02::run(&all[0]);
        let mut headlines = Vec::new();
        if f2.medians.len() == 2 {
            headlines.push((
                "fig02 consistency medians (down / up)".into(),
                format!("{:.2} / {:.2}", f2.medians[0], f2.medians[1]),
            ));
        }
        (vec![cdf_artifact(&f2)], headlines)
    }));

    // Table 2 across all states.
    jobs.push(job("table2", analyses, |all| {
        let refs: Vec<&CityAnalysis> = all.iter().collect();
        let (t2, stats) = table2::run(&refs);
        let headlines = stats
            .iter()
            .map(|s| {
                (
                    format!("table2 {} upload accuracy", s.state),
                    format!("{:.2}%", s.upload_accuracy * 100.0),
                )
            })
            .collect();
        (vec![table_artifact(&t2)], headlines)
    }));

    // Figs 4-7 and tables 3-4 (City/State-A) plus appendix variants.
    jobs.push(job("fig04", analyses, |all| (vec![density_artifact(&fig04::run(&all[0]))], vec![])));
    jobs.push(job("fig05", analyses, |all| {
        (fig05::run(&all[0]).iter().map(density_artifact).collect(), vec![])
    }));
    jobs.push(job("fig06", analyses, |all| (vec![density_artifact(&fig06::run(&all[0]))], vec![])));
    jobs.push(job("table3", analyses, |all| {
        let (t3, _) = table3::run(&all[0]);
        (vec![table_artifact(&t3)], vec![])
    }));
    jobs.push(job("fig07", analyses, |all| {
        (fig07::run(&all[0]).iter().map(density_artifact).collect(), vec![])
    }));
    jobs.push(job("table4", analyses, |all| {
        let (t4, _) = table4::run(&all[0]);
        (vec![table_artifact(&t4)], vec![])
    }));

    // Fig 8.
    jobs.push(job("fig08", analyses, |all| {
        let f8 = fig08::run(&all[0]);
        let headlines = f8
            .medians
            .first()
            .map(|m| ("fig08 alpha median".into(), format!("{m:.2}")))
            .into_iter()
            .collect();
        (vec![cdf_artifact(&f8)], headlines)
    }));

    // Fig 9 panels.
    jobs.push(job("fig09", analyses, |all| {
        (fig09::run(&all[0]).iter().map(cdf_artifact).collect(), vec![])
    }));

    // Fig 10.
    jobs.push(job("fig10", analyses, |all| {
        let (f10, shares) = fig10::run(&all[0]);
        let mut headlines = vec![(
            "fig10 local-bottleneck share".into(),
            format!("{:.0}%", shares.local_bottleneck_share * 100.0),
        )];
        if f10.medians.len() == 2 {
            headlines.push((
                "fig10 medians (best / bottleneck)".into(),
                format!("{:.2} / {:.2}", f10.medians[0], f10.medians[1]),
            ));
        }
        (vec![cdf_artifact(&f10)], headlines)
    }));

    // Figs 11-12.
    jobs.push(job("fig11", analyses, |all| {
        let (_vol, t11) = fig11::run(&all[0]);
        (vec![table_artifact(&t11)], vec![])
    }));
    jobs.push(job("fig12", analyses, |all| {
        (fig12::run_default(&all[0]).iter().map(cdf_artifact).collect(), vec![])
    }));

    // Fig 13.
    jobs.push(job("fig13", analyses, |all| {
        let (panels, gaps) = fig13::run(&all[0]);
        let headlines = gaps
            .iter()
            .map(|g| {
                (format!("fig13 {} Ookla/M-Lab median ratio", g.group), format!("{:.2}", g.ratio))
            })
            .collect();
        (panels.iter().map(cdf_artifact).collect(), headlines)
    }));

    // Extension: latency under load (not a paper figure; see the module
    // docs of `st_analysis::ext_latency`).
    jobs.push(job("ext_latency", analyses, |all| {
        let (lat_cdf, lat) = ext_latency::run(&all[0]);
        let headline = (
            "ext_latency medians (idle / loaded, ms)".into(),
            format!("{:.1} / {:.1}", lat.idle_median_ms, lat.loaded_median_ms),
        );
        (vec![cdf_artifact(&lat_cdf)], vec![headline])
    }));

    // Appendix: tables 5-7 (upload clusters for cities B-D) and the
    // per-state appendix densities.
    for i in 1..analyses.len() {
        let label = format!("appendix_{}", (b'a' + i as u8) as char);
        let analyses2 = Arc::clone(analyses);
        let f: RenderJob = Arc::new(move || {
            let city_a = &analyses2[i];
            let mut artifacts = Vec::new();
            let (mut t, _) = table3::run(city_a);
            t.id = format!("table{}", 4 + i); // tables 5, 6, 7
            artifacts.push(table_artifact(&t));
            let mut d = fig04::run(city_a);
            d.id = format!("fig14_{}", city_a.config.city.state_label().to_lowercase());
            artifacts.push(density_artifact(&d));
            for (j, mut dd) in fig05::run(city_a).into_iter().enumerate() {
                dd.id = format!(
                    "fig{}_{}",
                    15 + i, // figs 16, 17, 18
                    j
                );
                artifacts.push(density_artifact(&dd));
            }
            let mut f6 = fig06::run(city_a);
            f6.id = format!("fig15_{}", city_a.config.city.label().to_lowercase());
            artifacts.push(density_artifact(&f6));
            (artifacts, vec![])
        });
        jobs.push((label, f));
    }

    jobs
}

/// Outcome of one supervised attempt.
enum Attempt {
    Completed(Box<JobOut>),
    Panicked(String),
    TimedOut,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one attempt of `job` on a watchdogged thread. A panic is caught
/// and reported; a job that blows `deadline` is abandoned — its thread
/// keeps running detached and exits whenever the job returns, but its
/// result is discarded.
fn attempt_job(job: &RenderJob, deadline: Duration) -> Attempt {
    let (tx, rx) = mpsc::channel();
    let job = Arc::clone(job);
    let handle = std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| job()));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(deadline) {
        Ok(Ok(out)) => {
            let _ = handle.join();
            Attempt::Completed(Box::new(out))
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            Attempt::Panicked(panic_message(payload.as_ref()))
        }
        Err(_) => Attempt::TimedOut,
    }
}

fn describe(a: &Attempt) -> String {
    match a {
        Attempt::Completed(_) => "completed".to_string(),
        Attempt::Panicked(msg) => format!("panic: {msg}"),
        Attempt::TimedOut => "deadline exceeded".to_string(),
    }
}

/// The stand-in artifact emitted for a job that failed both attempts.
fn placeholder_artifact(label: &str, reason: &str) -> Artifact {
    #[derive(Serialize)]
    struct Placeholder {
        degraded: bool,
        job: String,
        reason: String,
    }
    let payload =
        Placeholder { degraded: true, job: label.to_string(), reason: reason.to_string() };
    Artifact {
        id: format!("degraded_{label}"),
        text: format!("DEGRADED: render job '{label}' failed ({reason}); artifacts omitted.\n"),
        svg: None,
        json: serde_json::to_string_pretty(&payload).expect("placeholder serializes"),
    }
}

/// Apply the fault-injection knobs of `opts` to a labeled job.
fn instrument_job(label: &str, inner: RenderJob, opts: &SuperviseOptions) -> RenderJob {
    if opts.fail_jobs.iter().any(|l| l == label) {
        let label = label.to_string();
        return Arc::new(move || panic!("injected failure in job '{label}'"));
    }
    if opts.flaky_jobs.iter().any(|l| l == label) {
        let armed = AtomicBool::new(true);
        let label = label.to_string();
        return Arc::new(move || {
            if armed.swap(false, Ordering::SeqCst) {
                panic!("injected flaky failure in job '{label}'");
            }
            inner()
        });
    }
    if opts.hang_jobs.iter().any(|l| l == label) {
        return Arc::new(move || {
            // Stall far past any test deadline, but bounded, so the
            // abandoned thread drains instead of leaking forever.
            for _ in 0..100 {
                std::thread::sleep(Duration::from_millis(100));
            }
            (Vec::new(), Vec::new())
        });
    }
    inner
}

/// Run every experiment; `analyses` must hold the four cities in order.
pub fn run_all(analyses: &Arc<Vec<CityAnalysis>>, scale: f64, seed: u64) -> ReproReport {
    run_all_par(analyses, scale, seed, 1, StageTimings::default())
}

/// Like [`run_all`], dispatching the render jobs to up to `parallelism`
/// workers through a bounded queue and stitching the results back into
/// paper order. Artifacts and headlines are identical at every
/// parallelism level.
///
/// `timings` carries the generate/fit wall-clocks from
/// [`build_analyses_par`]; this call fills in `render_s`.
pub fn run_all_par(
    analyses: &Arc<Vec<CityAnalysis>>,
    scale: f64,
    seed: u64,
    parallelism: usize,
    timings: StageTimings,
) -> ReproReport {
    let opts = SuperviseOptions { parallelism, ..SuperviseOptions::default() };
    run_all_supervised(analyses, scale, seed, &opts, timings, SanitizeReport::default())
}

/// The supervised render engine. Every job runs under `catch_unwind`
/// with a per-attempt deadline and one retry; a job that fails both
/// attempts degrades to a placeholder artifact at its paper-order
/// position and is recorded in [`ReproReport::health`]. The run always
/// completes; callers decide (via [`RunHealth::is_degraded`]) whether a
/// degraded run is acceptable.
///
/// `sanitize` carries the record-quarantine counters from
/// [`build_analyses_sanitized`]; they surface in the report's `## Health`
/// section.
pub fn run_all_supervised(
    analyses: &Arc<Vec<CityAnalysis>>,
    scale: f64,
    seed: u64,
    opts: &SuperviseOptions,
    timings: StageTimings,
    sanitize: SanitizeReport,
) -> ReproReport {
    run_all_observed(analyses, scale, seed, opts, timings, sanitize, &Registry::disabled())
}

/// Like [`run_all_supervised`], recording render metrics and spans into
/// `obs`. Each job runs against its own sub-registry (one
/// `render/<label>` span per job); the coordinator merges them in paper
/// order and adds the deterministic job counters (`render.jobs`,
/// `render.jobs_retried`, `render.jobs_failed`,
/// `render.artifacts{job}`, `render.headlines{job}`) while stitching
/// the outputs. With an enabled registry the returned
/// [`ReproReport::metrics`] carries the full snapshot of the run.
#[allow(clippy::too_many_arguments)]
pub fn run_all_observed(
    analyses: &Arc<Vec<CityAnalysis>>,
    scale: f64,
    seed: u64,
    opts: &SuperviseOptions,
    timings: StageTimings,
    sanitize: SanitizeReport,
    obs: &Registry,
) -> ReproReport {
    assert_eq!(analyses.len(), 4, "need all four cities");
    obs.event("stage.start", "lifecycle", &[("stage", "render")]);
    let render_span = obs.span("render");
    let jobs: Vec<(String, RenderJob)> = render_jobs(analyses)
        .into_iter()
        .map(|(label, inner)| {
            let instrumented = instrument_job(&label, inner, opts);
            (label, instrumented)
        })
        .collect();

    let deadline = opts.deadline;
    let outs = par_map(jobs, opts.parallelism.max(1), |_, (label, job)| {
        let sub = obs.sub();
        let job_span = sub.span(&format!("render/{label}"));
        let outcome = match attempt_job(&job, deadline) {
            Attempt::Completed(out) => (label, Ok(out), false),
            failed => {
                let first_reason = describe(&failed);
                match attempt_job(&job, deadline) {
                    Attempt::Completed(out) => (label, Ok(out), true),
                    retry_failed => {
                        let reason = format!("{first_reason}; retry: {}", describe(&retry_failed));
                        (label, Err(reason), true)
                    }
                }
            }
        };
        job_span.stop();
        (outcome, sub)
    });

    let mut artifacts = Vec::new();
    let mut headlines = Vec::new();
    let mut health = RunHealth { jobs_total: outs.len(), sanitize, ..RunHealth::default() };
    for ((label, result, retried), sub) in outs {
        obs.merge(&sub);
        obs.inc("render.jobs", &[]);
        match result {
            Ok(out) => {
                if retried {
                    health.jobs_retried += 1;
                    obs.inc("render.jobs_retried", &[]);
                    obs.event("render.retried", "lifecycle", &[("job", label.as_str())]);
                }
                let (art, heads) = *out;
                obs.add("render.artifacts", &[("job", label.as_str())], art.len() as u64);
                obs.add("render.headlines", &[("job", label.as_str())], heads.len() as u64);
                artifacts.extend(art);
                headlines.extend(heads);
            }
            Err(reason) => {
                health.jobs_failed += 1;
                obs.inc("render.jobs_failed", &[]);
                obs.event(
                    "render.degraded",
                    "lifecycle",
                    &[("job", label.as_str()), ("reason", reason.as_str())],
                );
                artifacts.push(placeholder_artifact(&label, &reason));
                health.failures.push(JobFailure { label, reason });
            }
        }
    }
    let timings = StageTimings { render_s: render_span.stop(), ..timings };
    obs.event("stage.end", "lifecycle", &[("stage", "render")]);
    let metrics = obs.is_enabled().then(|| obs.snapshot());
    ReproReport { scale, seed, artifacts, headlines, timings, health, metrics }
}

/// Render the `## Health` section body (shared by the report and tests;
/// wall-clock free, so it is byte-identical across parallelism levels).
pub fn render_health(health: &RunHealth) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "- render jobs: {} total, {} failed, {} retried\n",
        health.jobs_total, health.jobs_failed, health.jobs_retried
    ));
    let s = &health.sanitize;
    out.push_str(&format!(
        "- records: {} clean, {} repaired, {} quarantined\n",
        s.clean, s.repaired, s.quarantined
    ));
    if !s.quarantine_reasons.is_empty() {
        out.push_str("- quarantine reasons:\n");
        for (reason, count) in &s.quarantine_reasons {
            out.push_str(&format!("  - {reason}: {count}\n"));
        }
    }
    if !s.repair_reasons.is_empty() {
        out.push_str("- repair reasons:\n");
        for (reason, count) in &s.repair_reasons {
            out.push_str(&format!("  - {reason}: {count}\n"));
        }
    }
    if !health.failures.is_empty() {
        out.push_str("- degraded artifacts:\n");
        for f in &health.failures {
            out.push_str(&format!("  - {}: {}\n", f.label, f.reason));
        }
    }
    out
}

/// Render the `## Metrics` section body from the **deterministic**
/// metric class only. Wall-clock spans are deliberately excluded, so —
/// like the artifacts and the `## Health` section — the rendered text
/// is byte-identical at every parallelism level.
pub fn render_metrics(det: &st_obs::DeterministicMetrics) -> String {
    fn base(key: &str) -> &str {
        key.split('{').next().unwrap_or(key)
    }
    let mut out = String::new();
    out.push_str(&format!(
        "- deterministic keys: {} counters, {} gauges, {} histograms, {} series\n",
        det.counters.len(),
        det.gauges.len(),
        det.histograms.len(),
        det.series.len()
    ));
    let mut totals: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for (key, v) in &det.counters {
        *totals.entry(base(key)).or_default() += v;
    }
    if !totals.is_empty() {
        out.push_str("- counter totals (summed over labels):\n");
        for (name, total) in &totals {
            out.push_str(&format!("  - {name}: {total}\n"));
        }
    }
    if !det.histograms.is_empty() {
        let q = |h: &st_obs::Histogram, p: f64| {
            h.quantile(p).map(|v| format!("{v:.4}")).unwrap_or_else(|| "-".to_string())
        };
        out.push_str("- histograms:\n");
        for (key, h) in &det.histograms {
            out.push_str(&format!(
                "  - {key}: n={} min={} max={} p50={} p90={} p99={}\n",
                h.count,
                h.min,
                h.max,
                q(h, 0.5),
                q(h, 0.9),
                q(h, 0.99)
            ));
        }
    }
    out
}

/// Render the full markdown report.
pub fn render_report(report: &ReproReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Repro run (scale {}, seed {})\n\n## Headlines\n\n",
        report.scale, report.seed
    ));
    for (label, value) in &report.headlines {
        out.push_str(&format!("- {label}: **{value}**\n"));
    }
    let t = &report.timings;
    out.push_str(&format!(
        "\n## Timings\n\n- generate: {:.2} s\n- fit: {:.2} s\n- derive: {:.2} s\n- render: {:.2} s\n",
        t.generate_s, t.fit_s, t.derive_s, t.render_s
    ));
    out.push_str("\n## Health\n\n");
    out.push_str(&render_health(&report.health));
    if let Some(metrics) = &report.metrics {
        out.push_str("\n## Metrics\n\n");
        out.push_str(&render_metrics(&metrics.deterministic));
    }
    out.push_str("\n## Artifacts\n\n");
    for a in &report.artifacts {
        out.push_str("```text\n");
        out.push_str(&a.text);
        out.push_str("```\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn tiny_run_produces_all_artifacts() {
        let analyses = build_analyses(0.004, 2024);
        let report = run_all(&analyses, 0.004, 2024);
        assert!(report.artifacts.len() > 25, "artifacts: {}", report.artifacts.len());
        assert!(report.headlines.len() >= 8);
        let ids: Vec<&str> = report.artifacts.iter().map(|a| a.id.as_str()).collect();
        for want in [
            "table1", "fig01", "fig02", "table2", "fig04", "fig06", "table3", "table4", "fig08",
            "fig09a", "fig09d", "fig10", "fig11", "table5", "table6", "table7",
        ] {
            assert!(ids.contains(&want), "missing {want} in {ids:?}");
        }
        // A pristine generator sails through the sanitizer untouched and
        // nothing degrades.
        assert!(!report.health.is_degraded());
        assert_eq!(report.health.jobs_failed, 0);
        assert_eq!(report.health.jobs_retried, 0);
        let md = render_report(&report);
        assert!(md.contains("## Headlines"));
        assert!(md.contains("## Timings"));
        assert!(md.contains("## Health"));
        assert!(md.contains("0 failed, 0 retried"));
    }

    #[test]
    fn observed_run_records_metrics_and_plain_run_does_not() {
        let obs = Registry::new();
        let (analyses, timings, sanitize) = build_analyses_observed(0.004, 2024, 2, None, &obs);
        let opts = SuperviseOptions { parallelism: 2, ..SuperviseOptions::default() };
        let report = run_all_observed(&analyses, 0.004, 2024, &opts, timings, sanitize, &obs);
        let metrics = report.metrics.as_ref().expect("enabled registry yields a snapshot");
        let det = &metrics.deterministic;
        for prefix in ["datagen.records", "sanitize.clean", "bst.em_iterations_total", "store.rows"]
        {
            assert!(
                det.counters.keys().any(|k| k.starts_with(prefix)),
                "no {prefix} counter in {:?}",
                det.counters.keys().collect::<Vec<_>>()
            );
        }
        assert_eq!(det.counters.get("render.jobs").copied(), Some(report.health.jobs_total as u64));
        let spans = &metrics.wall_clock.spans;
        for root in ["generate", "fit", "derive", "render"] {
            assert!(spans.contains_key(root), "missing span {root}");
        }
        assert!(spans.keys().any(|k| k.starts_with("generate/City-")), "no per-city span");
        assert!(spans.contains_key("render/fig01"), "no per-job span");
        let md = render_report(&report);
        assert!(md.contains("## Metrics"));
        assert!(md.contains("counter totals"));
        // The plain entry points stay metrics-free.
        let plain = run_all(&analyses, 0.004, 2024);
        assert!(plain.metrics.is_none());
        assert!(!render_report(&plain).contains("## Metrics"));
    }

    #[test]
    fn parallel_report_matches_sequential() {
        let (seq_analyses, _) = build_analyses_par(0.004, 77, 1);
        let (par_analyses, _) = build_analyses_par(0.004, 77, 4);
        let seq = run_all(&seq_analyses, 0.004, 77);
        let par = run_all_par(&par_analyses, 0.004, 77, 4, StageTimings::default());
        assert_eq!(seq.artifacts.len(), par.artifacts.len());
        for (s, p) in seq.artifacts.iter().zip(&par.artifacts) {
            assert_eq!(s.id, p.id, "artifact order diverged");
            assert_eq!(s.text, p.text, "artifact {} text diverged", s.id);
            assert_eq!(s.svg, p.svg, "artifact {} svg diverged", s.id);
            assert_eq!(s.json, p.json, "artifact {} json diverged", s.id);
        }
        assert_eq!(seq.headlines, par.headlines);
    }

    #[test]
    fn sanitizer_counts_pristine_records_as_clean() {
        let (_, _, report) = build_analyses_sanitized(0.004, 2024, 2, None);
        assert!(report.clean > 1000, "clean records: {}", report.clean);
        assert_eq!(report.quarantined, 0, "pristine generator quarantined: {report:?}");
        assert_eq!(report.repaired, 0);
    }

    #[test]
    fn dirty_records_quarantine_and_analysis_survives() {
        let dirty = DirtyScenario::with_total_rate(0.02);
        let (analyses, timings, report) = build_analyses_sanitized(0.004, 2024, 2, Some(&dirty));
        assert!(report.quarantined > 0, "2% dirty must quarantine something");
        // Duplicates and clock-skew repairs both occur at this rate.
        assert!(report.quarantine_reasons.contains_key("duplicate-id"), "{report:?}");
        assert!(report.repaired > 0, "clock-skewed records should be repaired: {report:?}");
        // The degraded dataset still fits and renders end to end.
        let run = run_all_supervised(
            &analyses,
            0.004,
            2024,
            &SuperviseOptions::default(),
            timings,
            report,
        );
        assert!(run.artifacts.len() > 25);
        assert!(!run.health.is_degraded());
        assert!(run.health.sanitize.quarantined > 0);
    }

    #[test]
    fn injected_job_failure_degrades_to_placeholder() {
        let analyses = build_analyses(0.004, 2024);
        let opts = SuperviseOptions {
            fail_jobs: vec!["fig08".into()],
            deadline: Duration::from_secs(60),
            ..SuperviseOptions::default()
        };
        let report = run_all_supervised(
            &analyses,
            0.004,
            2024,
            &opts,
            StageTimings::default(),
            SanitizeReport::default(),
        );
        assert!(report.health.is_degraded());
        assert_eq!(report.health.jobs_failed, 1);
        assert_eq!(report.health.failures[0].label, "fig08");
        assert!(report.health.failures[0].reason.contains("injected failure"));
        let ids: Vec<&str> = report.artifacts.iter().map(|a| a.id.as_str()).collect();
        assert!(ids.contains(&"degraded_fig08"), "placeholder missing: {ids:?}");
        assert!(!ids.contains(&"fig08"), "failed job still produced its artifact");
        // Everything else still rendered.
        for want in ["table1", "fig01", "fig09a", "table5", "table7"] {
            assert!(ids.contains(&want), "missing {want}");
        }
        let md = render_report(&report);
        assert!(md.contains("1 failed"));
        assert!(md.contains("degraded_fig08") || md.contains("fig08: panic"));
    }

    #[test]
    fn flaky_job_survives_on_retry() {
        let analyses = build_analyses(0.004, 2024);
        let opts =
            SuperviseOptions { flaky_jobs: vec!["table1".into()], ..SuperviseOptions::default() };
        let report = run_all_supervised(
            &analyses,
            0.004,
            2024,
            &opts,
            StageTimings::default(),
            SanitizeReport::default(),
        );
        assert!(!report.health.is_degraded());
        assert_eq!(report.health.jobs_retried, 1);
        assert_eq!(report.health.jobs_failed, 0);
        let clean = run_all(&analyses, 0.004, 2024);
        assert_eq!(report.artifacts.len(), clean.artifacts.len());
        assert_eq!(report.artifacts[0].text, clean.artifacts[0].text);
    }

    #[test]
    fn hanging_job_hits_the_deadline_and_degrades() {
        let analyses = build_analyses(0.004, 2024);
        let opts = SuperviseOptions {
            hang_jobs: vec!["ext_latency".into()],
            deadline: Duration::from_millis(250),
            ..SuperviseOptions::default()
        };
        let t0 = Instant::now();
        let report = run_all_supervised(
            &analyses,
            0.004,
            2024,
            &opts,
            StageTimings::default(),
            SanitizeReport::default(),
        );
        assert!(report.health.is_degraded());
        assert_eq!(report.health.failures[0].label, "ext_latency");
        assert!(report.health.failures[0].reason.contains("deadline exceeded"));
        // Two attempts at 250ms each plus the real jobs; nowhere near the
        // 10s the hang job sleeps.
        assert!(t0.elapsed() < Duration::from_secs(9), "deadline did not bound the run");
    }

    #[test]
    fn degraded_run_is_identical_across_parallelism() {
        let dirty = DirtyScenario::with_total_rate(0.02);
        let mk = |par: usize| {
            let (analyses, _, sanitize) = build_analyses_sanitized(0.004, 99, par, Some(&dirty));
            let opts = SuperviseOptions {
                parallelism: par,
                fail_jobs: vec!["fig10".into()],
                ..SuperviseOptions::default()
            };
            run_all_supervised(&analyses, 0.004, 99, &opts, StageTimings::default(), sanitize)
        };
        let seq = mk(1);
        let par = mk(4);
        assert_eq!(seq.artifacts.len(), par.artifacts.len());
        for (s, p) in seq.artifacts.iter().zip(&par.artifacts) {
            assert_eq!(s.id, p.id, "artifact order diverged");
            assert_eq!(s.text, p.text, "artifact {} text diverged", s.id);
            assert_eq!(s.json, p.json, "artifact {} json diverged", s.id);
        }
        assert_eq!(seq.headlines, par.headlines);
        assert_eq!(render_health(&seq.health), render_health(&par.health));
    }
}
