//! Shared driver used by the `repro` binary and the Criterion benches.
//!
//! [`run_all`] regenerates every table and figure of the paper at a chosen
//! scale and returns the artifacts; the binary writes them to disk, the
//! benches time individual pieces.

pub mod claims;

use st_analysis::{
    cities, ext_latency, fig01, fig02, fig04, fig05, fig06, fig07, fig08, fig09, fig10,
    fig11, fig12, fig13, table1, table2, table3, table4, CityAnalysis,
};
use st_datagen::{City, CityDataset};

/// One rendered artifact: an id, markdown/text body, and optional SVG.
pub struct Artifact {
    /// Stable id ("fig09a", "table2", ...).
    pub id: String,
    /// Text rendering for the report.
    pub text: String,
    /// SVG document, when the artifact is a figure.
    pub svg: Option<String>,
    /// JSON payload of the underlying result.
    pub json: String,
}

/// Everything the repro run produces.
pub struct ReproReport {
    /// The scale the datasets were generated at.
    pub scale: f64,
    /// The seed used.
    pub seed: u64,
    /// All artifacts, in paper order.
    pub artifacts: Vec<Artifact>,
    /// Headline numbers for the summary (label, value).
    pub headlines: Vec<(String, String)>,
}

fn cdf_artifact(r: &st_analysis::CdfResult) -> Artifact {
    Artifact {
        id: r.id.clone(),
        text: r.render(),
        svg: Some(r.to_svg()),
        json: serde_json::to_string_pretty(r).expect("serializable result"),
    }
}

fn table_artifact(t: &st_analysis::TableResult) -> Artifact {
    Artifact {
        id: t.id.clone(),
        text: t.render(),
        svg: None,
        json: serde_json::to_string_pretty(t).expect("serializable result"),
    }
}

fn density_artifact(d: &st_analysis::results::DensityResult) -> Artifact {
    Artifact {
        id: d.id.clone(),
        text: d.render(),
        svg: Some(d.to_svg()),
        json: serde_json::to_string_pretty(d).expect("serializable result"),
    }
}

/// Generate all four cities and fit the per-campaign BST models.
pub fn build_analyses(scale: f64, seed: u64) -> Vec<CityAnalysis> {
    City::all()
        .into_iter()
        .map(|city| {
            let ds = CityDataset::generate(city, scale, seed);
            CityAnalysis::new(ds, seed ^ 0x5eed)
        })
        .collect()
}

/// Run every experiment; `analyses` must hold the four cities in order.
pub fn run_all(analyses: &[CityAnalysis], scale: f64, seed: u64) -> ReproReport {
    assert_eq!(analyses.len(), 4, "need all four cities");
    let a = &analyses[0]; // City-A carries the main-body experiments.
    let mut artifacts = Vec::new();
    let mut headlines = Vec::new();

    // Table 1.
    let datasets: Vec<&CityDataset> = analyses.iter().map(|x| &x.dataset).collect();
    artifacts.push(table_artifact(&table1::run(&datasets)));

    // §2 cross-city comparison.
    let all_refs: Vec<&CityAnalysis> = analyses.iter().collect();
    let (cities_table, _) = cities::run(&all_refs);
    artifacts.push(table_artifact(&cities_table));

    // Fig 1 + 2.
    let f1 = fig01::run(a);
    headlines.push((
        "fig01 uncontextualized median (Mbps)".into(),
        format!("{:.1}", f1.medians.first().copied().unwrap_or(f64::NAN)),
    ));
    artifacts.push(cdf_artifact(&f1));
    let f2 = fig02::run(a);
    if f2.medians.len() == 2 {
        headlines.push((
            "fig02 consistency medians (down / up)".into(),
            format!("{:.2} / {:.2}", f2.medians[0], f2.medians[1]),
        ));
    }
    artifacts.push(cdf_artifact(&f2));

    // Table 2 across all states.
    let refs: Vec<&CityAnalysis> = analyses.iter().collect();
    let (t2, stats) = table2::run(&refs);
    artifacts.push(table_artifact(&t2));
    for s in &stats {
        headlines.push((
            format!("table2 {} upload accuracy", s.state),
            format!("{:.2}%", s.upload_accuracy * 100.0),
        ));
    }

    // Figs 4-7 and tables 3-4 (City/State-A) plus appendix variants.
    artifacts.push(density_artifact(&fig04::run(a)));
    for d in fig05::run(a) {
        artifacts.push(density_artifact(&d));
    }
    artifacts.push(density_artifact(&fig06::run(a)));
    let (t3, _) = table3::run(a);
    artifacts.push(table_artifact(&t3));
    for d in fig07::run(a) {
        artifacts.push(density_artifact(&d));
    }
    let (t4, _) = table4::run(a);
    artifacts.push(table_artifact(&t4));

    // Fig 8.
    let f8 = fig08::run(a);
    if let Some(m) = f8.medians.first() {
        headlines.push(("fig08 alpha median".into(), format!("{m:.2}")));
    }
    artifacts.push(cdf_artifact(&f8));

    // Fig 9 panels.
    for panel in fig09::run(a) {
        artifacts.push(cdf_artifact(&panel));
    }

    // Fig 10.
    let (f10, shares) = fig10::run(a);
    headlines.push((
        "fig10 local-bottleneck share".into(),
        format!("{:.0}%", shares.local_bottleneck_share * 100.0),
    ));
    if f10.medians.len() == 2 {
        headlines.push((
            "fig10 medians (best / bottleneck)".into(),
            format!("{:.2} / {:.2}", f10.medians[0], f10.medians[1]),
        ));
    }
    artifacts.push(cdf_artifact(&f10));

    // Figs 11-12.
    let (_vol, t11) = fig11::run(a);
    artifacts.push(table_artifact(&t11));
    for panel in fig12::run_default(a) {
        artifacts.push(cdf_artifact(&panel));
    }

    // Fig 13.
    let (panels, gaps) = fig13::run(a);
    for panel in panels {
        artifacts.push(cdf_artifact(&panel));
    }
    for g in &gaps {
        headlines.push((
            format!("fig13 {} Ookla/M-Lab median ratio", g.group),
            format!("{:.2}", g.ratio),
        ));
    }

    // Extension: latency under load (not a paper figure; see the module
    // docs of `st_analysis::ext_latency`).
    let (lat_cdf, lat) = ext_latency::run(a);
    headlines.push((
        "ext_latency medians (idle / loaded, ms)".into(),
        format!("{:.1} / {:.1}", lat.idle_median_ms, lat.loaded_median_ms),
    ));
    artifacts.push(cdf_artifact(&lat_cdf));

    // Appendix: tables 5-7 (upload clusters for cities B-D) and the
    // per-state appendix densities.
    for (i, city_a) in analyses.iter().enumerate().skip(1) {
        let (mut t, _) = table3::run(city_a);
        t.id = format!("table{}", 4 + i); // tables 5, 6, 7
        artifacts.push(table_artifact(&t));
        let mut d = fig04::run(city_a);
        d.id = format!("fig14_{}", city_a.dataset.config.city.state_label().to_lowercase());
        artifacts.push(density_artifact(&d));
        for (j, mut dd) in fig05::run(city_a).into_iter().enumerate() {
            dd.id = format!(
                "fig{}_{}",
                15 + i, // figs 16, 17, 18
                j
            );
            artifacts.push(density_artifact(&dd));
        }
        let mut f6 = fig06::run(city_a);
        f6.id = format!("fig15_{}", city_a.dataset.config.city.label().to_lowercase());
        artifacts.push(density_artifact(&f6));
    }

    ReproReport { scale, seed, artifacts, headlines }
}

/// Render the full markdown report.
pub fn render_report(report: &ReproReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Repro run (scale {}, seed {})\n\n## Headlines\n\n",
        report.scale, report.seed
    ));
    for (label, value) in &report.headlines {
        out.push_str(&format!("- {label}: **{value}**\n"));
    }
    out.push_str("\n## Artifacts\n\n");
    for a in &report.artifacts {
        out.push_str("```text\n");
        out.push_str(&a.text);
        out.push_str("```\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_all_artifacts() {
        let analyses = build_analyses(0.004, 2024);
        let report = run_all(&analyses, 0.004, 2024);
        assert!(report.artifacts.len() > 25, "artifacts: {}", report.artifacts.len());
        assert!(report.headlines.len() >= 8);
        let ids: Vec<&str> = report.artifacts.iter().map(|a| a.id.as_str()).collect();
        for want in ["table1", "fig01", "fig02", "table2", "fig04", "fig06", "table3",
                     "table4", "fig08", "fig09a", "fig09d", "fig10", "fig11",
                     "table5", "table6", "table7"] {
            assert!(ids.contains(&want), "missing {want} in {ids:?}");
        }
        let md = render_report(&report);
        assert!(md.contains("## Headlines"));
    }
}
