//! Shared driver used by the `repro` binary and the Criterion benches.
//!
//! [`run_all`] regenerates every table and figure of the paper at a chosen
//! scale and returns the artifacts; the binary writes them to disk, the
//! benches time individual pieces.
//!
//! Every stage has a parallel variant (`build_analyses_par`,
//! `run_all_par`) built on the deterministic chunked engine of
//! [`st_datagen::par`]: the report is byte-identical at every
//! parallelism level, only the wall-clock changes. Per-stage timings are
//! carried on [`ReproReport::timings`].

pub mod claims;

use serde::Serialize;
use st_analysis::{
    cities, ext_latency, fig01, fig02, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11,
    fig12, fig13, table1, table2, table3, table4, CityAnalysis,
};
use st_datagen::{City, CityDataset};
use std::time::Instant;

/// One rendered artifact: an id, markdown/text body, and optional SVG.
pub struct Artifact {
    /// Stable id ("fig09a", "table2", ...).
    pub id: String,
    /// Text rendering for the report.
    pub text: String,
    /// SVG document, when the artifact is a figure.
    pub svg: Option<String>,
    /// JSON payload of the underlying result.
    pub json: String,
}

/// Wall-clock seconds spent in each repro stage.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StageTimings {
    /// Dataset generation (four cities).
    pub generate_s: f64,
    /// BST model fitting (four cities).
    pub fit_s: f64,
    /// Experiment rendering (tables, figures, SVG/JSON).
    pub render_s: f64,
}

/// Everything the repro run produces.
pub struct ReproReport {
    /// The scale the datasets were generated at.
    pub scale: f64,
    /// The seed used.
    pub seed: u64,
    /// All artifacts, in paper order.
    pub artifacts: Vec<Artifact>,
    /// Headline numbers for the summary (label, value).
    pub headlines: Vec<(String, String)>,
    /// Per-stage wall-clock timings of this run.
    pub timings: StageTimings,
}

/// Map `items` through `f` on up to `workers` scoped threads, preserving
/// item order in the output. `f` gets the item's index and the item.
fn par_map<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let (job_tx, job_rx) = crossbeam::channel::bounded::<(usize, T)>(workers);
    let (out_tx, out_rx) = crossbeam::channel::unbounded::<(usize, U)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let out_tx = out_tx.clone();
            let f = &f;
            scope.spawn(move || {
                for (i, item) in job_rx.iter() {
                    if out_tx.send((i, f(i, item))).is_err() {
                        return;
                    }
                }
            });
        }
        drop(job_rx);
        drop(out_tx);
        // Feed the bounded queue; workers drain it as they go.
        for pair in items.into_iter().enumerate() {
            assert!(job_tx.send(pair).is_ok(), "workers alive while feeding");
        }
        drop(job_tx);
        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, out) in out_rx.iter() {
            slots[i] = Some(out);
        }
        slots.into_iter().map(|s| s.expect("every job completed")).collect()
    })
}

fn cdf_artifact(r: &st_analysis::CdfResult) -> Artifact {
    Artifact {
        id: r.id.clone(),
        text: r.render(),
        svg: Some(r.to_svg()),
        json: serde_json::to_string_pretty(r).expect("serializable result"),
    }
}

fn table_artifact(t: &st_analysis::TableResult) -> Artifact {
    Artifact {
        id: t.id.clone(),
        text: t.render(),
        svg: None,
        json: serde_json::to_string_pretty(t).expect("serializable result"),
    }
}

fn density_artifact(d: &st_analysis::results::DensityResult) -> Artifact {
    Artifact {
        id: d.id.clone(),
        text: d.render(),
        svg: Some(d.to_svg()),
        json: serde_json::to_string_pretty(d).expect("serializable result"),
    }
}

/// Generate all four cities and fit the per-campaign BST models.
pub fn build_analyses(scale: f64, seed: u64) -> Vec<CityAnalysis> {
    build_analyses_par(scale, seed, 1).0
}

/// Like [`build_analyses`], with the four generate jobs and then the four
/// fit jobs spread over up to `parallelism` worker threads. Leftover
/// workers parallelize *inside* each city's campaign loops.
///
/// Output is identical at every parallelism level; the returned
/// [`StageTimings`] has the generate and fit wall-clocks filled in
/// (`render_s` stays 0 until [`run_all_par`]).
pub fn build_analyses_par(
    scale: f64,
    seed: u64,
    parallelism: usize,
) -> (Vec<CityAnalysis>, StageTimings) {
    let parallelism = parallelism.max(1);
    let cities = City::all();
    let city_workers = parallelism.min(cities.len());
    // Workers beyond one-per-city go into each city's chunked loops.
    let inner = parallelism.div_ceil(city_workers);

    let t0 = Instant::now();
    let datasets = par_map(cities.to_vec(), city_workers, |_, city| {
        CityDataset::generate_with_parallelism(city, scale, seed, inner)
    });
    let generate_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let analyses = par_map(datasets, city_workers, |_, ds| CityAnalysis::new(ds, seed ^ 0x5eed));
    let fit_s = t1.elapsed().as_secs_f64();

    (analyses, StageTimings { generate_s, fit_s, render_s: 0.0 })
}

/// What one render job yields: its artifacts and headlines, in paper
/// order within the job.
type JobOut = (Vec<Artifact>, Vec<(String, String)>);

type RenderJob<'a> = Box<dyn Fn() -> JobOut + Send + Sync + 'a>;

/// The full experiment suite as independent render jobs. Job order is
/// paper order; concatenating the outputs job by job reproduces the
/// sequential report exactly.
fn render_jobs(analyses: &[CityAnalysis]) -> Vec<RenderJob<'_>> {
    let a = &analyses[0]; // City-A carries the main-body experiments.
    let mut jobs: Vec<RenderJob<'_>> = Vec::new();

    // Table 1.
    jobs.push(Box::new(move || {
        let datasets: Vec<&CityDataset> = analyses.iter().map(|x| &x.dataset).collect();
        (vec![table_artifact(&table1::run(&datasets))], vec![])
    }));

    // §2 cross-city comparison.
    jobs.push(Box::new(move || {
        let all_refs: Vec<&CityAnalysis> = analyses.iter().collect();
        let (cities_table, _) = cities::run(&all_refs);
        (vec![table_artifact(&cities_table)], vec![])
    }));

    // Fig 1 + 2.
    jobs.push(Box::new(move || {
        let f1 = fig01::run(a);
        let headline = (
            "fig01 uncontextualized median (Mbps)".into(),
            format!("{:.1}", f1.medians.first().copied().unwrap_or(f64::NAN)),
        );
        (vec![cdf_artifact(&f1)], vec![headline])
    }));
    jobs.push(Box::new(move || {
        let f2 = fig02::run(a);
        let mut headlines = Vec::new();
        if f2.medians.len() == 2 {
            headlines.push((
                "fig02 consistency medians (down / up)".into(),
                format!("{:.2} / {:.2}", f2.medians[0], f2.medians[1]),
            ));
        }
        (vec![cdf_artifact(&f2)], headlines)
    }));

    // Table 2 across all states.
    jobs.push(Box::new(move || {
        let refs: Vec<&CityAnalysis> = analyses.iter().collect();
        let (t2, stats) = table2::run(&refs);
        let headlines = stats
            .iter()
            .map(|s| {
                (
                    format!("table2 {} upload accuracy", s.state),
                    format!("{:.2}%", s.upload_accuracy * 100.0),
                )
            })
            .collect();
        (vec![table_artifact(&t2)], headlines)
    }));

    // Figs 4-7 and tables 3-4 (City/State-A) plus appendix variants.
    jobs.push(Box::new(move || (vec![density_artifact(&fig04::run(a))], vec![])));
    jobs.push(Box::new(move || (fig05::run(a).iter().map(density_artifact).collect(), vec![])));
    jobs.push(Box::new(move || (vec![density_artifact(&fig06::run(a))], vec![])));
    jobs.push(Box::new(move || {
        let (t3, _) = table3::run(a);
        (vec![table_artifact(&t3)], vec![])
    }));
    jobs.push(Box::new(move || (fig07::run(a).iter().map(density_artifact).collect(), vec![])));
    jobs.push(Box::new(move || {
        let (t4, _) = table4::run(a);
        (vec![table_artifact(&t4)], vec![])
    }));

    // Fig 8.
    jobs.push(Box::new(move || {
        let f8 = fig08::run(a);
        let headlines = f8
            .medians
            .first()
            .map(|m| ("fig08 alpha median".into(), format!("{m:.2}")))
            .into_iter()
            .collect();
        (vec![cdf_artifact(&f8)], headlines)
    }));

    // Fig 9 panels.
    jobs.push(Box::new(move || (fig09::run(a).iter().map(cdf_artifact).collect(), vec![])));

    // Fig 10.
    jobs.push(Box::new(move || {
        let (f10, shares) = fig10::run(a);
        let mut headlines = vec![(
            "fig10 local-bottleneck share".into(),
            format!("{:.0}%", shares.local_bottleneck_share * 100.0),
        )];
        if f10.medians.len() == 2 {
            headlines.push((
                "fig10 medians (best / bottleneck)".into(),
                format!("{:.2} / {:.2}", f10.medians[0], f10.medians[1]),
            ));
        }
        (vec![cdf_artifact(&f10)], headlines)
    }));

    // Figs 11-12.
    jobs.push(Box::new(move || {
        let (_vol, t11) = fig11::run(a);
        (vec![table_artifact(&t11)], vec![])
    }));
    jobs.push(Box::new(move || (fig12::run_default(a).iter().map(cdf_artifact).collect(), vec![])));

    // Fig 13.
    jobs.push(Box::new(move || {
        let (panels, gaps) = fig13::run(a);
        let headlines = gaps
            .iter()
            .map(|g| {
                (format!("fig13 {} Ookla/M-Lab median ratio", g.group), format!("{:.2}", g.ratio))
            })
            .collect();
        (panels.iter().map(cdf_artifact).collect(), headlines)
    }));

    // Extension: latency under load (not a paper figure; see the module
    // docs of `st_analysis::ext_latency`).
    jobs.push(Box::new(move || {
        let (lat_cdf, lat) = ext_latency::run(a);
        let headline = (
            "ext_latency medians (idle / loaded, ms)".into(),
            format!("{:.1} / {:.1}", lat.idle_median_ms, lat.loaded_median_ms),
        );
        (vec![cdf_artifact(&lat_cdf)], vec![headline])
    }));

    // Appendix: tables 5-7 (upload clusters for cities B-D) and the
    // per-state appendix densities.
    for (i, city_a) in analyses.iter().enumerate().skip(1) {
        jobs.push(Box::new(move || {
            let mut artifacts = Vec::new();
            let (mut t, _) = table3::run(city_a);
            t.id = format!("table{}", 4 + i); // tables 5, 6, 7
            artifacts.push(table_artifact(&t));
            let mut d = fig04::run(city_a);
            d.id = format!("fig14_{}", city_a.dataset.config.city.state_label().to_lowercase());
            artifacts.push(density_artifact(&d));
            for (j, mut dd) in fig05::run(city_a).into_iter().enumerate() {
                dd.id = format!(
                    "fig{}_{}",
                    15 + i, // figs 16, 17, 18
                    j
                );
                artifacts.push(density_artifact(&dd));
            }
            let mut f6 = fig06::run(city_a);
            f6.id = format!("fig15_{}", city_a.dataset.config.city.label().to_lowercase());
            artifacts.push(density_artifact(&f6));
            (artifacts, vec![])
        }));
    }

    jobs
}

/// Run every experiment; `analyses` must hold the four cities in order.
pub fn run_all(analyses: &[CityAnalysis], scale: f64, seed: u64) -> ReproReport {
    run_all_par(analyses, scale, seed, 1, StageTimings::default())
}

/// Like [`run_all`], dispatching the render jobs to up to `parallelism`
/// workers through a bounded queue and stitching the results back into
/// paper order. Artifacts and headlines are identical at every
/// parallelism level.
///
/// `timings` carries the generate/fit wall-clocks from
/// [`build_analyses_par`]; this call fills in `render_s`.
pub fn run_all_par(
    analyses: &[CityAnalysis],
    scale: f64,
    seed: u64,
    parallelism: usize,
    timings: StageTimings,
) -> ReproReport {
    assert_eq!(analyses.len(), 4, "need all four cities");
    let t0 = Instant::now();
    let jobs = render_jobs(analyses);
    let outs = par_map(jobs, parallelism.max(1), |_, job| job());
    let mut artifacts = Vec::new();
    let mut headlines = Vec::new();
    for (art, heads) in outs {
        artifacts.extend(art);
        headlines.extend(heads);
    }
    let timings = StageTimings { render_s: t0.elapsed().as_secs_f64(), ..timings };
    ReproReport { scale, seed, artifacts, headlines, timings }
}

/// Render the full markdown report.
pub fn render_report(report: &ReproReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Repro run (scale {}, seed {})\n\n## Headlines\n\n",
        report.scale, report.seed
    ));
    for (label, value) in &report.headlines {
        out.push_str(&format!("- {label}: **{value}**\n"));
    }
    let t = &report.timings;
    out.push_str(&format!(
        "\n## Timings\n\n- generate: {:.2} s\n- fit: {:.2} s\n- render: {:.2} s\n",
        t.generate_s, t.fit_s, t.render_s
    ));
    out.push_str("\n## Artifacts\n\n");
    for a in &report.artifacts {
        out.push_str("```text\n");
        out.push_str(&a.text);
        out.push_str("```\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_all_artifacts() {
        let analyses = build_analyses(0.004, 2024);
        let report = run_all(&analyses, 0.004, 2024);
        assert!(report.artifacts.len() > 25, "artifacts: {}", report.artifacts.len());
        assert!(report.headlines.len() >= 8);
        let ids: Vec<&str> = report.artifacts.iter().map(|a| a.id.as_str()).collect();
        for want in [
            "table1", "fig01", "fig02", "table2", "fig04", "fig06", "table3", "table4", "fig08",
            "fig09a", "fig09d", "fig10", "fig11", "table5", "table6", "table7",
        ] {
            assert!(ids.contains(&want), "missing {want} in {ids:?}");
        }
        let md = render_report(&report);
        assert!(md.contains("## Headlines"));
        assert!(md.contains("## Timings"));
    }

    #[test]
    fn parallel_report_matches_sequential() {
        let (seq_analyses, _) = build_analyses_par(0.004, 77, 1);
        let (par_analyses, _) = build_analyses_par(0.004, 77, 4);
        let seq = run_all(&seq_analyses, 0.004, 77);
        let par = run_all_par(&par_analyses, 0.004, 77, 4, StageTimings::default());
        assert_eq!(seq.artifacts.len(), par.artifacts.len());
        for (s, p) in seq.artifacts.iter().zip(&par.artifacts) {
            assert_eq!(s.id, p.id, "artifact order diverged");
            assert_eq!(s.text, p.text, "artifact {} text diverged", s.id);
            assert_eq!(s.svg, p.svg, "artifact {} svg diverged", s.id);
            assert_eq!(s.json, p.json, "artifact {} json diverged", s.id);
        }
        assert_eq!(seq.headlines, par.headlines);
    }
}
