//! Append-only run ledger: one JSON line per completed `repro` run.
//!
//! The `repro` binary appends a [`LedgerRow`] to `BENCH_ledger.jsonl`
//! after every run (DESIGN.md §14), so a working directory accumulates a
//! queryable history: schema version, run knobs (scale, seed,
//! parallelism), an FNV-1a hash of the artifact set, headline counters,
//! and the per-stage wall-clock durations. The file is JSON Lines —
//! append-only, one self-contained object per line — so concurrent
//! tooling can `tail` it and a truncated final line (crash mid-append)
//! never corrupts the rows before it.
//!
//! The artifact hash uses the same FNV-1a scheme as the golden-identity
//! test ([`fnv1a`] over the sorted `<id>.svg`/`<id>.json` file set, name
//! bytes then content bytes), so a ledger row's hash can be compared
//! directly against the pinned golden value: two rows with equal
//! `artifact_hash` produced byte-identical artifact sets.

use crate::diff::{diff_metrics, DiffOptions, MetricsDoc};
use crate::{Artifact, ReproReport};
use serde::Serialize;
use serde_json::Value;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Schema tag stamped on every row.
pub const LEDGER_SCHEMA: &str = "st-ledger/v1";

/// Schema tag stamped on every `wire-load` campaign row.
pub const LOAD_LEDGER_SCHEMA: &str = "st-load/v1";

/// Schema tag stamped on every `ingest` replay row.
pub const INGEST_LEDGER_SCHEMA: &str = "st-ingest/v1";

/// Schema tag stamped on every `serve` run row.
pub const SERVE_LEDGER_SCHEMA: &str = "st-serve/v1";

/// FNV-1a offset basis (matches the golden-identity test).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (matches the golden-identity test).
pub const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Fold `bytes` into an FNV-1a hash state.
pub fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash an artifact set the way the golden-identity capture did: the
/// `<id>.svg` / `<id>.json` files the repro binary writes (`report.md`
/// and the BENCH_* records carry wall-clock values and are excluded),
/// sorted by file name, each folded as name bytes then content bytes.
/// Returns `(hash, file_count)`.
pub fn artifact_hash(artifacts: &[Artifact]) -> (u64, usize) {
    let mut files: Vec<(String, &str)> = Vec::new();
    for a in artifacts {
        if let Some(svg) = &a.svg {
            files.push((format!("{}.svg", a.id), svg));
        }
        files.push((format!("{}.json", a.id), &a.json));
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let mut h = FNV_OFFSET;
    for (name, body) in &files {
        h = fnv1a(name.as_bytes(), h);
        h = fnv1a(body.as_bytes(), h);
    }
    (h, files.len())
}

/// One run's summary row. Everything except the four stage durations is
/// deterministic for a given (code, scale, seed, fault-injection)
/// tuple — `artifact_hash` in particular is parallelism-invariant.
#[derive(Debug, Clone, Serialize)]
pub struct LedgerRow {
    /// Row schema tag ([`LEDGER_SCHEMA`]).
    pub schema: String,
    /// The run's `--scale`.
    pub scale: f64,
    /// The run's `--seed`.
    pub seed: u64,
    /// The run's `--parallelism`.
    pub parallelism: usize,
    /// FNV-1a hash of the artifact file set, as 16 hex digits.
    pub artifact_hash: String,
    /// Files in the hashed artifact set.
    pub artifact_files: usize,
    /// Artifacts produced (placeholders included).
    pub artifacts: usize,
    /// Headline numbers produced.
    pub headlines: usize,
    /// Render jobs that failed both attempts (degraded placeholders).
    pub jobs_failed: usize,
    /// Render jobs that survived on their retry.
    pub jobs_retried: usize,
    /// Records the sanitizer passed through untouched.
    pub records_clean: u64,
    /// Records the sanitizer repaired.
    pub records_repaired: u64,
    /// Records the sanitizer quarantined.
    pub records_quarantined: u64,
    /// Wall-clock seconds of the generate stage.
    pub generate_s: f64,
    /// Wall-clock seconds of the fit stage.
    pub fit_s: f64,
    /// Wall-clock seconds of the derive stage.
    pub derive_s: f64,
    /// Wall-clock seconds of the render stage.
    pub render_s: f64,
}

/// Schemas the read side accepts: every batch-comparable row kind.
/// (`st-load/v1` rows hash a metrics section instead of an artifact set
/// and are deliberately absent — they have no drift surface here.)
pub const BATCH_COMPARABLE_SCHEMAS: &[&str] =
    &[LEDGER_SCHEMA, INGEST_LEDGER_SCHEMA, SERVE_LEDGER_SCHEMA];

impl LedgerRow {
    /// Parse one ledger line back into the batch-comparable field set —
    /// the console's read side. Accepts every schema in
    /// [`BATCH_COMPARABLE_SCHEMAS`] (ingest and serve rows are supersets
    /// of the batch row; the extra fields are dropped, the actual
    /// schema tag is kept) and rejects `st-load/v1` rows and unknown
    /// schemas with a typed message.
    pub fn parse(line: &str) -> Result<LedgerRow, String> {
        let v = serde_json::from_str(line).map_err(|e| format!("bad ledger JSON: {e}"))?;
        LedgerRow::from_value(&v)
    }

    /// [`LedgerRow::parse`] over an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<LedgerRow, String> {
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| "ledger row has no string `schema` tag".to_string())?;
        if schema == LOAD_LEDGER_SCHEMA {
            return Err(format!(
                "{schema} rows carry a metrics hash, not an artifact set — not batch-comparable"
            ));
        }
        if !BATCH_COMPARABLE_SCHEMAS.contains(&schema) {
            return Err(format!("unknown ledger schema {schema:?}"));
        }
        let u64f = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{schema} row is missing u64 `{k}`"))
        };
        let f64f = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64_lossy)
                .ok_or_else(|| format!("{schema} row is missing number `{k}`"))
        };
        let hash = v
            .get("artifact_hash")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{schema} row is missing string `artifact_hash`"))?;
        Ok(LedgerRow {
            schema: schema.to_string(),
            scale: f64f("scale")?,
            seed: u64f("seed")?,
            parallelism: u64f("parallelism")? as usize,
            artifact_hash: hash.to_string(),
            artifact_files: u64f("artifact_files")? as usize,
            artifacts: u64f("artifacts")? as usize,
            headlines: u64f("headlines")? as usize,
            jobs_failed: u64f("jobs_failed")? as usize,
            jobs_retried: u64f("jobs_retried")? as usize,
            records_clean: u64f("records_clean")?,
            records_repaired: u64f("records_repaired")?,
            records_quarantined: u64f("records_quarantined")?,
            generate_s: f64f("generate_s")?,
            fit_s: f64f("fit_s")?,
            derive_s: f64f("derive_s")?,
            render_s: f64f("render_s")?,
        })
    }

    /// The row's deterministic fields as a [`MetricsDoc`], so ledger
    /// rows ride the exact-comparison machinery `obs-diff` uses: the
    /// batch-comparable counters become counters, the scale becomes a
    /// gauge, and the stage durations stay out (wall-clock class).
    pub fn deterministic_doc(&self) -> MetricsDoc {
        let mut doc = MetricsDoc {
            schema: self.schema.clone(),
            scale: Some(self.scale),
            seed: Some(self.seed),
            parallelism: Some(self.parallelism as u64),
            ..MetricsDoc::default()
        };
        for (key, value) in [
            ("ledger.artifacts", self.artifacts as u64),
            ("ledger.headlines", self.headlines as u64),
            ("ledger.jobs_failed", self.jobs_failed as u64),
            ("ledger.jobs_retried", self.jobs_retried as u64),
            ("ledger.records_clean", self.records_clean),
            ("ledger.records_repaired", self.records_repaired),
            ("ledger.records_quarantined", self.records_quarantined),
            ("ledger.artifact_files", self.artifact_files as u64),
        ] {
            doc.counters.insert(key.to_string(), value);
        }
        doc.gauges.insert("ledger.scale".to_string(), self.scale);
        doc
    }

    /// Drift flags for this row against a baseline row, one line per
    /// divergent key. Empty means the runs are batch-identical where
    /// the determinism contract requires it: seed, the counter surface,
    /// and the artifact hash. The schema tag and `parallelism` are
    /// exempt — comparing a serve run against a batch baseline across
    /// parallelism levels is exactly the console's job.
    pub fn drift_against(&self, baseline: &LedgerRow) -> Vec<String> {
        let mut flags = Vec::new();
        if self.seed != baseline.seed {
            flags.push(format!("seed: {} -> {}", baseline.seed, self.seed));
        }
        let diff = diff_metrics(
            &baseline.deterministic_doc(),
            &self.deterministic_doc(),
            DiffOptions::default(),
        );
        for d in &diff.drift {
            if d.section == "schema" {
                continue;
            }
            flags.push(format!("{} {}: {}", d.section, d.key, d.detail));
        }
        if self.artifact_hash != baseline.artifact_hash {
            flags.push(format!(
                "artifact_hash: {} -> {}",
                baseline.artifact_hash, self.artifact_hash
            ));
        }
        flags
    }

    /// Summarize one completed run.
    pub fn from_report(report: &ReproReport, parallelism: usize) -> LedgerRow {
        let (hash, files) = artifact_hash(&report.artifacts);
        let s = &report.health.sanitize;
        LedgerRow {
            schema: LEDGER_SCHEMA.to_string(),
            scale: report.scale,
            seed: report.seed,
            parallelism,
            artifact_hash: format!("{hash:016x}"),
            artifact_files: files,
            artifacts: report.artifacts.len(),
            headlines: report.headlines.len(),
            jobs_failed: report.health.jobs_failed,
            jobs_retried: report.health.jobs_retried,
            records_clean: s.clean,
            records_repaired: s.repaired,
            records_quarantined: s.quarantined,
            generate_s: report.timings.generate_s,
            fit_s: report.timings.fit_s,
            derive_s: report.timings.derive_s,
            render_s: report.timings.render_s,
        }
    }
}

/// One incremental-ingest replay's summary row (schema
/// [`INGEST_LEDGER_SCHEMA`]). `artifact_hash` uses the same FNV-1a scheme
/// as [`LedgerRow`], so an ingest row can be compared field-for-field
/// against a batch row: equal hashes mean the chunked replay reproduced
/// the batch artifact set byte for byte. Chunk counts and segment counts
/// are deterministic for a given (code, scale, seed, chunk plan) tuple;
/// the stage durations and `rows_per_s` are wall-clock class.
#[derive(Debug, Clone, Serialize)]
pub struct IngestLedgerRow {
    /// Row schema tag ([`INGEST_LEDGER_SCHEMA`]).
    pub schema: String,
    /// The run's `--scale`.
    pub scale: f64,
    /// The run's `--seed`.
    pub seed: u64,
    /// The run's `--parallelism`.
    pub parallelism: usize,
    /// Rows per replayed chunk (`--chunk-rows`).
    pub chunk_rows: usize,
    /// Sealed-segment size threshold (`--seal-rows`).
    pub seal_rows: usize,
    /// Chunks appended across all campaign streams.
    pub chunks: u64,
    /// Rows offered to the incremental sanitizer.
    pub rows: u64,
    /// Sealed segments across all stores after freeze.
    pub segments: usize,
    /// FNV-1a hash of the artifact file set, as 16 hex digits —
    /// comparable against batch rows and the pinned golden value.
    pub artifact_hash: String,
    /// Files in the hashed artifact set.
    pub artifact_files: usize,
    /// Artifacts produced (placeholders included).
    pub artifacts: usize,
    /// Headline numbers produced.
    pub headlines: usize,
    /// Render jobs that failed both attempts.
    pub jobs_failed: usize,
    /// Render jobs that survived on their retry.
    pub jobs_retried: usize,
    /// Records the sanitizer passed through untouched.
    pub records_clean: u64,
    /// Records the sanitizer repaired.
    pub records_repaired: u64,
    /// Records the sanitizer quarantined.
    pub records_quarantined: u64,
    /// Wall-clock seconds of the generate stage.
    pub generate_s: f64,
    /// Wall-clock seconds of the ingest stage (chunk replay + freeze).
    pub ingest_s: f64,
    /// Wall-clock seconds of the fit stage.
    pub fit_s: f64,
    /// Wall-clock seconds of the derive stage.
    pub derive_s: f64,
    /// Wall-clock seconds of the render stage.
    pub render_s: f64,
    /// Ingest throughput, rows per wall-clock second (wall-clock class).
    pub rows_per_s: f64,
}

impl IngestLedgerRow {
    /// Summarize one completed ingest replay.
    pub fn from_report(
        report: &ReproReport,
        parallelism: usize,
        chunk_rows: usize,
        seal_rows: usize,
        ingest: &crate::IngestStats,
    ) -> IngestLedgerRow {
        let (hash, files) = artifact_hash(&report.artifacts);
        let s = &report.health.sanitize;
        IngestLedgerRow {
            schema: INGEST_LEDGER_SCHEMA.to_string(),
            scale: report.scale,
            seed: report.seed,
            parallelism,
            chunk_rows,
            seal_rows,
            chunks: ingest.chunks,
            rows: ingest.rows,
            segments: ingest.segments,
            artifact_hash: format!("{hash:016x}"),
            artifact_files: files,
            artifacts: report.artifacts.len(),
            headlines: report.headlines.len(),
            jobs_failed: report.health.jobs_failed,
            jobs_retried: report.health.jobs_retried,
            records_clean: s.clean,
            records_repaired: s.repaired,
            records_quarantined: s.quarantined,
            generate_s: report.timings.generate_s,
            ingest_s: ingest.ingest_s,
            fit_s: report.timings.fit_s,
            derive_s: report.timings.derive_s,
            render_s: report.timings.render_s,
            rows_per_s: if ingest.ingest_s > 0.0 {
                ingest.rows as f64 / ingest.ingest_s
            } else {
                0.0
            },
        }
    }
}

/// One `serve` run's summary row (schema [`SERVE_LEDGER_SCHEMA`]).
/// `artifact_hash` uses the same FNV-1a scheme as every other row kind,
/// so a serve row is batch-comparable: equal hashes mean the service's
/// final epoch republished the batch artifact set byte for byte.
/// `chunks`, `rows`, `segments`, and `epochs` are deterministic for a
/// given (code, scale, seed, chunk plan, epoch size) tuple — epochs in
/// particular because boundary crossings telescope to
/// `floor(accepted / epoch_rows) + 1` regardless of interleave or
/// parallelism. The stage durations and `rows_per_s` (sustained ingest
/// throughput through the service path) are wall-clock class.
#[derive(Debug, Clone, Serialize)]
pub struct ServeLedgerRow {
    /// Row schema tag ([`SERVE_LEDGER_SCHEMA`]).
    pub schema: String,
    /// The run's `--scale`.
    pub scale: f64,
    /// The run's `--seed`.
    pub seed: u64,
    /// The run's `--parallelism`.
    pub parallelism: usize,
    /// Rows per streamed chunk (`--chunk-rows`).
    pub chunk_rows: usize,
    /// Sealed-segment size threshold (`--seal-rows`).
    pub seal_rows: usize,
    /// Accepted rows per published epoch (`--epoch-rows`).
    pub epoch_rows: usize,
    /// Chunks streamed through the service.
    pub chunks: u64,
    /// Rows offered to the incremental sanitizer.
    pub rows: u64,
    /// Sealed segments across all frozen stores after drain.
    pub segments: u64,
    /// Epochs published (warm crossings plus the final epoch).
    pub epochs: u64,
    /// FNV-1a hash of the artifact file set, as 16 hex digits —
    /// comparable against batch and ingest rows and the pinned golden
    /// value.
    pub artifact_hash: String,
    /// Files in the hashed artifact set.
    pub artifact_files: usize,
    /// Artifacts produced (placeholders included).
    pub artifacts: usize,
    /// Headline numbers produced.
    pub headlines: usize,
    /// Render jobs that failed both attempts.
    pub jobs_failed: usize,
    /// Render jobs that survived on their retry.
    pub jobs_retried: usize,
    /// Records the sanitizer passed through untouched.
    pub records_clean: u64,
    /// Records the sanitizer repaired.
    pub records_repaired: u64,
    /// Records the sanitizer quarantined.
    pub records_quarantined: u64,
    /// Wall-clock seconds of the generate stage.
    pub generate_s: f64,
    /// Wall-clock seconds of the streaming stage (chunks + drain).
    pub ingest_s: f64,
    /// Wall-clock seconds of the fit stage.
    pub fit_s: f64,
    /// Wall-clock seconds of the derive stage.
    pub derive_s: f64,
    /// Wall-clock seconds of the render stage.
    pub render_s: f64,
    /// Sustained ingest throughput, rows per wall-clock second
    /// (wall-clock class).
    pub rows_per_s: f64,
}

impl ServeLedgerRow {
    /// Summarize one completed serve run. `epochs` should count the
    /// final epoch too (i.e. the value *after* `publish_final`).
    pub fn from_report(
        report: &ReproReport,
        parallelism: usize,
        chunk_rows: usize,
        seal_rows: usize,
        epoch_rows: usize,
        stats: &crate::ServeStats,
        epochs: u64,
    ) -> ServeLedgerRow {
        let (hash, files) = artifact_hash(&report.artifacts);
        let s = &report.health.sanitize;
        ServeLedgerRow {
            schema: SERVE_LEDGER_SCHEMA.to_string(),
            scale: report.scale,
            seed: report.seed,
            parallelism,
            chunk_rows,
            seal_rows,
            epoch_rows,
            chunks: stats.chunks,
            rows: stats.rows,
            segments: stats.segments,
            epochs,
            artifact_hash: format!("{hash:016x}"),
            artifact_files: files,
            artifacts: report.artifacts.len(),
            headlines: report.headlines.len(),
            jobs_failed: report.health.jobs_failed,
            jobs_retried: report.health.jobs_retried,
            records_clean: s.clean,
            records_repaired: s.repaired,
            records_quarantined: s.quarantined,
            generate_s: report.timings.generate_s,
            ingest_s: stats.ingest_s,
            fit_s: report.timings.fit_s,
            derive_s: report.timings.derive_s,
            render_s: report.timings.render_s,
            rows_per_s: if stats.ingest_s > 0.0 { stats.rows as f64 / stats.ingest_s } else { 0.0 },
        }
    }
}

/// One `wire-load` campaign's summary row (schema [`LOAD_LEDGER_SCHEMA`]).
/// Every field up to `breaker_trips` is deterministic for a given
/// (code, sessions, seed, fault-rate, pool) tuple — `metrics_hash` in
/// particular is parallelism-invariant, which is what the `chaos-smoke`
/// CI job regression-gates on. The trailing means and `elapsed_s` are
/// wall-clock class.
#[derive(Debug, Clone, Serialize)]
pub struct LoadLedgerRow {
    /// Row schema tag ([`LOAD_LEDGER_SCHEMA`]).
    pub schema: String,
    /// The campaign's `--seed` (fault schedule + backoff jitter).
    pub seed: u64,
    /// The campaign's `--fault-rate`.
    pub fault_rate: f64,
    /// Sessions driven.
    pub sessions: u64,
    /// Servers in the shaped pool.
    pub pool: usize,
    /// The campaign's `--parallelism` (documentation only: nothing
    /// deterministic may depend on it).
    pub parallelism: usize,
    /// FNV-1a of the deterministic metrics JSON, as 16 hex digits: two
    /// rows with equal hashes saw byte-identical deterministic sections.
    pub metrics_hash: String,
    /// Planned healthy completions.
    pub sessions_ok: u64,
    /// Planned retried completions.
    pub sessions_retried: u64,
    /// Planned degraded completions.
    pub sessions_degraded: u64,
    /// Planned abandonments.
    pub sessions_abandoned: u64,
    /// Breaker-skipped sessions.
    pub sessions_skipped: u64,
    /// Breaker trips summed over endpoints.
    pub breaker_trips: u64,
    /// Sessions whose actual fate diverged from the plan (wall-clock
    /// class; 0 on a healthy host).
    pub unexpected_outcomes: u64,
    /// True when no session completed (the NaN-free empty marker).
    pub degraded: bool,
    /// Mean download over completed sessions, Mbps.
    pub mean_down_mbps: f64,
    /// Mean RTT over completed sessions, milliseconds.
    pub mean_latency_ms: f64,
    /// Mean streaming score over completed sessions.
    pub mean_streaming: f64,
    /// Mean gaming score over completed sessions.
    pub mean_gaming: f64,
    /// Mean conferencing score over completed sessions.
    pub mean_conferencing: f64,
    /// Campaign wall time, seconds.
    pub elapsed_s: f64,
}

impl LoadLedgerRow {
    /// Summarize one completed campaign. `deterministic_json` is the
    /// registry snapshot's exact-compare section, hashed with the same
    /// FNV-1a scheme as artifact sets.
    pub fn from_summary(
        summary: &st_speedtest::LoadSummary,
        deterministic_json: &str,
        seed: u64,
        fault_rate: f64,
        pool: usize,
        parallelism: usize,
    ) -> LoadLedgerRow {
        LoadLedgerRow {
            schema: LOAD_LEDGER_SCHEMA.to_string(),
            seed,
            fault_rate,
            sessions: summary.sessions_total,
            pool,
            parallelism,
            metrics_hash: format!("{:016x}", fnv1a(deterministic_json.as_bytes(), FNV_OFFSET)),
            sessions_ok: summary.sessions_ok,
            sessions_retried: summary.sessions_retried,
            sessions_degraded: summary.sessions_degraded,
            sessions_abandoned: summary.sessions_abandoned,
            sessions_skipped: summary.sessions_skipped,
            breaker_trips: summary.breaker_trips,
            unexpected_outcomes: summary.unexpected_outcomes,
            degraded: summary.degraded,
            mean_down_mbps: summary.mean_down_mbps,
            mean_latency_ms: summary.mean_latency_ms,
            mean_streaming: summary.mean_streaming,
            mean_gaming: summary.mean_gaming,
            mean_conferencing: summary.mean_conferencing,
            elapsed_s: summary.elapsed_s,
        }
    }
}

/// Append one row to the JSON Lines ledger at `path`, creating the file
/// on first use. Strictly append-only: existing rows are never touched.
/// Accepts any serializable row type ([`LedgerRow`], [`LoadLedgerRow`]);
/// the `schema` field tells readers apart.
pub fn append_ledger<T: Serialize>(path: &Path, row: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(row)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(file, "{json}")
}

/// Read every row of a ledger back as parsed JSON values, newest last.
/// Blank lines are skipped; a malformed line is an error naming its
/// 1-based line number.
pub fn read_ledger(path: &Path) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = serde_json::from_str(line)
            .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?;
        rows.push(row);
    }
    Ok(rows)
}

/// Incremental reader over a live ledger file: remembers its byte
/// offset between polls and consumes only newline-terminated lines,
/// matching [`append_ledger`]'s crash contract — a torn final line is
/// not yet a row and will be re-read once its writer finishes it. The
/// file not existing yet is an empty poll, not an error, so a console
/// can attach before the first run completes.
pub struct LedgerTail {
    path: PathBuf,
    offset: u64,
}

impl LedgerTail {
    /// Tail the ledger at `path` from its beginning.
    pub fn new(path: impl Into<PathBuf>) -> LedgerTail {
        LedgerTail { path: path.into(), offset: 0 }
    }

    /// The ledger file being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Batch-comparable rows completed since the last poll. `st-load/v1`
    /// rows share the file but have no artifact surface, so they are
    /// skipped rather than errors; any other unparseable row is an
    /// error naming the file. A file that shrank (rotation) restarts
    /// the tail from the top.
    pub fn poll(&mut self) -> Result<Vec<LedgerRow>, String> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("cannot open {}: {e}", self.path.display())),
        };
        let err = |e: std::io::Error| format!("cannot read {}: {e}", self.path.display());
        if file.metadata().map_err(err)?.len() < self.offset {
            self.offset = 0;
        }
        file.seek(SeekFrom::Start(self.offset)).map_err(err)?;
        let mut buf = String::new();
        file.read_to_string(&mut buf).map_err(err)?;
        let mut rows = Vec::new();
        let mut consumed = 0usize;
        while let Some(nl) = buf[consumed..].find('\n') {
            let line = buf[consumed..consumed + nl].trim();
            consumed += nl + 1;
            if line.is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(line)
                .map_err(|e| format!("{}: bad ledger row: {e}", self.path.display()))?;
            if v.get("schema").and_then(Value::as_str) == Some(LOAD_LEDGER_SCHEMA) {
                continue;
            }
            rows.push(LedgerRow::from_value(&v)?);
        }
        self.offset += consumed as u64;
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(id: &str, svg: Option<&str>, json: &str) -> Artifact {
        Artifact {
            id: id.to_string(),
            text: String::new(),
            svg: svg.map(|s| s.to_string()),
            json: json.to_string(),
        }
    }

    #[test]
    fn artifact_hash_is_order_invariant_and_content_sensitive() {
        let a = art("fig01", Some("<svg/>"), "{}");
        let b = art("table1", None, "{\"rows\":1}");
        let fwd = artifact_hash(&[a.clone(), b.clone()]);
        let rev = artifact_hash(&[b.clone(), a.clone()]);
        assert_eq!(fwd, rev, "hash must sort by file name, not input order");
        assert_eq!(fwd.1, 3, "fig01.svg + fig01.json + table1.json");
        let mut changed = a.clone();
        changed.json = "{\"rows\":2}".to_string();
        assert_ne!(artifact_hash(&[changed, b]).0, fwd.0);
    }

    #[test]
    fn ledger_appends_one_parseable_line_per_row() {
        let dir = std::env::temp_dir().join(format!("st-ledger-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_ledger.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut row = LedgerRow {
            schema: LEDGER_SCHEMA.to_string(),
            scale: 0.004,
            seed: 2024,
            parallelism: 1,
            artifact_hash: format!("{:016x}", 0xabcdu64),
            artifact_files: 89,
            artifacts: 40,
            headlines: 12,
            jobs_failed: 0,
            jobs_retried: 0,
            records_clean: 1000,
            records_repaired: 0,
            records_quarantined: 0,
            generate_s: 1.0,
            fit_s: 2.0,
            derive_s: 0.1,
            render_s: 3.0,
        };
        append_ledger(&path, &row).expect("first append");
        row.parallelism = 4;
        append_ledger(&path, &row).expect("second append");

        let rows = read_ledger(&path).expect("ledger parses");
        assert_eq!(rows.len(), 2, "append-only: both rows survive");
        for r in &rows {
            assert_eq!(r.get("schema").and_then(Value::as_str), Some(LEDGER_SCHEMA));
            assert_eq!(r.get("artifact_files").and_then(Value::as_u64), Some(89));
        }
        assert_eq!(rows[0].get("parallelism").and_then(Value::as_u64), Some(1));
        assert_eq!(rows[1].get("parallelism").and_then(Value::as_u64), Some(4));
        let _ = std::fs::remove_file(&path);
    }

    fn sample_row() -> LedgerRow {
        LedgerRow {
            schema: LEDGER_SCHEMA.to_string(),
            scale: 0.004,
            seed: 2024,
            parallelism: 1,
            artifact_hash: format!("{:016x}", 0xabcdu64),
            artifact_files: 89,
            artifacts: 40,
            headlines: 12,
            jobs_failed: 0,
            jobs_retried: 0,
            records_clean: 1000,
            records_repaired: 3,
            records_quarantined: 2,
            generate_s: 1.0,
            fit_s: 2.0,
            derive_s: 0.1,
            render_s: 3.0,
        }
    }

    #[test]
    fn parse_round_trips_every_batch_comparable_schema() {
        let mut row = sample_row();
        for schema in BATCH_COMPARABLE_SCHEMAS {
            row.schema = schema.to_string();
            let line = serde_json::to_string(&row).expect("row serializes");
            let back = LedgerRow::parse(&line).expect("row parses back");
            assert_eq!(back.schema, *schema, "the actual schema tag is kept");
            assert_eq!(back.seed, row.seed);
            assert_eq!(back.artifact_hash, row.artifact_hash);
            assert_eq!(back.records_clean, 1000);
        }
        // Superset rows (ingest/serve) parse down to the common subset:
        // extra fields are simply ignored.
        let line = format!(
            "{{\"schema\":\"{INGEST_LEDGER_SCHEMA}\",\"scale\":0.05,\"seed\":7,\
             \"parallelism\":4,\"chunk_rows\":500,\"seal_rows\":4096,\"chunks\":9,\
             \"rows\":100,\"segments\":2,\"artifact_hash\":\"00000000000000aa\",\
             \"artifact_files\":89,\"artifacts\":40,\"headlines\":12,\
             \"jobs_failed\":0,\"jobs_retried\":0,\"records_clean\":98,\
             \"records_repaired\":1,\"records_quarantined\":1,\"generate_s\":1.0,\
             \"ingest_s\":0.5,\"fit_s\":2.0,\"derive_s\":0.1,\"render_s\":3.0,\
             \"rows_per_s\":200.0}}"
        );
        let back = LedgerRow::parse(&line).expect("ingest row parses");
        assert_eq!(back.schema, INGEST_LEDGER_SCHEMA);
        assert_eq!(back.records_clean, 98);
    }

    #[test]
    fn parse_rejects_load_rows_unknown_schemas_and_torn_fields() {
        let load = format!("{{\"schema\":\"{LOAD_LEDGER_SCHEMA}\",\"seed\":1}}");
        assert!(LedgerRow::parse(&load).unwrap_err().contains("not batch-comparable"));
        assert!(LedgerRow::parse("{\"schema\":\"st-mystery/v9\"}")
            .unwrap_err()
            .contains("unknown ledger schema"));
        assert!(LedgerRow::parse("{\"seed\":1}").unwrap_err().contains("schema"));
        assert!(LedgerRow::parse("not json").unwrap_err().contains("bad ledger JSON"));
        // A known schema with missing fields names the first one it
        // needed (the hash is extracted before the counters).
        let torn = format!("{{\"schema\":\"{LEDGER_SCHEMA}\",\"scale\":0.004}}");
        assert!(LedgerRow::parse(&torn).unwrap_err().contains("artifact_hash"));
    }

    #[test]
    fn drift_flags_fire_on_divergence_and_stay_silent_across_run_kinds() {
        let baseline = sample_row();
        // Same deterministic surface, different run kind, different
        // parallelism, different timings: no drift.
        let mut serve = sample_row();
        serve.schema = SERVE_LEDGER_SCHEMA.to_string();
        serve.parallelism = 4;
        serve.render_s = 99.0;
        assert_eq!(serve.drift_against(&baseline), Vec::<String>::new());
        // Divergent counters, hash, and seed each produce a flag.
        let mut bad = sample_row();
        bad.seed = 2025;
        bad.records_quarantined = 7;
        bad.artifact_hash = format!("{:016x}", 0xbeefu64);
        let flags = bad.drift_against(&baseline);
        assert!(flags.iter().any(|f| f.starts_with("seed:")), "{flags:?}");
        assert!(flags.iter().any(|f| f.contains("ledger.records_quarantined")), "{flags:?}");
        assert!(flags.iter().any(|f| f.starts_with("artifact_hash:")), "{flags:?}");
    }

    #[test]
    fn tail_consumes_only_finished_lines_and_skips_load_rows() {
        use std::io::Write as _;
        let dir = std::env::temp_dir().join(format!("st-tail-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_ledger.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut tail = LedgerTail::new(&path);
        assert_eq!(tail.poll().expect("missing file is empty").len(), 0);

        append_ledger(&path, &sample_row()).expect("append");
        let rows = tail.poll().expect("first poll");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].seed, 2024);
        assert_eq!(tail.poll().expect("steady state").len(), 0, "no re-reads");

        // A load row shares the file and is skipped; a torn final line
        // (no newline yet) is not consumed until its writer finishes.
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).expect("reopen ledger");
        writeln!(file, "{{\"schema\":\"{LOAD_LEDGER_SCHEMA}\",\"seed\":1}}").unwrap();
        let full = serde_json::to_string(&sample_row()).unwrap();
        let (head, rest) = full.split_at(10);
        write!(file, "{head}").unwrap();
        file.flush().unwrap();
        assert_eq!(tail.poll().expect("torn line poll").len(), 0);
        // Finish the torn line into a full row: now it arrives, once.
        writeln!(file, "{rest}").unwrap();
        drop(file);
        let rows = tail.poll().expect("completed line poll");
        assert_eq!(rows.len(), 1, "exactly the finished row, the load row skipped");
        let _ = std::fs::remove_file(&path);
    }
}
