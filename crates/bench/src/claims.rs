//! Automated paper-vs-measured shape verification.
//!
//! Each [`Claim`] encodes one qualitative result of the paper as a
//! machine-checkable predicate over the generated analyses, together with
//! the paper's reference value. The repro binary evaluates all of them and
//! prints a pass/fail table, so every regeneration self-audits against the
//! paper instead of relying on a human diff of EXPERIMENTS.md.

use st_analysis::{fig01, fig02, fig08, fig09, fig10, fig11, fig12, fig13, table2, CityAnalysis};

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Short id ("fig09b-band-gap").
    pub id: String,
    /// What the paper says.
    pub paper: String,
    /// What this run measured.
    pub measured: String,
    /// Whether the shape holds.
    pub holds: bool,
}

fn claim(id: &str, paper: &str, measured: String, holds: bool) -> Claim {
    Claim { id: id.into(), paper: paper.into(), measured, holds }
}

/// Evaluate every shape claim against the four generated city analyses
/// (City-A first, as in [`crate::run_all`]).
pub fn check_all(analyses: &[CityAnalysis]) -> Vec<Claim> {
    assert_eq!(analyses.len(), 4, "need all four cities");
    let a = &analyses[0];
    let mut out = Vec::new();

    // Fig. 1 — contextualization spreads the median severalfold.
    let f1 = fig01::run(a);
    if f1.medians.len() >= 3 {
        let (overall, tier1) = (f1.medians[0], f1.medians[1]);
        let ethernet = *f1.medians.last().expect("non-empty");
        out.push(claim(
            "fig01-tier1-below-overall",
            "lowest tier median ~6x below the city median",
            format!("{:.1}x below", overall / tier1),
            overall / tier1 > 2.0,
        ));
        out.push(claim(
            "fig01-ethernet-above-overall",
            "top-tier Ethernet median ~7x above the city median",
            format!("{:.1}x above", ethernet / overall),
            ethernet / overall > 3.0,
        ));
    }

    // Fig. 2 — uploads are more consistent than downloads.
    let f2 = fig02::run(a);
    if f2.medians.len() == 2 {
        out.push(claim(
            "fig02-upload-consistency",
            "consistency medians: download 0.58, upload 0.87",
            format!("download {:.2}, upload {:.2}", f2.medians[0], f2.medians[1]),
            f2.medians[1] > f2.medians[0] + 0.05,
        ));
    }

    // Table 2 — BST accuracy > 96% on every state panel.
    let refs: Vec<&CityAnalysis> = analyses.iter().collect();
    let (_, stats) = table2::run(&refs);
    for s in &stats {
        out.push(claim(
            &format!("table2-{}", s.state.to_lowercase()),
            "upload-tier accuracy > 96%",
            format!("{:.2}%", s.upload_accuracy * 100.0),
            s.upload_accuracy > 0.96,
        ));
    }

    // Fig. 8 — α skews to 1.
    let f8 = fig08::run(a);
    if let Some(m) = f8.medians.first() {
        out.push(claim(
            "fig08-alpha-median",
            "per-user-month α median = 1.0",
            format!("{m:.2}"),
            *m >= 0.9,
        ));
    }

    // Fig. 9 — the four local-factor orderings.
    let panels = fig09::run(a);
    if panels[0].medians.len() == 2 {
        out.push(claim(
            "fig09a-ethernet-vs-wifi",
            "Ethernet median ~2.5x the WiFi median (0.71 vs 0.28)",
            format!("{:.1}x", panels[0].medians[1] / panels[0].medians[0]),
            panels[0].medians[1] > panels[0].medians[0] * 1.5,
        ));
    }
    if panels[1].medians.len() == 2 {
        out.push(claim(
            "fig09b-band-gap",
            "5 GHz median ~3.6x the 2.4 GHz median (0.40 vs 0.11)",
            format!("{:.1}x", panels[1].medians[1] / panels[1].medians[0]),
            panels[1].medians[1] > panels[1].medians[0] * 1.5,
        ));
    }
    if panels[2].medians.len() >= 3 {
        let worst = *panels[2].medians.last().expect("non-empty");
        let best =
            panels[2].medians[..panels[2].medians.len() - 1].iter().cloned().fold(0.0f64, f64::max);
        out.push(claim(
            "fig09c-rssi-gap",
            "worst RSSI bin >2x below the best (0.20 vs 0.49+)",
            format!("{:.1}x", best / worst),
            best > worst * 1.5,
        ));
    }
    if panels[3].medians.len() >= 2 {
        let low = panels[3].medians[0];
        let high = *panels[3].medians.last().expect("non-empty");
        out.push(claim(
            "fig09d-memory-gap",
            "<2 GB bin ~3x below >6 GB bin (0.16 vs 0.53)",
            format!("{:.1}x", high / low),
            high > low * 1.2,
        ));
    }

    // Fig. 10 — the bottlenecked majority.
    let (f10, shares) = fig10::run(a);
    out.push(claim(
        "fig10-bottleneck-majority",
        "61% of Android tests face a local bottleneck",
        format!("{:.0}%", shares.local_bottleneck_share * 100.0),
        shares.local_bottleneck_share > 0.5,
    ));
    if f10.medians.len() == 2 {
        out.push(claim(
            "fig10-median-gap",
            "Best median >2x the bottlenecked median (0.52 vs 0.22)",
            format!("{:.1}x", f10.medians[0] / f10.medians[1]),
            f10.medians[0] > f10.medians[1] * 1.4,
        ));
    }

    // Fig. 11 — diurnal volume shape.
    let (vol, _) = fig11::run(a);
    let night_quietest = vol.groups.iter().all(|g| {
        let p: Vec<f64> = g.points.iter().map(|(_, v)| *v).collect();
        p.iter().sum::<f64>() == 0.0 || (p[0] < p[2] && p[0] < p[3])
    });
    out.push(claim(
        "fig11-night-quietest",
        "smallest test share at night, largest afternoon/evening, all tiers",
        if night_quietest { "holds for every tier group" } else { "violated" }.into(),
        night_quietest,
    ));

    // Fig. 12 — time of day is marginal (medians and KS).
    let f12 = fig12::run_default(a);
    let max_spread = f12
        .iter()
        .map(|p| {
            let lo = p.medians.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = p.medians.iter().cloned().fold(0.0f64, f64::max);
            hi - lo
        })
        .fold(0.0f64, f64::max);
    out.push(claim(
        "fig12-marginal-medians",
        "per-bin medians within ~0.08 of each other (e.g. 0.53 vs 0.45)",
        format!("max spread {max_spread:.3}"),
        max_spread < 0.15,
    ));
    let ks = fig12::ks_summary(a, &[1, 2]);
    let max_ks = ks.iter().map(|k| k.max_ks).fold(0.0f64, f64::max);
    out.push(claim(
        "fig12-marginal-ks",
        "no large distribution shift between time bins",
        format!("max pairwise KS {max_ks:.3}"),
        max_ks < 0.2,
    ));

    // Fig. 13 — the vendor gap.
    let (_, gaps) = fig13::run(a);
    let all_lag = gaps.iter().all(|g| g.ookla_median >= g.mlab_median * 0.95);
    out.push(claim(
        "fig13-mlab-lags-everywhere",
        "M-Lab median ≤ Ookla median in every tier group",
        if all_lag { "holds in every group" } else { "violated" }.into(),
        all_lag,
    ));
    let max_ratio = gaps.iter().map(|g| g.ratio).fold(0.0f64, f64::max);
    out.push(claim(
        "fig13-max-gap",
        "largest median gap ≈ 2x (Tier 4)",
        format!("{max_ratio:.2}x"),
        (1.3..=3.0).contains(&max_ratio),
    ));

    out
}

/// Render claims as a markdown table.
pub fn render_claims(claims: &[Claim]) -> String {
    let mut out = String::from("| claim | paper | measured | holds |\n|---|---|---|---|\n");
    for c in claims {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            c.id,
            c.paper,
            c.measured,
            if c.holds { "✅" } else { "❌" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_analyses;

    #[test]
    fn all_claims_hold_at_moderate_scale() {
        // The repro binary's default scale: thin per-bin subsets (e.g.
        // tier-4 night tests) need this much data to escape noise.
        let analyses = build_analyses(0.05, 20220707);
        let claims = check_all(&analyses);
        assert!(claims.len() >= 14, "claims evaluated: {}", claims.len());
        let failed: Vec<&Claim> = claims.iter().filter(|c| !c.holds).collect();
        assert!(failed.is_empty(), "failed claims: {failed:#?}");
        let md = render_claims(&claims);
        assert!(md.contains("fig13-max-gap"));
    }
}
