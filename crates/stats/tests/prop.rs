//! Property-based tests for the statistical substrate.

use proptest::prelude::*;
use st_stats::{
    consistency_factor, mean, quantile, Bandwidth, Ecdf, GaussianMixture, GmmConfig, Histogram,
    KernelDensity, Summary,
};

/// Strategy: a non-empty vector of plausible speed values.
fn speeds() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..2000.0, 1..200)
}

/// Strategy: larger samples for estimators that need mass.
fn big_speeds() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..2000.0, 30..300)
}

proptest! {
    #[test]
    fn quantile_is_bounded_by_extremes(data in speeds(), q in 0.0f64..=1.0) {
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = quantile(&data, q).unwrap();
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn quantile_is_monotone_in_q(data in speeds(), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let va = quantile(&data, qa).unwrap();
        let vb = quantile(&data, qb).unwrap();
        prop_assert!(va <= vb + 1e-9);
    }

    #[test]
    fn mean_is_between_extremes(data in speeds()) {
        let m = mean(&data);
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn summary_orders_its_quantiles(data in speeds()) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.max + 1e-9);
        prop_assert_eq!(s.count, data.len());
    }

    #[test]
    fn consistency_factor_is_positive(data in speeds()) {
        // p95 of positive data is positive, so the factor exists and is > 0.
        let f = consistency_factor(&data).unwrap();
        prop_assert!(f > 0.0);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(data in speeds(), xs in prop::collection::vec(-10.0f64..2100.0, 2..20)) {
        let e = Ecdf::new(&data).unwrap();
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &xs {
            let v = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
        prop_assert_eq!(e.eval(f64::INFINITY), 1.0);
    }

    #[test]
    fn ecdf_plot_points_end_at_one(data in speeds()) {
        let e = Ecdf::new(&data).unwrap();
        let pts = e.plot_points(50);
        prop_assert_eq!(pts.last().unwrap().1, 1.0);
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn kde_density_is_nonnegative_and_normalized(data in big_speeds()) {
        let kde = KernelDensity::fit(&data, Bandwidth::Silverman).unwrap();
        let grid = kde.auto_grid(800).unwrap();
        let dx = grid[1].0 - grid[0].0;
        let mut integral = 0.0;
        for &(_, y) in &grid {
            prop_assert!(y >= 0.0);
            integral += y * dx;
        }
        // Grid covers ±3 bandwidths past the data, so ≥ 99% of the mass.
        prop_assert!((0.9..=1.1).contains(&integral), "integral {integral}");
    }

    #[test]
    fn histogram_conserves_counts(data in speeds(), bins in 1usize..40) {
        let h = Histogram::from_data(&data, bins).unwrap();
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(
            binned + h.underflow() + h.overflow(),
            data.len() as u64
        );
        let frac_sum: f64 = h.fractions().iter().sum();
        prop_assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gmm_responsibilities_form_a_distribution(
        data in prop::collection::vec(0.01f64..100.0, 10..120),
        k in 1usize..4,
        x in 0.0f64..100.0,
    ) {
        let mut rng = rand::rngs::mock::StepRng::new(42, 13);
        if let Ok(gm) = GaussianMixture::fit(&data, GmmConfig::with_k(k), &mut rng) {
            let r = gm.responsibilities(x);
            prop_assert_eq!(r.len(), gm.k());
            let total: f64 = r.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
            for p in r {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
            }
            let pred = gm.predict(x);
            prop_assert!(pred < gm.k());
        }
    }

    #[test]
    fn gmm_weights_sum_to_one(
        data in prop::collection::vec(0.01f64..100.0, 12..120),
        k in 1usize..4,
    ) {
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        if let Ok(gm) = GaussianMixture::fit(&data, GmmConfig::with_k(k), &mut rng) {
            let total: f64 = gm.components().iter().map(|c| c.weight).sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "weights sum {total}");
            for c in gm.components() {
                prop_assert!(c.var > 0.0);
                prop_assert!(c.mean.is_finite());
            }
            // Means sorted ascending.
            for w in gm.components().windows(2) {
                prop_assert!(w[0].mean <= w[1].mean);
            }
        }
    }

    #[test]
    fn gmm_seeded_fit_is_deterministic(
        data in prop::collection::vec(0.01f64..100.0, 12..80),
        seeds in prop::collection::vec(1.0f64..90.0, 1..4),
    ) {
        let a = GaussianMixture::fit_with_means(&data, &seeds, GmmConfig::default());
        let b = GaussianMixture::fit_with_means(&data, &seeds, GmmConfig::default());
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "one fit succeeded, the other failed"),
        }
    }
}

proptest! {
    #[test]
    fn gini_is_bounded_and_scale_invariant(
        data in prop::collection::vec(0.0f64..1000.0, 2..100),
        scale in 0.1f64..100.0,
    ) {
        use st_stats::gini;
        if let Ok(g) = gini(&data) {
            prop_assert!((0.0..=1.0).contains(&g));
            let scaled: Vec<f64> = data.iter().map(|v| v * scale).collect();
            let gs = gini(&scaled).unwrap();
            prop_assert!((g - gs).abs() < 1e-9, "gini not scale-invariant: {g} vs {gs}");
        }
    }

    #[test]
    fn ks_statistic_is_symmetric_and_bounded(
        a in prop::collection::vec(0.0f64..100.0, 1..80),
        b in prop::collection::vec(0.0f64..100.0, 1..80),
    ) {
        use st_stats::ks_test;
        let ab = ks_test(&a, &b).unwrap();
        let ba = ks_test(&b, &a).unwrap();
        prop_assert!((0.0..=1.0).contains(&ab.statistic));
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
        prop_assert!((ab.statistic - ba.statistic).abs() < 1e-12, "not symmetric");
    }

    #[test]
    fn ks_of_identical_samples_is_zero(a in prop::collection::vec(0.0f64..100.0, 1..80)) {
        use st_stats::ks_test;
        let t = ks_test(&a, &a).unwrap();
        prop_assert!(t.statistic < 1e-12);
    }

    /// A flat-topped maximum must yield exactly one peak, anchored at the
    /// plateau's left edge (the left-strict / right-inclusive rule).
    #[test]
    fn equal_max_plateau_yields_one_left_anchored_peak(
        plateau_len in 2usize..6,
        base in 0.05f64..0.3,
    ) {
        use st_stats::kde::find_peaks_on_grid;
        let mut grid: Vec<(f64, f64)> = vec![(0.0, base), (1.0, base * 1.5)];
        for i in 0..plateau_len {
            grid.push((2.0 + i as f64, 1.0));
        }
        grid.push((2.0 + plateau_len as f64, base * 1.5));
        grid.push((3.0 + plateau_len as f64, base));
        let peaks = find_peaks_on_grid(&grid, 0.1);
        prop_assert_eq!(peaks.len(), 1, "one peak for one plateau: {:?}", &peaks);
        prop_assert_eq!(peaks[0].x, 2.0, "anchored at the plateau's left edge");
    }

    #[test]
    fn bootstrap_median_ci_contains_its_estimate(
        data in prop::collection::vec(0.0f64..500.0, 5..80),
        seed in 0u64..100,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use st_stats::median_ci;
        let mut rng = StdRng::seed_from_u64(seed);
        let ci = median_ci(&data, 100, 0.95, &mut rng).unwrap();
        prop_assert!(ci.lo <= ci.hi);
        prop_assert!(ci.contains(ci.estimate), "{ci:?}");
    }

    /// The blocked KDE kernel is an optimization, not a numeric change:
    /// every probe point must match the scalar reference bit-for-bit,
    /// including probes far outside the sample (empty window) and sample
    /// sizes straddling the block size.
    #[test]
    fn blocked_pdf_matches_scalar_reference_bitwise(
        data in prop::collection::vec(0.01f64..2000.0, 1..200),
        probes in prop::collection::vec(-500.0f64..2500.0, 1..20),
    ) {
        let kde = KernelDensity::fit(&data, Bandwidth::Silverman).unwrap();
        let (sorted, h) = (kde.data(), kde.bandwidth());
        for &x in &probes {
            let fast = kde.pdf(x);
            let slow = st_stats::kde::reference_pdf(sorted, h, x);
            prop_assert_eq!(fast.to_bits(), slow.to_bits(),
                "pdf({}) = {} vs reference {}", x, fast, slow);
        }
    }

    /// The two-pointer window advance in `grid` must agree with the
    /// binary-search window in `pdf` — and both with the reference — at
    /// every grid point, for any grid resolution.
    #[test]
    fn grid_matches_scalar_reference_bitwise(
        data in prop::collection::vec(0.01f64..2000.0, 2..160),
        points in 2usize..300,
    ) {
        let kde = KernelDensity::fit(&data, Bandwidth::Silverman).unwrap();
        let grid = kde.auto_grid(points).unwrap();
        prop_assert_eq!(grid.len(), points);
        for &(x, y) in &grid {
            let slow = st_stats::kde::reference_pdf(kde.data(), kde.bandwidth(), x);
            prop_assert_eq!(y.to_bits(), slow.to_bits(), "grid({x})");
        }
    }

    /// Exercise sample sizes right at the block boundary (the chunked
    /// accumulator's seam): KERNEL_BLOCK-1, KERNEL_BLOCK, KERNEL_BLOCK+1,
    /// and 2×KERNEL_BLOCK must all fold partials in the same order as the
    /// reference's explicit bookkeeping.
    #[test]
    fn block_boundary_sizes_match_reference(
        seed in 0.01f64..100.0,
        delta in 0usize..4,
        x in 0.0f64..120.0,
    ) {
        use st_stats::kde::KERNEL_BLOCK;
        let n = [KERNEL_BLOCK - 1, KERNEL_BLOCK, KERNEL_BLOCK + 1, 2 * KERNEL_BLOCK][delta];
        let data: Vec<f64> = (0..n).map(|i| seed + i as f64 * 0.37).collect();
        let kde = KernelDensity::fit(&data, Bandwidth::Silverman).unwrap();
        let fast = kde.pdf(x);
        let slow = st_stats::kde::reference_pdf(kde.data(), kde.bandwidth(), x);
        prop_assert_eq!(fast.to_bits(), slow.to_bits());
    }

    /// One columnar EM step must be bit-identical to the retained scalar
    /// row-major step: same log-likelihood, same component parameters,
    /// same background weight, with and without a background column and
    /// with frozen or free means.
    #[test]
    fn columnar_em_step_matches_scalar_reference_bitwise(
        data in prop::collection::vec(0.01f64..100.0, 4..150),
        means in prop::collection::vec(1.0f64..90.0, 1..4),
        vars in prop::collection::vec(0.5f64..25.0, 1..4),
        with_background in any::<bool>(),
        update_means in any::<bool>(),
    ) {
        use st_stats::gmm::{em_step, reference_em_step, Component};
        let k = means.len().min(vars.len());
        let comps: Vec<Component> = (0..k)
            .map(|c| Component { weight: 1.0 / k as f64, mean: means[c], var: vars[c] })
            .collect();
        let background = with_background.then(|| (0.03, (1.0 / 100.0f64).ln()));
        let var_floor = 1e-6;

        let mut fast_comps = comps.clone();
        let mut fast_bg = background;
        let cols = k + usize::from(with_background);
        let mut resp = vec![0.0f64; data.len() * cols];
        let fast_ll =
            em_step(&data, &mut fast_comps, &mut fast_bg, &mut resp, var_floor, update_means);

        let mut slow_comps = comps;
        let mut slow_bg = background;
        let slow_ll =
            reference_em_step(&data, &mut slow_comps, &mut slow_bg, var_floor, update_means);

        prop_assert_eq!(fast_ll.to_bits(), slow_ll.to_bits(), "log-likelihood");
        for (f, s) in fast_comps.iter().zip(&slow_comps) {
            prop_assert_eq!(f.weight.to_bits(), s.weight.to_bits(), "weight");
            prop_assert_eq!(f.mean.to_bits(), s.mean.to_bits(), "mean");
            prop_assert_eq!(f.var.to_bits(), s.var.to_bits(), "var");
        }
        match (fast_bg, slow_bg) {
            (None, None) => {}
            (Some((fw, fl)), Some((sw, sl))) => {
                prop_assert_eq!(fw.to_bits(), sw.to_bits(), "background weight");
                prop_assert_eq!(fl.to_bits(), sl.to_bits(), "background log-density");
            }
            other => prop_assert!(false, "background presence diverged: {:?}", other),
        }
    }

    /// Iterating the columnar step keeps matching the reference: bit drift
    /// cannot accumulate across EM iterations.
    #[test]
    fn repeated_em_steps_stay_bit_identical(
        data in prop::collection::vec(0.01f64..100.0, 8..80),
        iters in 1usize..6,
    ) {
        use st_stats::gmm::{em_step, reference_em_step, Component};
        let comps = vec![
            Component { weight: 0.5, mean: 25.0, var: 9.0 },
            Component { weight: 0.5, mean: 75.0, var: 9.0 },
        ];
        let mut fast_comps = comps.clone();
        let mut slow_comps = comps;
        let (mut fast_bg, mut slow_bg) = (None, None);
        let mut resp = vec![0.0f64; data.len() * 2];
        for it in 0..iters {
            let f = em_step(&data, &mut fast_comps, &mut fast_bg, &mut resp, 1e-6, true);
            let s = reference_em_step(&data, &mut slow_comps, &mut slow_bg, 1e-6, true);
            prop_assert_eq!(f.to_bits(), s.to_bits(), "iteration {}", it);
        }
        prop_assert_eq!(fast_comps, slow_comps);
    }

    #[test]
    fn gmm2d_responsibilities_are_a_simplex(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..40.0), 4..60),
        probe in (0.0f64..100.0, 0.0f64..40.0),
    ) {
        use st_stats::GaussianMixture2d;
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        if let Ok(gm) =
            GaussianMixture2d::fit_with_means(&xs, &ys, &[(25.0, 10.0), (75.0, 30.0)], 60, 1e-6)
        {
            let r = gm.responsibilities(probe.0, probe.1);
            prop_assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            for c in gm.components() {
                prop_assert!(c.cov.is_positive_definite(), "{:?}", c.cov);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&c.weight));
            }
            prop_assert!(gm.predict(probe.0, probe.1) < gm.k());
        }
    }
}

#[test]
fn plateau_touching_grid_edge_is_not_a_peak() {
    use st_stats::kde::find_peaks_on_grid;
    // Maximum plateau begins at index 0: interior points on the plateau
    // fail the left-strict test, so no peak is reported. The guard keeps
    // a clipped density ramp from minting a phantom cluster.
    let leading = vec![(0.0, 1.0), (1.0, 1.0), (2.0, 1.0), (3.0, 0.4), (4.0, 0.2)];
    assert!(find_peaks_on_grid(&leading, 0.05).is_empty());
    // Same at the right edge: the plateau's left entry point is a peak
    // (left-strict holds, right-inclusive holds), but only one.
    let trailing = vec![(0.0, 0.2), (1.0, 0.4), (2.0, 1.0), (3.0, 1.0), (4.0, 1.0)];
    let peaks = find_peaks_on_grid(&trailing, 0.05);
    assert_eq!(peaks.len(), 1);
    assert_eq!(peaks[0].x, 2.0);
}

#[test]
fn two_point_plateau_mid_grid_reports_single_peak() {
    use st_stats::kde::find_peaks_on_grid;
    let grid = vec![(0.0, 0.1), (1.0, 0.5), (2.0, 1.0), (3.0, 1.0), (4.0, 0.5), (5.0, 0.1)];
    let peaks = find_peaks_on_grid(&grid, 0.05);
    assert_eq!(peaks.len(), 1, "{peaks:?}");
    assert_eq!(peaks[0].x, 2.0);
    assert_eq!(peaks[0].density, 1.0);
}
