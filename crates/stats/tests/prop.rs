//! Property-based tests for the statistical substrate.

use proptest::prelude::*;
use st_stats::{
    consistency_factor, mean, quantile, Bandwidth, Ecdf, GaussianMixture, GmmConfig, Histogram,
    KernelDensity, Summary,
};

/// Strategy: a non-empty vector of plausible speed values.
fn speeds() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..2000.0, 1..200)
}

/// Strategy: larger samples for estimators that need mass.
fn big_speeds() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..2000.0, 30..300)
}

proptest! {
    #[test]
    fn quantile_is_bounded_by_extremes(data in speeds(), q in 0.0f64..=1.0) {
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = quantile(&data, q).unwrap();
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn quantile_is_monotone_in_q(data in speeds(), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let va = quantile(&data, qa).unwrap();
        let vb = quantile(&data, qb).unwrap();
        prop_assert!(va <= vb + 1e-9);
    }

    #[test]
    fn mean_is_between_extremes(data in speeds()) {
        let m = mean(&data);
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn summary_orders_its_quantiles(data in speeds()) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.max + 1e-9);
        prop_assert_eq!(s.count, data.len());
    }

    #[test]
    fn consistency_factor_is_positive(data in speeds()) {
        // p95 of positive data is positive, so the factor exists and is > 0.
        let f = consistency_factor(&data).unwrap();
        prop_assert!(f > 0.0);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(data in speeds(), xs in prop::collection::vec(-10.0f64..2100.0, 2..20)) {
        let e = Ecdf::new(&data).unwrap();
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &xs {
            let v = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
        prop_assert_eq!(e.eval(f64::INFINITY), 1.0);
    }

    #[test]
    fn ecdf_plot_points_end_at_one(data in speeds()) {
        let e = Ecdf::new(&data).unwrap();
        let pts = e.plot_points(50);
        prop_assert_eq!(pts.last().unwrap().1, 1.0);
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn kde_density_is_nonnegative_and_normalized(data in big_speeds()) {
        let kde = KernelDensity::fit(&data, Bandwidth::Silverman).unwrap();
        let grid = kde.auto_grid(800).unwrap();
        let dx = grid[1].0 - grid[0].0;
        let mut integral = 0.0;
        for &(_, y) in &grid {
            prop_assert!(y >= 0.0);
            integral += y * dx;
        }
        // Grid covers ±3 bandwidths past the data, so ≥ 99% of the mass.
        prop_assert!((0.9..=1.1).contains(&integral), "integral {integral}");
    }

    #[test]
    fn histogram_conserves_counts(data in speeds(), bins in 1usize..40) {
        let h = Histogram::from_data(&data, bins).unwrap();
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(
            binned + h.underflow() + h.overflow(),
            data.len() as u64
        );
        let frac_sum: f64 = h.fractions().iter().sum();
        prop_assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gmm_responsibilities_form_a_distribution(
        data in prop::collection::vec(0.01f64..100.0, 10..120),
        k in 1usize..4,
        x in 0.0f64..100.0,
    ) {
        let mut rng = rand::rngs::mock::StepRng::new(42, 13);
        if let Ok(gm) = GaussianMixture::fit(&data, GmmConfig::with_k(k), &mut rng) {
            let r = gm.responsibilities(x);
            prop_assert_eq!(r.len(), gm.k());
            let total: f64 = r.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
            for p in r {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
            }
            let pred = gm.predict(x);
            prop_assert!(pred < gm.k());
        }
    }

    #[test]
    fn gmm_weights_sum_to_one(
        data in prop::collection::vec(0.01f64..100.0, 12..120),
        k in 1usize..4,
    ) {
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        if let Ok(gm) = GaussianMixture::fit(&data, GmmConfig::with_k(k), &mut rng) {
            let total: f64 = gm.components().iter().map(|c| c.weight).sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "weights sum {total}");
            for c in gm.components() {
                prop_assert!(c.var > 0.0);
                prop_assert!(c.mean.is_finite());
            }
            // Means sorted ascending.
            for w in gm.components().windows(2) {
                prop_assert!(w[0].mean <= w[1].mean);
            }
        }
    }

    #[test]
    fn gmm_seeded_fit_is_deterministic(
        data in prop::collection::vec(0.01f64..100.0, 12..80),
        seeds in prop::collection::vec(1.0f64..90.0, 1..4),
    ) {
        let a = GaussianMixture::fit_with_means(&data, &seeds, GmmConfig::default());
        let b = GaussianMixture::fit_with_means(&data, &seeds, GmmConfig::default());
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "one fit succeeded, the other failed"),
        }
    }
}

proptest! {
    #[test]
    fn gini_is_bounded_and_scale_invariant(
        data in prop::collection::vec(0.0f64..1000.0, 2..100),
        scale in 0.1f64..100.0,
    ) {
        use st_stats::gini;
        if let Ok(g) = gini(&data) {
            prop_assert!((0.0..=1.0).contains(&g));
            let scaled: Vec<f64> = data.iter().map(|v| v * scale).collect();
            let gs = gini(&scaled).unwrap();
            prop_assert!((g - gs).abs() < 1e-9, "gini not scale-invariant: {g} vs {gs}");
        }
    }

    #[test]
    fn ks_statistic_is_symmetric_and_bounded(
        a in prop::collection::vec(0.0f64..100.0, 1..80),
        b in prop::collection::vec(0.0f64..100.0, 1..80),
    ) {
        use st_stats::ks_test;
        let ab = ks_test(&a, &b).unwrap();
        let ba = ks_test(&b, &a).unwrap();
        prop_assert!((0.0..=1.0).contains(&ab.statistic));
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
        prop_assert!((ab.statistic - ba.statistic).abs() < 1e-12, "not symmetric");
    }

    #[test]
    fn ks_of_identical_samples_is_zero(a in prop::collection::vec(0.0f64..100.0, 1..80)) {
        use st_stats::ks_test;
        let t = ks_test(&a, &a).unwrap();
        prop_assert!(t.statistic < 1e-12);
    }

    #[test]
    fn bootstrap_median_ci_contains_its_estimate(
        data in prop::collection::vec(0.0f64..500.0, 5..80),
        seed in 0u64..100,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use st_stats::median_ci;
        let mut rng = StdRng::seed_from_u64(seed);
        let ci = median_ci(&data, 100, 0.95, &mut rng).unwrap();
        prop_assert!(ci.lo <= ci.hi);
        prop_assert!(ci.contains(ci.estimate), "{ci:?}");
    }

    #[test]
    fn gmm2d_responsibilities_are_a_simplex(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..40.0), 4..60),
        probe in (0.0f64..100.0, 0.0f64..40.0),
    ) {
        use st_stats::GaussianMixture2d;
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        if let Ok(gm) =
            GaussianMixture2d::fit_with_means(&xs, &ys, &[(25.0, 10.0), (75.0, 30.0)], 60, 1e-6)
        {
            let r = gm.responsibilities(probe.0, probe.1);
            prop_assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            for c in gm.components() {
                prop_assert!(c.cov.is_positive_definite(), "{:?}", c.cov);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&c.weight));
            }
            prop_assert!(gm.predict(probe.0, probe.1) < gm.k());
        }
    }
}
