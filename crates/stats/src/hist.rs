//! Fixed-width histograms.
//!
//! The paper's density figures report "Fraction of Tests" per speed bin;
//! [`Histogram`] provides that binning, while [`crate::kde`] provides the
//! smooth density overlay.

use crate::error::{validate_sample, StatsError};
use crate::Result;

/// A fixed-width histogram over `[lo, hi)` with `bins` equal-width bins.
///
/// Values outside the range are counted in `underflow` / `overflow` rather
/// than silently dropped, so totals always reconcile.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create an empty histogram over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
            return Err(StatsError::InvalidParameter { what: "histogram range", value: hi - lo });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter { what: "bins", value: 0.0 });
        }
        Ok(Histogram { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0, total: 0 })
    }

    /// Build a histogram spanning the data range exactly.
    pub fn from_data(data: &[f64], bins: usize) -> Result<Self> {
        validate_sample(data)?;
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Widen a degenerate range so single-valued samples still bin.
        let (lo, hi) = if hi > lo { (lo, hi + (hi - lo) * 1e-9) } else { (lo - 0.5, lo + 0.5) };
        let mut h = Histogram::new(lo, hi, bins)?;
        for &v in data {
            h.add(v);
        }
        Ok(h)
    }

    /// Record one observation.
    pub fn add(&mut self, v: f64) {
        self.total += 1;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((v - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center x-coordinate of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// "Fraction of tests" per bin — the y-axis used throughout the paper's
    /// density figures: counts normalized by the total (in-range) count.
    pub fn fractions(&self) -> Vec<f64> {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / in_range as f64).collect()
    }

    /// Probability density per bin (fractions divided by bin width), which
    /// integrates to 1 over the in-range mass.
    pub fn density(&self) -> Vec<f64> {
        let w = self.bin_width();
        self.fractions().into_iter().map(|f| f / w).collect()
    }

    /// `(bin_center, fraction)` pairs for plotting.
    pub fn plot_points(&self) -> Vec<(f64, f64)> {
        self.fractions().into_iter().enumerate().map(|(i, f)| (self.bin_center(i), f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for v in [0.0, 1.9, 2.0, 5.5, 9.99] {
            h.add(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-1.0);
        h.add(2.0);
        h.add(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn fractions_sum_to_one() {
        let data: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let h = Histogram::from_data(&data, 10).unwrap();
        let s: f64 = h.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::from_data(&data, 20).unwrap();
        let integral: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_single_value_sample() {
        let h = Histogram::from_data(&[7.0, 7.0, 7.0], 4).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn invalid_construction() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }
}
