//! Gaussian kernel density estimation with peak finding.
//!
//! The first step of each BST stage (paper §4.2) applies KDE to the
//! upload- or download-speed sample to *count* the clusters present — the
//! number of distinct peaks tells the pipeline how many mixture components
//! to fit. This module implements:
//!
//! * a Gaussian-kernel density estimator with Silverman / Scott / manual
//!   bandwidth selection,
//! * grid evaluation, and
//! * a peak finder with prominence filtering, so shoulder wiggles in a
//!   heavy-tailed speed distribution are not mistaken for plan tiers.
//!
//! # Kernel contract (DESIGN.md §15)
//!
//! `fit` keeps the sample **sorted ascending**. Every density evaluation
//! restricts itself to the contiguous window of points within 8 bandwidths
//! of the query (`xi > x - 8h && xi < x + 8h`, strict on both sides) and
//! accumulates Gaussian kernels over that window in fixed blocks of
//! [`KERNEL_BLOCK`] points: each block is summed sequentially in ascending
//! data order, and the per-block partial sums are folded in block order.
//! The accumulation order is therefore a pure function of the sorted
//! sample, the bandwidth, and the query point — never of thread count or
//! caller — which is what keeps grid artifacts byte-identical at any
//! `--parallelism`. [`reference_pdf`] is the executable statement of this
//! contract; the proptests assert the production kernels match it
//! bit-for-bit.

use crate::describe::{quantile_sorted, std_dev};
use crate::error::{validate_sample, StatsError};
use crate::Result;

const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Fixed accumulation block size of the density kernels (see the module
/// docs). Exposed so tests can probe block-boundary window sizes.
pub const KERNEL_BLOCK: usize = 64;

/// Kernels beyond this many bandwidths contribute < 1e-14 and are skipped.
const CUTOFF_SIGMAS: f64 = 8.0;

/// Bandwidth selection rule for [`KernelDensity`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bandwidth {
    /// Silverman's rule of thumb:
    /// `0.9 * min(sigma, IQR/1.34) * n^(-1/5)`.
    Silverman,
    /// Silverman's rule scaled by the given factor, computed from the one
    /// sorted copy `fit` already makes (no second clone+sort). Falls back
    /// to the unscaled Silverman bandwidth when the scaled value is not
    /// positive, matching the historical behaviour of the free-standing
    /// `scaled_silverman` helper.
    ScaledSilverman(f64),
    /// Scott's rule: `1.06 * sigma * n^(-1/5)`.
    Scott,
    /// A fixed bandwidth supplied by the caller (must be positive).
    Fixed(f64),
}

/// A detected density peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// x-position of the local maximum.
    pub x: f64,
    /// density value at the maximum.
    pub density: f64,
    /// prominence: height above the higher of the two flanking minima.
    pub prominence: f64,
}

/// A fitted Gaussian kernel density estimator.
///
/// The backing sample is stored sorted ascending and the data bounds are
/// cached at fit time, so repeated `auto_grid`/`pdf` calls never re-scan
/// the sample for extremes or re-sort it for bandwidth selection.
#[derive(Debug, Clone)]
pub struct KernelDensity {
    /// The sample, sorted ascending.
    data: Vec<f64>,
    bandwidth: f64,
    /// Cached sample minimum (`data[0]`).
    min: f64,
    /// Cached sample maximum (`data[n-1]`).
    max: f64,
}

impl KernelDensity {
    /// Fit a KDE to `data` using the given bandwidth rule.
    ///
    /// Sorts the sample once; Silverman-family rules reuse that sorted
    /// copy for their IQR term instead of cloning and sorting again.
    pub fn fit(data: &[f64], rule: Bandwidth) -> Result<Self> {
        validate_sample(data)?;
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
        let bandwidth = match rule {
            Bandwidth::Fixed(h) => {
                if h <= 0.0 || !h.is_finite() {
                    return Err(StatsError::InvalidParameter { what: "bandwidth", value: h });
                }
                h
            }
            Bandwidth::Silverman => silverman_with_sorted(data, &sorted),
            Bandwidth::ScaledSilverman(scale) => {
                let plain = silverman_with_sorted(data, &sorted);
                let scaled = plain * scale;
                if scaled > 0.0 {
                    scaled
                } else {
                    plain
                }
            }
            Bandwidth::Scott => scott_bandwidth(data),
        };
        let (min, max) = (sorted[0], *sorted.last().expect("validated non-empty"));
        if bandwidth <= 0.0 || !bandwidth.is_finite() {
            // Degenerate sample (zero spread): fall back to a tiny width so
            // the density is a spike at the common value instead of an
            // error. The width derives from the largest magnitude in the
            // sample, so it is invariant under sample permutation.
            let fallback = min.abs().max(max.abs()).max(1.0) * 1e-3;
            return Ok(KernelDensity { data: sorted, bandwidth: fallback, min, max });
        }
        Ok(KernelDensity { data: sorted, bandwidth, min, max })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// The backing sample, sorted ascending.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Number of samples backing the estimate.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no samples back the estimate (unreachable via `fit`).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Density estimate at a single point.
    ///
    /// Finds the 8-bandwidth window by binary search on the sorted sample
    /// and sums kernels over it with the blocked accumulation contract, so
    /// the result is bit-identical to the same point evaluated via
    /// [`KernelDensity::grid`].
    pub fn pdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let cut = CUTOFF_SIGMAS * h;
        let i0 = self.data.partition_point(|&v| v <= x - cut);
        let i1 = self.data.partition_point(|&v| v < x + cut);
        let norm = INV_SQRT_2PI / (self.data.len() as f64 * h);
        blocked_kernel_sum(&self.data[i0..i1.max(i0)], x, 1.0 / h) * norm
    }

    /// Evaluate the density on `points` evenly spaced x-values across
    /// `[lo, hi]`, returning `(x, density)` pairs.
    ///
    /// One blocked pass: the active kernel window slides monotonically
    /// over the sorted sample (two-pointer), so the whole grid costs
    /// `O(points + n + total window points)` instead of `O(points · n)`.
    pub fn grid(&self, lo: f64, hi: f64, points: usize) -> Result<Vec<(f64, f64)>> {
        if points < 2 {
            return Err(StatsError::InvalidParameter { what: "grid points", value: points as f64 });
        }
        if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
            return Err(StatsError::InvalidParameter { what: "grid range", value: hi - lo });
        }
        let step = (hi - lo) / (points - 1) as f64;
        let h = self.bandwidth;
        let inv_h = 1.0 / h;
        let cut = CUTOFF_SIGMAS * h;
        let norm = INV_SQRT_2PI / (self.data.len() as f64 * h);
        let n = self.data.len();
        let (mut i0, mut i1) = (0usize, 0usize);
        let mut out = Vec::with_capacity(points);
        for j in 0..points {
            let x = lo + j as f64 * step;
            // Same window bounds binary search would find: first index
            // with data[i0] > x - cut, first index with data[i1] >= x + cut.
            while i0 < n && self.data[i0] <= x - cut {
                i0 += 1;
            }
            if i1 < i0 {
                i1 = i0;
            }
            while i1 < n && self.data[i1] < x + cut {
                i1 += 1;
            }
            out.push((x, blocked_kernel_sum(&self.data[i0..i1], x, inv_h) * norm));
        }
        Ok(out)
    }

    /// Evaluate on a grid that spans the data, padded by 3 bandwidths.
    /// Uses the bounds cached at fit time; the sample is never re-scanned.
    pub fn auto_grid(&self, points: usize) -> Result<Vec<(f64, f64)>> {
        let lo = self.min - 3.0 * self.bandwidth;
        let hi = self.max + 3.0 * self.bandwidth;
        self.grid(lo, hi, points)
    }

    /// Find density peaks on an auto grid.
    ///
    /// A grid point is a peak when it is a strict local maximum whose
    /// prominence (height above the higher flanking minimum) exceeds
    /// `min_prominence * max_density`. The paper counts "significant
    /// clusters" of upload-speed density (Fig. 4); prominence filtering is
    /// what makes that count robust on crowdsourced (noisy) data.
    pub fn find_peaks(&self, points: usize, min_prominence: f64) -> Result<Vec<Peak>> {
        let grid = self.auto_grid(points)?;
        Ok(find_peaks_on_grid(&grid, min_prominence))
    }
}

/// Blocked kernel accumulation over a contiguous window of sorted points:
/// sequential sums within [`KERNEL_BLOCK`]-point blocks, block partials
/// folded in block order. This is the one accumulation order every density
/// evaluation uses (see the module docs).
#[inline]
fn blocked_kernel_sum(window: &[f64], x: f64, inv_h: f64) -> f64 {
    let mut total = 0.0;
    for block in window.chunks(KERNEL_BLOCK) {
        let mut partial = 0.0;
        for &xi in block {
            let u = (x - xi) * inv_h;
            partial += (-0.5 * u * u).exp();
        }
        total += partial;
    }
    total
}

/// Scalar reference implementation of the density kernel contract.
///
/// Selects the window by a full linear scan (`xi > x - 8h && xi < x + 8h`)
/// and accumulates with explicit block bookkeeping instead of slice
/// chunking — an independently-written twin of the production kernel. The
/// proptests assert `KernelDensity::pdf` and `grid` match this
/// bit-for-bit; any reassociation in the optimized path is a test failure,
/// not a tolerance.
///
/// `sorted` must be the fitted (ascending) sample, `h` the bandwidth.
pub fn reference_pdf(sorted: &[f64], h: f64, x: f64) -> f64 {
    let cut = CUTOFF_SIGMAS * h;
    let inv_h = 1.0 / h;
    let mut total = 0.0;
    let mut partial = 0.0;
    let mut in_window = 0usize;
    for &xi in sorted {
        if !(xi > x - cut && xi < x + cut) {
            continue;
        }
        if in_window > 0 && in_window.is_multiple_of(KERNEL_BLOCK) {
            total += partial;
            partial = 0.0;
        }
        let u = (x - xi) * inv_h;
        partial += (-0.5 * u * u).exp();
        in_window += 1;
    }
    total += partial;
    total * (INV_SQRT_2PI / (sorted.len() as f64 * h))
}

/// Silverman's rule-of-thumb bandwidth. Returns 0.0 for an empty sample
/// (callers treat a non-positive bandwidth as "fall back / error").
pub fn silverman_bandwidth(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    silverman_with_sorted(data, &sorted)
}

/// Silverman's rule from a sample and its pre-sorted copy, so `fit` can
/// reuse the one sorted allocation it already makes. `data` supplies the
/// standard deviation (original order — bit-identical to the historical
/// computation), `sorted` the quartiles.
fn silverman_with_sorted(data: &[f64], sorted: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let n = data.len() as f64;
    let sigma = std_dev(data);
    let iqr = quantile_sorted(sorted, 0.75) - quantile_sorted(sorted, 0.25);
    let spread = if iqr > 0.0 { sigma.min(iqr / 1.34) } else { sigma };
    0.9 * spread * n.powf(-0.2)
}

/// Silverman's bandwidth scaled by `scale`, as a [`Bandwidth`] rule.
///
/// The paper's §5 cluster recovery halves Silverman's rule-of-thumb
/// (`scale = 0.5`) to resolve adjacent plan-speed modes; both the BST
/// stage-1/stage-2 clustering and the Fig. 4 density plot use this one
/// definition. The bandwidth itself is computed inside
/// [`KernelDensity::fit`] from the single sorted copy made there; when the
/// scaled bandwidth is not positive (empty or constant sample) the plain
/// Silverman value is used instead, matching the callers' historical
/// behaviour.
pub fn scaled_silverman(scale: f64) -> Bandwidth {
    Bandwidth::ScaledSilverman(scale)
}

/// Scott's rule bandwidth.
pub fn scott_bandwidth(data: &[f64]) -> f64 {
    1.06 * std_dev(data) * (data.len() as f64).powf(-0.2)
}

/// Peak detection on a pre-computed `(x, y)` grid.
///
/// Exposed separately so histogram densities can reuse the same logic.
pub fn find_peaks_on_grid(grid: &[(f64, f64)], min_prominence: f64) -> Vec<Peak> {
    if grid.len() < 3 {
        return Vec::new();
    }
    let max_y = grid.iter().map(|p| p.1).fold(0.0_f64, f64::max);
    if max_y <= 0.0 {
        return Vec::new();
    }
    let threshold = min_prominence * max_y;
    let mut peaks = Vec::new();
    for i in 1..grid.len() - 1 {
        let (x, y) = grid[i];
        // Strict local max (plateaus resolved by requiring left-strict).
        if y > grid[i - 1].1 && y >= grid[i + 1].1 {
            // Walk out to the flanking minima.
            let mut left_min = y;
            for j in (0..i).rev() {
                if grid[j].1 > y {
                    break;
                }
                left_min = left_min.min(grid[j].1);
            }
            let mut right_min = y;
            for p in grid.iter().skip(i + 1) {
                if p.1 > y {
                    break;
                }
                right_min = right_min.min(p.1);
            }
            let prominence = y - left_min.max(right_min);
            // Edge peaks (first/last rise) get prominence relative to the
            // lower side only; the max() above handles interior peaks.
            let prominence =
                if prominence == 0.0 { y - left_min.min(right_min) } else { prominence };
            if prominence >= threshold {
                peaks.push(Peak { x, density: y, prominence });
            }
        }
    }
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random standard normals via a fixed table-free
    /// LCG + Box-Muller; keeps the stats crate free of a dev-dependency on
    /// `rand` for these tests.
    fn normals(n: usize, mean: f64, sd: f64, seed: u64) -> Vec<f64> {
        let mut state = seed.max(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|_| {
                let (u1, u2): (f64, f64) = (next().max(1e-12), next());
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                mean + sd * z
            })
            .collect()
    }

    #[test]
    fn pdf_is_nonnegative_everywhere() {
        let kde = KernelDensity::fit(&normals(200, 0.0, 1.0, 7), Bandwidth::Silverman).unwrap();
        for i in -50..50 {
            assert!(kde.pdf(i as f64 / 5.0) >= 0.0);
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let kde = KernelDensity::fit(&normals(500, 10.0, 2.0, 3), Bandwidth::Silverman).unwrap();
        let grid = kde.grid(-5.0, 25.0, 2000).unwrap();
        let dx = grid[1].0 - grid[0].0;
        let integral: f64 = grid.iter().map(|p| p.1 * dx).sum();
        assert!((integral - 1.0).abs() < 0.02, "integral = {integral}");
    }

    #[test]
    fn grid_matches_pointwise_pdf_bitwise() {
        // The two-pointer grid walk and the binary-search pdf must find the
        // same windows and hence the same bits.
        let kde = KernelDensity::fit(&normals(700, 30.0, 9.0, 19), Bandwidth::Silverman).unwrap();
        for (x, y) in kde.grid(-5.0, 70.0, 257).unwrap() {
            assert_eq!(y.to_bits(), kde.pdf(x).to_bits(), "grid/pdf diverge at x={x}");
        }
    }

    #[test]
    fn pdf_matches_reference_kernel_bitwise() {
        let data = normals(500, 12.0, 4.0, 23);
        let kde = KernelDensity::fit(&data, Bandwidth::Silverman).unwrap();
        for i in 0..200 {
            let x = -5.0 + i as f64 * 0.2;
            let want = reference_pdf(kde.data(), kde.bandwidth(), x);
            assert_eq!(kde.pdf(x).to_bits(), want.to_bits(), "mismatch at x={x}");
        }
    }

    #[test]
    fn unimodal_sample_yields_one_peak() {
        let kde = KernelDensity::fit(&normals(400, 5.0, 1.0, 11), Bandwidth::Silverman).unwrap();
        let peaks = kde.find_peaks(512, 0.05).unwrap();
        assert_eq!(peaks.len(), 1, "peaks: {peaks:?}");
        assert!((peaks[0].x - 5.0).abs() < 0.5);
    }

    #[test]
    fn bimodal_sample_yields_two_peaks() {
        let mut data = normals(300, 0.0, 1.0, 5);
        data.extend(normals(300, 10.0, 1.0, 6));
        let kde = KernelDensity::fit(&data, Bandwidth::Silverman).unwrap();
        let peaks = kde.find_peaks(512, 0.05).unwrap();
        assert_eq!(peaks.len(), 2, "peaks: {peaks:?}");
    }

    #[test]
    fn four_plan_caps_yield_four_peaks() {
        // Mirrors Fig. 4: upload speeds clustered at 5, 10, 15, 35 Mbps.
        let mut data = Vec::new();
        for (mu, n) in [(5.0, 400), (10.0, 150), (15.0, 120), (35.0, 130)] {
            data.extend(normals(n, mu, 0.6, mu as u64));
        }
        let kde = KernelDensity::fit(&data, Bandwidth::Fixed(0.8)).unwrap();
        let peaks = kde.find_peaks(1024, 0.02).unwrap();
        assert_eq!(peaks.len(), 4, "peaks: {peaks:?}");
        let xs: Vec<f64> = peaks.iter().map(|p| p.x).collect();
        for (expect, got) in [5.0, 10.0, 15.0, 35.0].iter().zip(&xs) {
            assert!((expect - got).abs() < 1.0, "expected peak near {expect}, got {got}");
        }
    }

    #[test]
    fn prominence_filters_noise_wiggles() {
        let mut data = normals(500, 0.0, 1.0, 9);
        data.extend(normals(5, 4.0, 0.2, 10)); // tiny bump: 1% of mass
        let kde = KernelDensity::fit(&data, Bandwidth::Fixed(0.3)).unwrap();
        let strict = kde.find_peaks(512, 0.10).unwrap();
        let loose = kde.find_peaks(512, 0.001).unwrap();
        assert_eq!(strict.len(), 1, "strict: {strict:?}");
        assert!(loose.len() >= 2, "loose: {loose:?}");
    }

    #[test]
    fn fixed_bandwidth_is_respected() {
        let kde = KernelDensity::fit(&[1.0, 2.0, 3.0], Bandwidth::Fixed(0.5)).unwrap();
        assert_eq!(kde.bandwidth(), 0.5);
    }

    #[test]
    fn invalid_fixed_bandwidth_rejected() {
        assert!(KernelDensity::fit(&[1.0], Bandwidth::Fixed(0.0)).is_err());
        assert!(KernelDensity::fit(&[1.0], Bandwidth::Fixed(-1.0)).is_err());
        assert!(KernelDensity::fit(&[1.0], Bandwidth::Fixed(f64::NAN)).is_err());
    }

    #[test]
    fn scaled_silverman_matches_manual_scaling() {
        let data = normals(300, 8.0, 2.0, 13);
        let manual = silverman_bandwidth(&data) * 0.5;
        let kde = KernelDensity::fit(&data, scaled_silverman(0.5)).unwrap();
        assert_eq!(kde.bandwidth().to_bits(), manual.to_bits());
    }

    #[test]
    fn scaled_silverman_falls_back_to_plain_silverman() {
        // A zero scale is not positive; the historical fallback is the
        // unscaled Silverman bandwidth.
        let data = normals(100, 8.0, 2.0, 14);
        let kde = KernelDensity::fit(&data, scaled_silverman(0.0)).unwrap();
        assert_eq!(kde.bandwidth().to_bits(), silverman_bandwidth(&data).to_bits());
    }

    #[test]
    fn degenerate_constant_sample_does_not_panic() {
        let kde = KernelDensity::fit(&[5.0; 50], Bandwidth::Silverman).unwrap();
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.pdf(5.0) > 0.0);
    }

    #[test]
    fn degenerate_fallback_is_permutation_invariant_and_scales() {
        // The spike width must not depend on which element happens to sit
        // first, and must track the sample's magnitude.
        let a = KernelDensity::fit(&[5000.0; 40], Bandwidth::Silverman).unwrap();
        assert_eq!(a.bandwidth(), 5.0, "width follows max |value| * 1e-3");
        // Mixed-sign degenerate-style sample via a scale of zero variance:
        // a single point exercises the same fallback path.
        let b = KernelDensity::fit(&[-2000.0], Bandwidth::Silverman).unwrap();
        assert_eq!(b.bandwidth(), 2.0, "magnitude, not sign or position");
        let c = KernelDensity::fit(&[0.25; 8], Bandwidth::Silverman).unwrap();
        assert_eq!(c.bandwidth(), 1e-3, "small samples floor at 1.0 * 1e-3");
    }

    #[test]
    fn data_is_stored_sorted_with_cached_bounds() {
        let kde = KernelDensity::fit(&[3.0, 1.0, 2.0], Bandwidth::Fixed(0.5)).unwrap();
        assert_eq!(kde.data(), &[1.0, 2.0, 3.0]);
        let grid = kde.auto_grid(16).unwrap();
        assert_eq!(grid.first().unwrap().0, 1.0 - 1.5);
        assert!((grid.last().unwrap().0 - (3.0 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn grid_rejects_bad_ranges() {
        let kde = KernelDensity::fit(&[1.0, 2.0], Bandwidth::Fixed(1.0)).unwrap();
        assert!(kde.grid(1.0, 1.0, 10).is_err());
        assert!(kde.grid(0.0, 1.0, 1).is_err());
    }

    #[test]
    fn silverman_shrinks_with_n() {
        let small = silverman_bandwidth(&normals(50, 0.0, 1.0, 2));
        let large = silverman_bandwidth(&normals(5000, 0.0, 1.0, 2));
        assert!(large < small);
    }
}
