//! Gaussian kernel density estimation with peak finding.
//!
//! The first step of each BST stage (paper §4.2) applies KDE to the
//! upload- or download-speed sample to *count* the clusters present — the
//! number of distinct peaks tells the pipeline how many mixture components
//! to fit. This module implements:
//!
//! * a Gaussian-kernel density estimator with Silverman / Scott / manual
//!   bandwidth selection,
//! * grid evaluation, and
//! * a peak finder with prominence filtering, so shoulder wiggles in a
//!   heavy-tailed speed distribution are not mistaken for plan tiers.

use crate::describe::{quantile_sorted, std_dev};
use crate::error::{validate_sample, StatsError};
use crate::Result;

const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Bandwidth selection rule for [`KernelDensity`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bandwidth {
    /// Silverman's rule of thumb:
    /// `0.9 * min(sigma, IQR/1.34) * n^(-1/5)`.
    Silverman,
    /// Scott's rule: `1.06 * sigma * n^(-1/5)`.
    Scott,
    /// A fixed bandwidth supplied by the caller (must be positive).
    Fixed(f64),
}

/// A detected density peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// x-position of the local maximum.
    pub x: f64,
    /// density value at the maximum.
    pub density: f64,
    /// prominence: height above the higher of the two flanking minima.
    pub prominence: f64,
}

/// A fitted Gaussian kernel density estimator.
#[derive(Debug, Clone)]
pub struct KernelDensity {
    data: Vec<f64>,
    bandwidth: f64,
}

impl KernelDensity {
    /// Fit a KDE to `data` using the given bandwidth rule.
    pub fn fit(data: &[f64], rule: Bandwidth) -> Result<Self> {
        validate_sample(data)?;
        let bandwidth = match rule {
            Bandwidth::Fixed(h) => {
                if h <= 0.0 || !h.is_finite() {
                    return Err(StatsError::InvalidParameter { what: "bandwidth", value: h });
                }
                h
            }
            Bandwidth::Silverman => silverman_bandwidth(data),
            Bandwidth::Scott => scott_bandwidth(data),
        };
        if bandwidth <= 0.0 || !bandwidth.is_finite() {
            // Degenerate sample (zero spread): fall back to a tiny width so
            // the density is a spike at the common value instead of an error.
            let fallback = data[0].abs().max(1.0) * 1e-3;
            return Ok(KernelDensity { data: data.to_vec(), bandwidth: fallback });
        }
        Ok(KernelDensity { data: data.to_vec(), bandwidth })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of samples backing the estimate.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no samples back the estimate (unreachable via `fit`).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Density estimate at a single point.
    pub fn pdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let n = self.data.len() as f64;
        let mut acc = 0.0;
        for &xi in &self.data {
            let u = (x - xi) / h;
            // Kernels beyond 8 sigma contribute < 1e-14; skip them.
            if u.abs() < 8.0 {
                acc += (-0.5 * u * u).exp();
            }
        }
        acc * INV_SQRT_2PI / (n * h)
    }

    /// Evaluate the density on `points` evenly spaced x-values across
    /// `[lo, hi]`, returning `(x, density)` pairs.
    pub fn grid(&self, lo: f64, hi: f64, points: usize) -> Result<Vec<(f64, f64)>> {
        if points < 2 {
            return Err(StatsError::InvalidParameter { what: "grid points", value: points as f64 });
        }
        if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
            return Err(StatsError::InvalidParameter { what: "grid range", value: hi - lo });
        }
        let step = (hi - lo) / (points - 1) as f64;
        Ok((0..points)
            .map(|i| {
                let x = lo + i as f64 * step;
                (x, self.pdf(x))
            })
            .collect())
    }

    /// Evaluate on a grid that spans the data, padded by 3 bandwidths.
    pub fn auto_grid(&self, points: usize) -> Result<Vec<(f64, f64)>> {
        let lo = self.data.iter().cloned().fold(f64::INFINITY, f64::min) - 3.0 * self.bandwidth;
        let hi = self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 3.0 * self.bandwidth;
        self.grid(lo, hi, points)
    }

    /// Find density peaks on an auto grid.
    ///
    /// A grid point is a peak when it is a strict local maximum whose
    /// prominence (height above the higher flanking minimum) exceeds
    /// `min_prominence * max_density`. The paper counts "significant
    /// clusters" of upload-speed density (Fig. 4); prominence filtering is
    /// what makes that count robust on crowdsourced (noisy) data.
    pub fn find_peaks(&self, points: usize, min_prominence: f64) -> Result<Vec<Peak>> {
        let grid = self.auto_grid(points)?;
        Ok(find_peaks_on_grid(&grid, min_prominence))
    }
}

/// Silverman's rule-of-thumb bandwidth. Returns 0.0 for an empty sample
/// (callers treat a non-positive bandwidth as "fall back / error").
pub fn silverman_bandwidth(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let n = data.len() as f64;
    let sigma = std_dev(data);
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let iqr = quantile_sorted(&sorted, 0.75) - quantile_sorted(&sorted, 0.25);
    let spread = if iqr > 0.0 { sigma.min(iqr / 1.34) } else { sigma };
    0.9 * spread * n.powf(-0.2)
}

/// Silverman's bandwidth scaled by `scale`, as a [`Bandwidth`] rule.
///
/// The paper's §5 cluster recovery halves Silverman's rule-of-thumb
/// (`scale = 0.5`) to resolve adjacent plan-speed modes; both the BST
/// stage-1 upload clustering and the Fig. 4 density plot use this one
/// definition. Falls back to plain [`Bandwidth::Silverman`] when the
/// scaled bandwidth is not positive (empty or constant sample), matching
/// the callers' historical behaviour.
pub fn scaled_silverman(data: &[f64], scale: f64) -> Bandwidth {
    let bw = silverman_bandwidth(data) * scale;
    if bw > 0.0 {
        Bandwidth::Fixed(bw)
    } else {
        Bandwidth::Silverman
    }
}

/// Scott's rule bandwidth.
pub fn scott_bandwidth(data: &[f64]) -> f64 {
    1.06 * std_dev(data) * (data.len() as f64).powf(-0.2)
}

/// Peak detection on a pre-computed `(x, y)` grid.
///
/// Exposed separately so histogram densities can reuse the same logic.
pub fn find_peaks_on_grid(grid: &[(f64, f64)], min_prominence: f64) -> Vec<Peak> {
    if grid.len() < 3 {
        return Vec::new();
    }
    let max_y = grid.iter().map(|p| p.1).fold(0.0_f64, f64::max);
    if max_y <= 0.0 {
        return Vec::new();
    }
    let threshold = min_prominence * max_y;
    let mut peaks = Vec::new();
    for i in 1..grid.len() - 1 {
        let (x, y) = grid[i];
        // Strict local max (plateaus resolved by requiring left-strict).
        if y > grid[i - 1].1 && y >= grid[i + 1].1 {
            // Walk out to the flanking minima.
            let mut left_min = y;
            for j in (0..i).rev() {
                if grid[j].1 > y {
                    break;
                }
                left_min = left_min.min(grid[j].1);
            }
            let mut right_min = y;
            for p in grid.iter().skip(i + 1) {
                if p.1 > y {
                    break;
                }
                right_min = right_min.min(p.1);
            }
            let prominence = y - left_min.max(right_min);
            // Edge peaks (first/last rise) get prominence relative to the
            // lower side only; the max() above handles interior peaks.
            let prominence =
                if prominence == 0.0 { y - left_min.min(right_min) } else { prominence };
            if prominence >= threshold {
                peaks.push(Peak { x, density: y, prominence });
            }
        }
    }
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random standard normals via a fixed table-free
    /// LCG + Box-Muller; keeps the stats crate free of a dev-dependency on
    /// `rand` for these tests.
    fn normals(n: usize, mean: f64, sd: f64, seed: u64) -> Vec<f64> {
        let mut state = seed.max(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|_| {
                let (u1, u2): (f64, f64) = (next().max(1e-12), next());
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                mean + sd * z
            })
            .collect()
    }

    #[test]
    fn pdf_is_nonnegative_everywhere() {
        let kde = KernelDensity::fit(&normals(200, 0.0, 1.0, 7), Bandwidth::Silverman).unwrap();
        for i in -50..50 {
            assert!(kde.pdf(i as f64 / 5.0) >= 0.0);
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let kde = KernelDensity::fit(&normals(500, 10.0, 2.0, 3), Bandwidth::Silverman).unwrap();
        let grid = kde.grid(-5.0, 25.0, 2000).unwrap();
        let dx = grid[1].0 - grid[0].0;
        let integral: f64 = grid.iter().map(|p| p.1 * dx).sum();
        assert!((integral - 1.0).abs() < 0.02, "integral = {integral}");
    }

    #[test]
    fn unimodal_sample_yields_one_peak() {
        let kde = KernelDensity::fit(&normals(400, 5.0, 1.0, 11), Bandwidth::Silverman).unwrap();
        let peaks = kde.find_peaks(512, 0.05).unwrap();
        assert_eq!(peaks.len(), 1, "peaks: {peaks:?}");
        assert!((peaks[0].x - 5.0).abs() < 0.5);
    }

    #[test]
    fn bimodal_sample_yields_two_peaks() {
        let mut data = normals(300, 0.0, 1.0, 5);
        data.extend(normals(300, 10.0, 1.0, 6));
        let kde = KernelDensity::fit(&data, Bandwidth::Silverman).unwrap();
        let peaks = kde.find_peaks(512, 0.05).unwrap();
        assert_eq!(peaks.len(), 2, "peaks: {peaks:?}");
    }

    #[test]
    fn four_plan_caps_yield_four_peaks() {
        // Mirrors Fig. 4: upload speeds clustered at 5, 10, 15, 35 Mbps.
        let mut data = Vec::new();
        for (mu, n) in [(5.0, 400), (10.0, 150), (15.0, 120), (35.0, 130)] {
            data.extend(normals(n, mu, 0.6, mu as u64));
        }
        let kde = KernelDensity::fit(&data, Bandwidth::Fixed(0.8)).unwrap();
        let peaks = kde.find_peaks(1024, 0.02).unwrap();
        assert_eq!(peaks.len(), 4, "peaks: {peaks:?}");
        let xs: Vec<f64> = peaks.iter().map(|p| p.x).collect();
        for (expect, got) in [5.0, 10.0, 15.0, 35.0].iter().zip(&xs) {
            assert!((expect - got).abs() < 1.0, "expected peak near {expect}, got {got}");
        }
    }

    #[test]
    fn prominence_filters_noise_wiggles() {
        let mut data = normals(500, 0.0, 1.0, 9);
        data.extend(normals(5, 4.0, 0.2, 10)); // tiny bump: 1% of mass
        let kde = KernelDensity::fit(&data, Bandwidth::Fixed(0.3)).unwrap();
        let strict = kde.find_peaks(512, 0.10).unwrap();
        let loose = kde.find_peaks(512, 0.001).unwrap();
        assert_eq!(strict.len(), 1, "strict: {strict:?}");
        assert!(loose.len() >= 2, "loose: {loose:?}");
    }

    #[test]
    fn fixed_bandwidth_is_respected() {
        let kde = KernelDensity::fit(&[1.0, 2.0, 3.0], Bandwidth::Fixed(0.5)).unwrap();
        assert_eq!(kde.bandwidth(), 0.5);
    }

    #[test]
    fn invalid_fixed_bandwidth_rejected() {
        assert!(KernelDensity::fit(&[1.0], Bandwidth::Fixed(0.0)).is_err());
        assert!(KernelDensity::fit(&[1.0], Bandwidth::Fixed(-1.0)).is_err());
        assert!(KernelDensity::fit(&[1.0], Bandwidth::Fixed(f64::NAN)).is_err());
    }

    #[test]
    fn degenerate_constant_sample_does_not_panic() {
        let kde = KernelDensity::fit(&[5.0; 50], Bandwidth::Silverman).unwrap();
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.pdf(5.0) > 0.0);
    }

    #[test]
    fn grid_rejects_bad_ranges() {
        let kde = KernelDensity::fit(&[1.0, 2.0], Bandwidth::Fixed(1.0)).unwrap();
        assert!(kde.grid(1.0, 1.0, 10).is_err());
        assert!(kde.grid(0.0, 1.0, 1).is_err());
    }

    #[test]
    fn silverman_shrinks_with_n() {
        let small = silverman_bandwidth(&normals(50, 0.0, 1.0, 2));
        let large = silverman_bandwidth(&normals(5000, 0.0, 1.0, 2));
        assert!(large < small);
    }
}
