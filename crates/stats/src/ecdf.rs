//! Empirical cumulative distribution functions.
//!
//! Every CDF figure in the paper (Figs. 1, 2, 8, 9, 10, 12, 13) is an ECDF of
//! some conditioned subset of measurements; this module is the single
//! implementation they all share.

use crate::describe::quantile_sorted;
use crate::error::{validate_sample, StatsError};
use crate::Result;

/// An empirical CDF built from a sample.
///
/// Stores the sorted sample; evaluation is a binary search, so `eval` is
/// `O(log n)` and building plot series is `O(n + k log n)` for `k` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from unsorted data.
    pub fn new(data: &[f64]) -> Result<Self> {
        validate_sample(data)?;
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
        Ok(Ecdf { sorted })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the ECDF holds no samples (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`: fraction of samples at or below `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when we ask for
        // the first index where v > x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile function) with linear interpolation.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidParameter { what: "quantile q", value: q });
        }
        Ok(quantile_sorted(&self.sorted, q))
    }

    /// Median of the sample.
    pub fn median(&self) -> f64 {
        quantile_sorted(&self.sorted, 0.5)
    }

    /// Minimum of the sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum of the sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Produce `(x, F(x))` pairs suitable for plotting a CDF curve: one point
    /// per distinct sample value (step positions), capped at `max_points` by
    /// uniform subsampling so huge campaigns plot cheaply.
    pub fn plot_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        assert!(max_points >= 2, "need at least 2 plot points");
        let n = self.sorted.len();
        let step = (n as f64 / max_points as f64).max(1.0);
        let mut pts = Vec::with_capacity(max_points.min(n) + 1);
        let mut i = 0.0;
        while (i as usize) < n {
            let idx = i as usize;
            pts.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
            i += step;
        }
        let last = (self.max(), 1.0);
        if pts.last() != Some(&last) {
            pts.push(last);
        }
        pts
    }

    /// Evaluate the ECDF on a fixed grid; used when several CDFs must share
    /// the same x-axis (e.g. the normalized-download-speed figures).
    pub fn on_grid(&self, grid: &[f64]) -> Vec<f64> {
        grid.iter().map(|&x| self.eval(x)).collect()
    }

    /// Borrow the sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_before_after_and_at_points() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn duplicates_step_together() {
        let e = Ecdf::new(&[2.0, 2.0, 2.0, 5.0]).unwrap();
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(1.9), 0.0);
    }

    #[test]
    fn median_and_extremes() {
        let e = Ecdf::new(&[10.0, 30.0, 20.0]).unwrap();
        assert_eq!(e.median(), 20.0);
        assert_eq!(e.min(), 10.0);
        assert_eq!(e.max(), 30.0);
    }

    #[test]
    fn empty_rejected() {
        assert!(Ecdf::new(&[]).is_err());
    }

    #[test]
    fn plot_points_end_at_one() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let pts = Ecdf::new(&data).unwrap().plot_points(50);
        assert!(pts.len() <= 52);
        assert_eq!(pts.last().unwrap().1, 1.0);
        // x strictly non-decreasing, F strictly non-decreasing
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn plot_points_small_sample() {
        let pts = Ecdf::new(&[1.0, 2.0]).unwrap().plot_points(10);
        assert_eq!(pts, vec![(1.0, 0.5), (2.0, 1.0)]);
    }

    #[test]
    fn grid_evaluation_matches_pointwise() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0]).unwrap();
        let grid = [0.0, 1.5, 2.5, 3.5];
        let vals = e.on_grid(&grid);
        for (g, v) in grid.iter().zip(&vals) {
            assert_eq!(*v, e.eval(*g));
        }
    }

    #[test]
    fn quantile_round_trip() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let e = Ecdf::new(&data).unwrap();
        let m = e.quantile(0.5).unwrap();
        assert!((m - 50.5).abs() < 1e-9);
        assert!(e.quantile(1.1).is_err());
    }
}
