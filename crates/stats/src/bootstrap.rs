//! Bootstrap confidence intervals.
//!
//! The paper reports point medians; a production measurement pipeline
//! should carry uncertainty, especially at the reduced campaign scales
//! this reproduction runs at. Percentile-bootstrap intervals are the
//! standard tool for medians and ratio statistics over heavy-tailed
//! throughput samples, where normal-theory intervals are unreliable.

use crate::describe::quantile_sorted;
use crate::error::{validate_sample, StatsError};
use crate::Result;
use rand::Rng;

/// A percentile-bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// The confidence level the bounds correspond to (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

/// Percentile-bootstrap CI for an arbitrary statistic of one sample.
///
/// `statistic` receives a resampled-with-replacement copy of the data and
/// must return a finite value for any non-empty sample.
pub fn bootstrap_ci<R: Rng + ?Sized>(
    data: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    resamples: usize,
    level: f64,
    rng: &mut R,
) -> Result<ConfidenceInterval> {
    validate_sample(data)?;
    if !(0.0..1.0).contains(&level) || level <= 0.5 {
        return Err(StatsError::InvalidParameter { what: "confidence level", value: level });
    }
    if resamples < 10 {
        return Err(StatsError::InvalidParameter { what: "resamples", value: resamples as f64 });
    }

    let estimate = statistic(data);
    let n = data.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut scratch = vec![0.0f64; n];
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = data[rng.gen_range(0..n)];
        }
        let s = statistic(&scratch);
        if s.is_finite() {
            stats.push(s);
        }
    }
    if stats.is_empty() {
        return Err(StatsError::Diverged { iteration: 0 });
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite filtered"));
    let alpha = (1.0 - level) / 2.0;
    Ok(ConfidenceInterval {
        estimate,
        lo: quantile_sorted(&stats, alpha),
        hi: quantile_sorted(&stats, 1.0 - alpha),
        level,
    })
}

/// Bootstrap CI for the sample median.
pub fn median_ci<R: Rng + ?Sized>(
    data: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut R,
) -> Result<ConfidenceInterval> {
    bootstrap_ci(
        data,
        |sample| {
            let mut v = sample.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            quantile_sorted(&v, 0.5)
        },
        resamples,
        level,
        rng,
    )
}

/// Bootstrap CI for the ratio of two samples' medians (`a / b`) — the
/// statistic behind the paper's "M-Lab lags Ookla by up to 2×" claims.
/// The two samples are resampled independently.
pub fn median_ratio_ci<R: Rng + ?Sized>(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut R,
) -> Result<ConfidenceInterval> {
    validate_sample(a)?;
    validate_sample(b)?;
    if !(0.0..1.0).contains(&level) || level <= 0.5 {
        return Err(StatsError::InvalidParameter { what: "confidence level", value: level });
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        quantile_sorted(v, 0.5)
    };
    let estimate = {
        let (mut x, mut y) = (a.to_vec(), b.to_vec());
        med(&mut x) / med(&mut y)
    };
    let mut stats = Vec::with_capacity(resamples);
    let mut ra = vec![0.0f64; a.len()];
    let mut rb = vec![0.0f64; b.len()];
    for _ in 0..resamples {
        for slot in ra.iter_mut() {
            *slot = a[rng.gen_range(0..a.len())];
        }
        for slot in rb.iter_mut() {
            *slot = b[rng.gen_range(0..b.len())];
        }
        let (mut x, mut y) = (ra.clone(), rb.clone());
        let r = med(&mut x) / med(&mut y);
        if r.is_finite() {
            stats.push(r);
        }
    }
    if stats.is_empty() {
        return Err(StatsError::Diverged { iteration: 0 });
    }
    stats.sort_by(|x, y| x.partial_cmp(y).expect("finite filtered"));
    let alpha = (1.0 - level) / 2.0;
    Ok(ConfidenceInterval {
        estimate,
        lo: quantile_sorted(&stats, alpha),
        hi: quantile_sorted(&stats, 1.0 - alpha),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(29)
    }

    fn uniforms(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
        let mut r = StdRng::seed_from_u64(seed);
        (0..n).map(|_| lo + (hi - lo) * r.gen::<f64>()).collect()
    }

    #[test]
    fn median_ci_brackets_the_true_median() {
        // Uniform(0, 100): true median 50.
        let data = uniforms(400, 0.0, 100.0, 1);
        let ci = median_ci(&data, 500, 0.95, &mut rng()).unwrap();
        assert!(ci.contains(50.0), "{ci:?}");
        assert!(ci.contains(ci.estimate));
        assert!(ci.width() > 0.0 && ci.width() < 30.0, "{ci:?}");
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        let small = median_ci(&uniforms(40, 0.0, 100.0, 2), 400, 0.95, &mut rng()).unwrap();
        let large = median_ci(&uniforms(4000, 0.0, 100.0, 2), 400, 0.95, &mut rng()).unwrap();
        assert!(large.width() < small.width(), "{large:?} vs {small:?}");
    }

    #[test]
    fn interval_widens_with_level() {
        let data = uniforms(200, 0.0, 100.0, 3);
        let c90 = median_ci(&data, 500, 0.90, &mut rng()).unwrap();
        let c99 = median_ci(&data, 500, 0.99, &mut rng()).unwrap();
        assert!(c99.width() >= c90.width(), "{c99:?} vs {c90:?}");
    }

    #[test]
    fn ratio_ci_detects_a_true_twofold_gap() {
        let a = uniforms(300, 80.0, 120.0, 4); // median ~100
        let b = uniforms(300, 40.0, 60.0, 5); // median ~50
        let ci = median_ratio_ci(&a, &b, 500, 0.95, &mut rng()).unwrap();
        assert!(ci.contains(2.0), "{ci:?}");
        assert!(!ci.contains(1.0), "gap should be significant: {ci:?}");
    }

    #[test]
    fn ratio_ci_covers_one_for_identical_distributions() {
        let a = uniforms(300, 10.0, 20.0, 6);
        let b = uniforms(300, 10.0, 20.0, 7);
        let ci = median_ratio_ci(&a, &b, 500, 0.95, &mut rng()).unwrap();
        assert!(ci.contains(1.0), "{ci:?}");
    }

    #[test]
    fn custom_statistic_works() {
        let data = uniforms(200, 0.0, 10.0, 8);
        let ci =
            bootstrap_ci(&data, |s| s.iter().sum::<f64>() / s.len() as f64, 300, 0.95, &mut rng())
                .unwrap();
        assert!(ci.contains(5.0), "{ci:?}");
    }

    #[test]
    fn degenerate_constant_sample_gives_zero_width() {
        let ci = median_ci(&[7.0; 50], 200, 0.95, &mut rng()).unwrap();
        assert_eq!(ci.lo, 7.0);
        assert_eq!(ci.hi, 7.0);
        assert_eq!(ci.estimate, 7.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        let data = [1.0, 2.0, 3.0];
        assert!(median_ci(&data, 5, 0.95, &mut rng()).is_err());
        assert!(median_ci(&data, 100, 0.4, &mut rng()).is_err());
        assert!(median_ci(&data, 100, 1.0, &mut rng()).is_err());
        assert!(median_ci(&[], 100, 0.95, &mut rng()).is_err());
        assert!(median_ratio_ci(&[], &data, 100, 0.95, &mut rng()).is_err());
    }
}
