//! Error type shared by the statistics estimators.

use std::fmt;

/// Errors produced by estimators in this crate.
///
/// Every estimator validates its input eagerly so that downstream pipeline
/// code can rely on a fitted model being well-formed.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input sample was empty.
    EmptyInput,
    /// The input contained a NaN or infinite value.
    NonFinite {
        /// Index of the offending value.
        index: usize,
        /// The value itself.
        value: f64,
    },
    /// Not enough samples for the requested operation (e.g. fitting `k`
    /// mixture components to fewer than `k` points).
    TooFewSamples {
        /// Minimum samples the operation needs.
        needed: usize,
        /// Samples actually provided.
        got: usize,
    },
    /// An invalid parameter was supplied (e.g. a non-positive bandwidth).
    InvalidParameter {
        /// Which parameter was invalid.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// EM failed to make progress (likelihood became non-finite).
    Diverged {
        /// Iteration at which the failure was detected.
        iteration: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input sample is empty"),
            StatsError::NonFinite { index, value } => {
                write!(f, "non-finite value {value} at index {index}")
            }
            StatsError::TooFewSamples { needed, got } => {
                write!(f, "need at least {needed} samples, got {got}")
            }
            StatsError::InvalidParameter { what, value } => {
                write!(f, "invalid parameter {what}: {value}")
            }
            StatsError::Diverged { iteration } => {
                write!(f, "EM diverged at iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Validate that a sample is non-empty and fully finite.
pub(crate) fn validate_sample(data: &[f64]) -> Result<(), StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    for (i, &v) in data.iter().enumerate() {
        if !v.is_finite() {
            return Err(StatsError::NonFinite { index: i, value: v });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_rejected() {
        assert_eq!(validate_sample(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn nan_is_rejected() {
        let err = validate_sample(&[1.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, StatsError::NonFinite { index: 1, .. }));
    }

    #[test]
    fn infinity_is_rejected() {
        let err = validate_sample(&[f64::INFINITY]).unwrap_err();
        assert!(matches!(err, StatsError::NonFinite { index: 0, .. }));
    }

    #[test]
    fn finite_sample_passes() {
        assert!(validate_sample(&[0.0, -1.5, 3.25]).is_ok());
    }

    #[test]
    fn display_messages_are_informative() {
        let msgs = [
            StatsError::EmptyInput.to_string(),
            StatsError::TooFewSamples { needed: 4, got: 1 }.to_string(),
            StatsError::InvalidParameter { what: "bandwidth", value: -1.0 }.to_string(),
            StatsError::Diverged { iteration: 7 }.to_string(),
        ];
        assert!(msgs[0].contains("empty"));
        assert!(msgs[1].contains('4') && msgs[1].contains('1'));
        assert!(msgs[2].contains("bandwidth"));
        assert!(msgs[3].contains('7'));
    }
}
