#![warn(missing_docs)]
//! Statistical substrate for the speedtest-context workspace.
//!
//! The BST methodology of the paper is built from three statistical tools
//! that have no mature offline Rust equivalent, so they are implemented here
//! from scratch:
//!
//! * [`kde`] — Gaussian kernel density estimation with data-driven bandwidth
//!   selection and peak finding, used to *count* the clusters present in an
//!   upload- or download-speed distribution (paper §4.2, Figs. 4, 5, 6, 7).
//! * [`gmm`] — one-dimensional Gaussian mixture models fit with
//!   Expectation–Maximization, used to *assign* each measurement to a cluster
//!   (paper §4.2, "GMM-EM").
//! * [`kmeans`] — 1-D k-means with k-means++ seeding; used both to initialize
//!   EM and as the ablation baseline the paper argues against.
//! * [`gmm2d`] — full-covariance bivariate mixtures, enabling the
//!   joint-`<download, upload>`-clustering ablation of BST's hierarchy.
//!
//! Supporting modules provide descriptive statistics ([`describe`], including
//! the paper's *consistency factor*, §4.1), empirical CDFs ([`ecdf`]) for
//! every CDF figure in the paper, and histograms ([`hist`]).
//!
//! All estimators are deterministic given an explicit RNG, which the rest of
//! the workspace threads through from a single seed so experiments are
//! exactly reproducible.

pub mod bootstrap;
pub mod describe;
pub mod ecdf;
pub mod error;
pub mod gmm;
pub mod gmm2d;
pub mod hist;
pub mod kde;
pub mod kmeans;
pub mod ks;

pub use bootstrap::{bootstrap_ci, median_ci, median_ratio_ci, ConfidenceInterval};
pub use describe::{consistency_factor, gini, mean, median, quantile, std_dev, variance, Summary};
pub use ecdf::Ecdf;
pub use error::StatsError;
pub use gmm::{GaussianMixture, GmmConfig, GmmFit};
pub use gmm2d::{Cov2, GaussianMixture2d};
pub use hist::Histogram;
pub use kde::{Bandwidth, KernelDensity};
pub use kmeans::{kmeans_1d, KMeansResult};
pub use ks::{ks_test, KsTest};

/// Result alias for fallible statistics operations.
pub type Result<T> = std::result::Result<T, StatsError>;
