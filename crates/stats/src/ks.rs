//! Two-sample Kolmogorov–Smirnov comparison.
//!
//! Several of the paper's findings are claims that two CDFs *coincide*
//! (time-of-day panels, Fig. 12) or *separate* (vendor panels, Fig. 13).
//! The KS statistic — the maximum vertical distance between the two
//! empirical CDFs — quantifies those claims; the asymptotic p-value says
//! whether the separation could be sampling noise.

use crate::error::validate_sample;
use crate::Result;

/// Result of a two-sample KS comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic: `sup_x |F_a(x) - F_b(x)|`, in `[0, 1]`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution).
    pub p_value: f64,
    /// Sizes of the two samples.
    pub n_a: usize,
    /// Size of the second sample.
    pub n_b: usize,
}

impl KsTest {
    /// Whether the two samples differ at the given significance level.
    pub fn differs_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample KS test on unsorted data.
pub fn ks_test(a: &[f64], b: &[f64]) -> Result<KsTest> {
    validate_sample(a)?;
    validate_sample(b)?;
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("validated finite"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("validated finite"));

    // Sweep the merged order, tracking both ECDFs; the maximum vertical
    // gap is the statistic.
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < sa.len() || j < sb.len() {
        let x = match (sa.get(i), sb.get(j)) {
            (Some(&xa), Some(&xb)) => xa.min(xb),
            (Some(&xa), None) => xa,
            (None, Some(&xb)) => xb,
            (None, None) => break,
        };
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let d = d.min(1.0);

    let en = (na * nb / (na + nb)).sqrt();
    Ok(KsTest {
        statistic: d,
        p_value: kolmogorov_sf((en + 0.12 + 0.11 / en) * d),
        n_a: sa.len(),
        n_b: sb.len(),
    })
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} e^{-2 k² λ²}` (Numerical Recipes form).
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniforms(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                lo + (hi - lo) * ((state >> 11) as f64) / ((1u64 << 53) as f64)
            })
            .collect()
    }

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = uniforms(200, 0.0, 1.0, 1);
        let t = ks_test(&a, &a).unwrap();
        assert!(t.statistic < 1e-12);
        assert!(t.p_value > 0.99);
    }

    #[test]
    fn same_distribution_is_not_flagged() {
        let a = uniforms(400, 0.0, 100.0, 2);
        let b = uniforms(400, 0.0, 100.0, 3);
        let t = ks_test(&a, &b).unwrap();
        assert!(!t.differs_at(0.01), "{t:?}");
        assert!(t.statistic < 0.12, "{t:?}");
    }

    #[test]
    fn shifted_distribution_is_flagged() {
        let a = uniforms(400, 0.0, 100.0, 4);
        let b = uniforms(400, 30.0, 130.0, 5);
        let t = ks_test(&a, &b).unwrap();
        assert!(t.differs_at(0.001), "{t:?}");
        assert!((0.2..0.45).contains(&t.statistic), "{t:?}");
    }

    #[test]
    fn disjoint_supports_give_statistic_one() {
        let a = uniforms(100, 0.0, 1.0, 6);
        let b = uniforms(100, 10.0, 11.0, 7);
        let t = ks_test(&a, &b).unwrap();
        assert!((t.statistic - 1.0).abs() < 1e-9);
        assert!(t.p_value < 1e-10);
    }

    #[test]
    fn statistic_matches_hand_computed_small_case() {
        // a = {1, 2}, b = {1.5}: F_a jumps 0.5 at 1 and 1 at 2;
        // F_b jumps 1 at 1.5. Max gap: at x in [1.5, 2): |0.5 - 1| = 0.5.
        let t = ks_test(&[1.0, 2.0], &[1.5]).unwrap();
        assert!((t.statistic - 0.5).abs() < 1e-12, "{t:?}");
    }

    #[test]
    fn unequal_sizes_are_handled() {
        let a = uniforms(50, 0.0, 1.0, 8);
        let b = uniforms(500, 0.0, 1.0, 9);
        let t = ks_test(&a, &b).unwrap();
        assert_eq!(t.n_a, 50);
        assert_eq!(t.n_b, 500);
        assert!((0.0..=1.0).contains(&t.statistic));
        assert!((0.0..=1.0).contains(&t.p_value));
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        assert!(ks_test(&[], &[1.0]).is_err());
        assert!(ks_test(&[1.0], &[]).is_err());
        assert!(ks_test(&[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn kolmogorov_sf_sanity() {
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(0.5) > 0.9);
        assert!(kolmogorov_sf(1.36) < 0.06); // classic 5% critical value
        assert!(kolmogorov_sf(1.36) > 0.04);
        assert!(kolmogorov_sf(5.0) < 1e-10);
    }
}
