//! One-dimensional k-means with k-means++ seeding.
//!
//! Serves two roles: initializing the Gaussian mixture EM ([`crate::gmm`])
//! with good starting means, and acting as the ablation baseline the paper
//! contrasts with GMM ("compared to other clustering methodologies such as
//! K-Means, GMM is a probabilistic model that considers the clusters'
//! variance in addition to the means", §4.2).

use crate::error::{validate_sample, StatsError};
use crate::Result;
use rand::Rng;

/// Result of a 1-D k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centers, sorted ascending.
    pub centers: Vec<f64>,
    /// Per-point cluster index into `centers`.
    pub assignments: Vec<usize>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations until convergence.
    pub iterations: usize,
}

/// Run k-means on 1-D data with k-means++ seeding.
///
/// Converges when assignments stop changing or after `max_iter` sweeps.
pub fn kmeans_1d<R: Rng + ?Sized>(
    data: &[f64],
    k: usize,
    max_iter: usize,
    rng: &mut R,
) -> Result<KMeansResult> {
    validate_sample(data)?;
    if k == 0 {
        return Err(StatsError::InvalidParameter { what: "k", value: 0.0 });
    }
    if data.len() < k {
        return Err(StatsError::TooFewSamples { needed: k, got: data.len() });
    }

    let mut centers = plus_plus_seeds(data, k, rng);
    centers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut assignments = vec![0usize; data.len()];
    let mut iterations = 0;

    for it in 0..max_iter.max(1) {
        iterations = it + 1;
        // Assignment step.
        let mut changed = false;
        for (i, &x) in data.iter().enumerate() {
            let nearest = nearest_center(&centers, x);
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for (i, &x) in data.iter().enumerate() {
            sums[assignments[i]] += x;
            counts[assignments[i]] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centers[c] = sums[c] / counts[c] as f64;
            }
            // Empty clusters keep their center; with ++ seeding on 1-D data
            // this is rare and harmless.
        }
        if !changed && it > 0 {
            break;
        }
    }

    // Canonicalize: sort centers ascending and remap assignments.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| centers[a].partial_cmp(&centers[b]).expect("finite"));
    let mut remap = vec![0usize; k];
    for (new_idx, &old_idx) in order.iter().enumerate() {
        remap[old_idx] = new_idx;
    }
    let centers_sorted: Vec<f64> = order.iter().map(|&i| centers[i]).collect();
    for a in &mut assignments {
        *a = remap[*a];
    }

    let inertia =
        data.iter().zip(&assignments).map(|(&x, &a)| (x - centers_sorted[a]).powi(2)).sum();

    Ok(KMeansResult { centers: centers_sorted, assignments, inertia, iterations })
}

/// k-means++ seeding: first center uniform, then each next center sampled
/// with probability proportional to squared distance from the nearest chosen
/// center.
fn plus_plus_seeds<R: Rng + ?Sized>(data: &[f64], k: usize, rng: &mut R) -> Vec<f64> {
    let mut centers = Vec::with_capacity(k);
    centers.push(data[rng.gen_range(0..data.len())]);
    let mut d2: Vec<f64> = data.iter().map(|&x| (x - centers[0]).powi(2)).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centers; pick uniformly.
            data[rng.gen_range(0..data.len())]
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = data[data.len() - 1];
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = data[i];
                    break;
                }
                target -= w;
            }
            chosen
        };
        centers.push(next);
        for (i, &x) in data.iter().enumerate() {
            d2[i] = d2[i].min((x - next).powi(2));
        }
    }
    centers
}

fn nearest_center(centers: &[f64], x: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &c) in centers.iter().enumerate() {
        let d = (x - c).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn separates_two_obvious_clusters() {
        let mut data: Vec<f64> = (0..50).map(|i| 1.0 + (i % 5) as f64 * 0.01).collect();
        data.extend((0..50).map(|i| 100.0 + (i % 5) as f64 * 0.01));
        let r = kmeans_1d(&data, 2, 100, &mut rng()).unwrap();
        assert!((r.centers[0] - 1.02).abs() < 0.1);
        assert!((r.centers[1] - 100.02).abs() < 0.1);
        // All low points in cluster 0, all high in cluster 1.
        assert!(r.assignments[..50].iter().all(|&a| a == 0));
        assert!(r.assignments[50..].iter().all(|&a| a == 1));
    }

    #[test]
    fn centers_are_sorted() {
        let data = [5.0, 5.1, 40.0, 40.2, 12.0, 11.8, 35.0, 34.9];
        let r = kmeans_1d(&data, 4, 100, &mut rng()).unwrap();
        for w in r.centers.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn k_equal_n_gives_zero_inertia() {
        let data = [1.0, 5.0, 9.0];
        let r = kmeans_1d(&data, 3, 100, &mut rng()).unwrap();
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(kmeans_1d(&[], 2, 10, &mut rng()).is_err());
        assert!(kmeans_1d(&[1.0], 0, 10, &mut rng()).is_err());
        assert!(kmeans_1d(&[1.0], 2, 10, &mut rng()).is_err());
    }

    #[test]
    fn constant_data_does_not_panic() {
        let r = kmeans_1d(&[3.0; 20], 3, 50, &mut rng()).unwrap();
        assert_eq!(r.assignments.len(), 20);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data: Vec<f64> =
            (0..120).map(|i| (i % 4) as f64 * 10.0 + (i % 7) as f64 * 0.1).collect();
        let r2 = kmeans_1d(&data, 2, 100, &mut rng()).unwrap();
        let r4 = kmeans_1d(&data, 4, 100, &mut rng()).unwrap();
        assert!(r4.inertia < r2.inertia);
    }
}
